//! Cross-crate integration tests on the secure computation itself:
//!
//! * the Baseline (Paillier) and Pretzel (XPIR-BV) instantiations of the spam
//!   protocol produce identical verdicts, and both agree with a plaintext
//!   evaluation of the same quantized model;
//! * property test: for random models and emails, the secure dot products
//!   (both packings, both cryptosystems) equal the plaintext dot product.

use proptest::prelude::*;

use pretzel::classifiers::svm::BinarySvmTrainer;
use pretzel::classifiers::{LabeledExample, QuantizedModel, SparseVector, Trainer};
use pretzel::core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel::core::{NoPrivProvider, PretzelConfig};
use pretzel::sdp::paillier_pack::{self, PaillierPackParams};
use pretzel::sdp::rlwe_pack::{self, Packing};
use pretzel::sdp::ModelMatrix;
use pretzel::transport::memory_pair;

mod common;
use common::test_rng;
fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
    LabeledExample {
        features: SparseVector::from_pairs(pairs.to_vec()),
        label,
    }
}

fn spam_model() -> pretzel::classifiers::LinearModel {
    let mut corpus = Vec::new();
    for i in 0..25 {
        corpus.push(example(&[(i % 6, 2), ((i + 1) % 6, 1)], 1));
        corpus.push(example(&[(6 + i % 6, 2), (6 + (i + 2) % 6, 1)], 0));
    }
    BinarySvmTrainer::default().train(&corpus, 12, 2)
}

fn classify_privately(variant: AheVariant, emails: &[SparseVector]) -> Vec<bool> {
    let model = spam_model();
    let config = PretzelConfig::test();
    let config_client = config.clone();
    let emails_client = emails.to_vec();

    let (mut provider_chan, mut client_chan) = memory_pair();
    let n = emails.len();
    let provider = std::thread::spawn(move || {
        let mut rng = test_rng(1);
        let mut p =
            SpamProvider::setup(&mut provider_chan, &model, &config, variant, &mut rng).unwrap();
        for _ in 0..n {
            p.process_email(&mut provider_chan, &mut rng).unwrap();
        }
    });
    let mut rng = test_rng(2);
    let mut client =
        SpamClient::setup(&mut client_chan, &config_client, variant, &mut rng).unwrap();
    let verdicts = emails_client
        .iter()
        .map(|f| client.classify(&mut client_chan, f, &mut rng).unwrap())
        .collect();
    provider.join().unwrap();
    verdicts
}

#[test]
fn baseline_and_pretzel_agree_with_each_other_and_with_noprivate() {
    let emails = vec![
        SparseVector::from_pairs(vec![(0, 2), (1, 1), (3, 1)]),
        SparseVector::from_pairs(vec![(7, 2), (8, 1)]),
        SparseVector::from_pairs(vec![(2, 1), (9, 1), (10, 2)]),
        SparseVector::from_pairs(vec![(5, 3)]),
    ];
    let pretzel_verdicts = classify_privately(AheVariant::Pretzel, &emails);
    let baseline_verdicts = classify_privately(AheVariant::Baseline, &emails);
    assert_eq!(pretzel_verdicts, baseline_verdicts);

    // The secure protocols operate on the quantized model (the paper's
    // b_in-bit parameters, §4.2); their verdicts must reproduce a plaintext
    // evaluation of that same quantized model exactly.
    let config = PretzelConfig::test();
    let quantized = QuantizedModel::from_model(&spam_model(), config.weight_bits);
    for (email, &verdict) in emails.iter().zip(&pretzel_verdicts) {
        let protocol_features = quantized.protocol_features(email, config.freq_bits);
        let quantized_verdict = quantized.predict(&protocol_features) == 1;
        assert_eq!(verdict, quantized_verdict);
    }

    // The float model (what NoPriv would run) must agree on all but
    // quantization-boundary cases; on this tiny corpus we only require
    // majority agreement, which guards against systematic sign/column swaps.
    let noprivate = NoPrivProvider::new(spam_model());
    let agreements = emails
        .iter()
        .zip(&pretzel_verdicts)
        .filter(|(email, &verdict)| verdict == noprivate.is_spam(email))
        .count();
    assert!(
        agreements * 2 >= emails.len(),
        "private verdicts should mostly agree with the float model ({agreements}/{})",
        emails.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Secure dot products equal plaintext dot products for random inputs,
    /// for both RLWE packings.
    #[test]
    fn rlwe_secure_dot_product_matches_plaintext(
        rows in 2usize..40,
        cols in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = pretzel::rlwe::Params::new(64, 30);
        let (sk, pk) = pretzel::rlwe::keygen(&params, None, &mut rng);
        let data: Vec<u64> = (0..rows * cols).map(|_| rng.gen_range(0..500)).collect();
        let model = ModelMatrix::from_rows(rows, cols, data);
        let features: Vec<(usize, u64)> = (0..rows.min(10))
            .map(|i| (rng.gen_range(0..rows), 1 + (i as u64 % 7)))
            .collect();
        let expected = model.dot_sparse(&features);

        for packing in [Packing::AcrossRow, Packing::LegacyPerRow] {
            let enc = rlwe_pack::encrypt_model(&pk, &model, packing, &mut rng).unwrap();
            let result = rlwe_pack::client_dot_product(&pk, &enc, &features).unwrap();
            let decrypted = rlwe_pack::provider_decrypt_columns(&sk, &result, cols);
            prop_assert_eq!(&decrypted, &expected, "packing {:?}", packing);
        }
    }

    /// The Baseline's Paillier packing computes the same dot products.
    #[test]
    fn paillier_secure_dot_product_matches_plaintext(
        rows in 2usize..20,
        cols in 1usize..4,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = pretzel::paillier::keygen(256, &mut rng);
        let pk = sk.public();
        let pack = PaillierPackParams { slot_bits: 24 };
        let data: Vec<u64> = (0..rows * cols).map(|_| rng.gen_range(0..500)).collect();
        let model = ModelMatrix::from_rows(rows, cols, data);
        let features: Vec<(usize, u64)> = (0..rows.min(8))
            .map(|i| (rng.gen_range(0..rows), 1 + (i as u64 % 5)))
            .collect();
        let expected = model.dot_sparse(&features);

        let enc = paillier_pack::encrypt_model(pk, &model, pack, &mut rng).unwrap();
        let result = paillier_pack::client_dot_product(pk, &enc, &features, &mut rng).unwrap();
        let decrypted =
            paillier_pack::provider_decrypt(&sk, cols, 24, pack.slots_per_ct(pk), &result).unwrap();
        prop_assert_eq!(&decrypted, &expected);
    }
}
