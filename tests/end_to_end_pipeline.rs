//! Cross-crate integration test: the full Pretzel pipeline of Figure 1.
//!
//! Sender encrypts + signs → provider stores ciphertext → recipient decrypts
//! → recipient's client and the provider run the private spam-filtering and
//! topic-extraction protocols → the private outcomes agree with a non-private
//! classifier run on the same models.

use pretzel::classifiers::nb::{GrNbTrainer, MultinomialNbTrainer};
use pretzel::classifiers::{QuantizedModel, Tokenizer, Trainer, Vocabulary};
use pretzel::core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel::core::topic::{CandidateMode, TopicClient, TopicProvider};
use pretzel::core::{NoPrivProvider, PretzelConfig, ReplayGuard};
use pretzel::datasets::{feature_word, ling_spam_like, newsgroups_like, Corpus};
use pretzel::e2e::{DhGroup, Email, Identity};
use pretzel::search::SearchIndex;
use pretzel::transport::memory_pair;

mod common;
use common::test_rng;
fn build_vocab(num_features: usize) -> Vocabulary {
    let mut vocab = Vocabulary::new();
    for idx in 0..num_features {
        vocab.add(&feature_word(idx));
    }
    vocab
}

#[test]
fn encrypted_mail_is_filtered_without_plaintext_disclosure() {
    let mut rng = test_rng(1);
    let config = PretzelConfig::test();

    // Provider model.
    let corpus = ling_spam_like(0.04).generate();
    let (train, test) = corpus.train_test_split(0.8, 5);
    let model = GrNbTrainer::default().train(&train, corpus.num_features, 2);
    let noprivate = NoPrivProvider::new(model.clone());
    let vocab = build_vocab(corpus.num_features);
    let tokenizer = Tokenizer::new();

    // e2e leg: Alice -> Bob.
    let dh = DhGroup::insecure_test_group(80, &mut rng);
    let alice = Identity::generate("alice@example.com", &dh, &mut rng);
    let bob = Identity::generate("bob@example.com", &dh, &mut rng);
    let emails: Vec<_> = test.iter().take(4).collect();
    let mut ciphertexts = Vec::new();
    for ex in &emails {
        let email = Email {
            from: alice.address.clone(),
            to: bob.address.clone(),
            subject: "integration".into(),
            body: Corpus::render_text(&corpus, ex),
        };
        let enc = alice.encrypt_email(&bob.public(), &email, &mut rng);
        // Ciphertext must not contain the plaintext body.
        assert!(!enc.ciphertext.windows(16).any(|w| email
            .body
            .as_bytes()
            .windows(16)
            .take(1)
            .any(|p| p == w)));
        ciphertexts.push(enc);
    }

    // Spam protocol over an in-memory channel.
    let (mut provider_chan, mut client_chan) = memory_pair();
    let provider_model = model.clone();
    let provider_cfg = config.clone();
    let n = ciphertexts.len();
    let provider = std::thread::spawn(move || {
        let mut rng = test_rng(2);
        let mut p = SpamProvider::setup(
            &mut provider_chan,
            &provider_model,
            &provider_cfg,
            AheVariant::Pretzel,
            &mut rng,
        )
        .unwrap();
        for _ in 0..n {
            p.process_email(&mut provider_chan, &mut rng).unwrap();
        }
    });

    let mut client =
        SpamClient::setup(&mut client_chan, &config, AheVariant::Pretzel, &mut rng).unwrap();
    let mut replay = ReplayGuard::default();
    let mut index = SearchIndex::new();
    // The protocol's contract (§4.2) is exact agreement with a plaintext
    // evaluation of the *quantized* model it runs on; the float model may
    // disagree on quantization-boundary emails, so it only gets a majority
    // check (same policy as tests/protocol_equivalence.rs).
    let quantized = QuantizedModel::from_model(&model, config.weight_bits);
    let mut float_agreements = 0usize;
    for (i, enc) in ciphertexts.iter().enumerate() {
        assert!(replay.check_and_record(&enc.sender, i as u64));
        let email = bob.decrypt_email(&alice.public(), enc).unwrap();
        let features = vocab.vectorize(&tokenizer, &email.classification_text());
        let private_verdict = client
            .classify(&mut client_chan, &features, &mut rng)
            .unwrap();
        let protocol_features = quantized.protocol_features(&features, config.freq_bits);
        let quantized_verdict = quantized.predict(&protocol_features) == 1;
        assert_eq!(
            private_verdict, quantized_verdict,
            "private verdict must match plaintext evaluation of the quantized model (email {i})"
        );
        if private_verdict == noprivate.is_spam(&features) {
            float_agreements += 1;
        }
        index.add_document(&email.classification_text());
    }
    provider.join().unwrap();
    assert!(
        float_agreements * 2 >= ciphertexts.len(),
        "private verdicts should mostly agree with the float model ({float_agreements}/{})",
        ciphertexts.len()
    );

    // Replay of a processed email is rejected.
    assert!(!replay.check_and_record("alice@example.com", 0));
    // Search works over the decrypted mailbox.
    assert_eq!(index.len(), ciphertexts.len());
}

#[test]
fn topic_extraction_pipeline_reports_a_candidate_topic_to_the_provider() {
    let mut rng = test_rng(3);
    let config = PretzelConfig::test();
    let corpus = newsgroups_like(0.03).generate();
    let (train, test) = corpus.train_test_split(0.8, 9);
    let provider_model =
        MultinomialNbTrainer::default().train(&train, corpus.num_features, corpus.num_classes);
    let candidate_model = MultinomialNbTrainer::default().train(
        &Corpus::subsample(&train, 0.15, 3),
        corpus.num_features,
        corpus.num_classes,
    );
    let noprivate = NoPrivProvider::new(provider_model.clone());
    let b_prime = 4usize;
    let emails: Vec<_> = test.iter().take(3).cloned().collect();

    let (mut provider_chan, mut client_chan) = memory_pair();
    let provider_cfg = config.clone();
    let model_for_provider = provider_model.clone();
    let n = emails.len();
    let provider = std::thread::spawn(move || {
        let mut rng = test_rng(4);
        let mut p = TopicProvider::setup(
            &mut provider_chan,
            &model_for_provider,
            &provider_cfg,
            AheVariant::Pretzel,
            CandidateMode::Decomposed(b_prime),
            &mut rng,
        )
        .unwrap();
        (0..n)
            .map(|_| p.process_email(&mut provider_chan).unwrap())
            .collect::<Vec<_>>()
    });

    let mut client = TopicClient::setup(
        &mut client_chan,
        &config,
        AheVariant::Pretzel,
        CandidateMode::Decomposed(b_prime),
        Some(candidate_model),
        &mut rng,
    )
    .unwrap();
    let mut candidate_sets = Vec::new();
    for ex in &emails {
        candidate_sets.push(
            client
                .extract(&mut client_chan, &ex.features, &mut rng)
                .unwrap(),
        );
    }
    let topics = provider.join().unwrap();

    for (i, topic) in topics.iter().enumerate() {
        // Guarantee 3: the provider learns one index, and it is one of the
        // candidates the client submitted.
        assert!(candidate_sets[i].contains(topic), "email {i}");
        assert!(*topic < corpus.num_classes);
        // If the non-private choice is among the candidates, the private
        // protocol must pick exactly it (the provider's model decides).
        let np = noprivate.classify(&emails[i].features);
        if candidate_sets[i].contains(&np) {
            assert_eq!(*topic, np, "email {i}");
        }
    }
}
