//! Fleet-bank pins for the redesigned `PrecomputeSource` path.
//!
//! Two contracts:
//!
//! 1. **Shim equivalence** (the deprecation safety net): the deprecated
//!    per-session budgets (0 = pure inline, 1 = drain-and-refill, ∞ = never
//!    dry) and a bank-served fleet all produce byte-identical verdicts and
//!    identical meter payload counts under the same seeds. The bank is a
//!    latency knob, never a semantics knob — exactly the promise the old
//!    `precompute_budget` made.
//! 2. **Concurrent-drain stress**: 64 sessions hammer one garbling
//!    reservoir whose target (8) is far below total demand, so draws race
//!    the producers' refills the whole run. Fixed seeds must reproduce the
//!    verdict transcript exactly (the bank/fallback split may differ run to
//!    run, the protocol output may not), and the shutdown accounting must
//!    conserve artifacts: everything produced was either handed out once or
//!    is still stocked — nothing lost, nothing issued twice.

// The equivalence half of this file deliberately drives the deprecated
// per-session shim as the reference implementation.
#![allow(deprecated)]

use std::time::Duration;

use pretzel::classifiers::SparseVector;
use pretzel::core::bank::KIND_GARBLINGS;
use pretzel::core::spam::AheVariant;
use pretzel::core::topic::CandidateMode;
use pretzel::core::PretzelConfig;
use pretzel::server::{
    BankConfig, ClientSpec, ClientSpecBuilder, Mailroom, MailroomClient, MailroomConfig,
    MailroomReport,
};
use pretzel::transport::memory_pair;

mod common;
use common::{connect_client, ling_suite, test_rng, FleetRecord};

const EMAILS_PER_SESSION: usize = 3;
/// Stands in for an unbounded pool: strictly larger than every round count
/// in the run, so no online round ever computes inline.
const UNBOUNDED: usize = EMAILS_PER_SESSION + 4;

/// How a fleet's offline phase is provisioned.
enum Offline {
    /// The deprecated per-session shim at the given budget.
    Inline(usize),
    /// The fleet-wide precompute bank, prefilled before any session runs.
    Bank,
}

/// Serves the same fixed-seed spam/topic/virus fleet as
/// `tests/phase_split.rs`, but parameterised over the offline mode so the
/// bank path can be compared row for row against the deprecated shim.
fn run_fleet(offline: &Offline) -> (FleetRecord, MailroomReport) {
    let config = PretzelConfig::test();
    let builder = MailroomConfig::builder()
        .workers(1)
        .queue_capacity(3)
        .rng_seed(0x5001_5EED);
    let builder = match offline {
        Offline::Inline(budget) => builder.precompute_budget(*budget),
        // Targets sized past the whole run's demand (3 spam + 3 virus
        // garblings), so a prefilled bank never serves a draw inline.
        Offline::Bank => builder
            .bank(BankConfig::default().rng_seed(0xF1EE7))
            .bank_producers(1)
            .reservoir_target(KIND_GARBLINGS, 8),
    };
    let mailroom = Mailroom::start(ling_suite(), builder.build());
    if matches!(offline, Offline::Bank) {
        assert!(
            mailroom.wait_until_bank_full(Duration::from_secs(60)),
            "bank prefill must finish before the fleet runs"
        );
    }
    // Client-side pools are untouched by the provider bank; the inline runs
    // warm them to their budget, the bank run leaves them cold. Verdicts
    // must not notice either way.
    let client_budget = match offline {
        Offline::Inline(budget) => *budget,
        Offline::Bank => 0,
    };

    let spam_email = SparseVector::from_pairs(vec![(0, 3), (1, 1), (2, 2), (7, 1)]);
    let topic_email = SparseVector::from_pairs(vec![(3, 2), (5, 1), (11, 4)]);
    let attachment: &[u8] = b"MZ\x90\x00totally-legitimate-payload";
    let mut verdicts = Vec::new();

    {
        let mut rng = test_rng(70);
        let spec = ClientSpec::spam(config.clone()).with_variant(AheVariant::Baseline);
        let mut client = connect_client(&mailroom, &spec, &mut rng);
        client.precompute(client_budget, &mut rng);
        for _ in 0..EMAILS_PER_SESSION {
            let is_spam = client.classify_spam(&spam_email, &mut rng).unwrap();
            verdicts.push(format!("spam:{is_spam}"));
        }
        client.finish().unwrap();
    }
    {
        let mut rng = test_rng(71);
        let spec = ClientSpecBuilder::topic(config.clone())
            .topic_mode(CandidateMode::Full)
            .build();
        let mut client = connect_client(&mailroom, &spec, &mut rng);
        client.precompute(client_budget, &mut rng);
        for _ in 0..EMAILS_PER_SESSION {
            let candidates = client.extract_topic(&topic_email, &mut rng).unwrap();
            verdicts.push(format!("topic:{candidates:?}"));
        }
        client.finish().unwrap();
    }
    {
        let mut rng = test_rng(72);
        let spec = ClientSpec::virus(config);
        let mut client = connect_client(&mailroom, &spec, &mut rng);
        client.precompute(client_budget, &mut rng);
        for _ in 0..EMAILS_PER_SESSION {
            let is_malicious = client.scan_attachment(attachment, &mut rng).unwrap();
            verdicts.push(format!("virus:{is_malicious}"));
        }
        client.finish().unwrap();
    }

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 3, "all sessions must complete cleanly");
    (FleetRecord::new(verdicts, &report), report)
}

/// The deprecation safety net: every budget of the old shim and the
/// bank-served fleet are observationally equivalent.
#[test]
fn bank_served_fleet_matches_the_deprecated_shim_at_every_budget() {
    let (cold, cold_report) = run_fleet(&Offline::Inline(0));
    let (trickle, _) = run_fleet(&Offline::Inline(1));
    let (unbounded, _) = run_fleet(&Offline::Inline(UNBOUNDED));
    let (banked, bank_report) = run_fleet(&Offline::Bank);

    assert_eq!(
        cold.verdicts, banked.verdicts,
        "a bank-served fleet must match the pure-inline path byte for byte"
    );
    assert_eq!(trickle.verdicts, banked.verdicts);
    assert_eq!(unbounded.verdicts, banked.verdicts);
    assert_eq!(
        cold.meters, banked.meters,
        "payload byte and message counts are provisioning-independent"
    );
    assert_eq!(trickle.meters, banked.meters);
    assert_eq!(unbounded.meters, banked.meters);
    assert_eq!(banked.emails_total, (EMAILS_PER_SESSION * 3) as u64);
    assert_eq!(cold.emails_total, banked.emails_total);

    // The inline runs never touch a bank; the bank run actually used one.
    assert!(cold_report.reservoirs.is_empty());
    assert!(!bank_report.reservoirs.is_empty());
    let garbling_rows: Vec<_> = bank_report
        .reservoirs
        .iter()
        .filter(|r| r.kind == KIND_GARBLINGS)
        .collect();
    assert!(
        garbling_rows.iter().any(|r| r.drawn > 0),
        "the spam/virus sessions must have drawn banked garblings"
    );
    for row in &garbling_rows {
        assert_eq!(
            row.fallback_draws, 0,
            "a reservoir prefilled past total demand never serves inline: {row:?}"
        );
        assert_eq!(
            row.produced,
            row.drawn + row.depth,
            "artifact conservation must hold: {row:?}"
        );
    }
}

/// One pass of the 64-session drain: every session hammers the same
/// under-provisioned garbling reservoir while the producers refill it.
/// Returns the index-ordered verdict transcript and the shutdown report.
fn storm() -> (Vec<String>, MailroomReport) {
    const SESSIONS: usize = 64;
    const EMAILS: usize = 2;

    let mailroom = Mailroom::start(
        ling_suite(),
        MailroomConfig::builder()
            .workers(8)
            .queue_capacity(SESSIONS)
            .rng_seed(0xD2A1_4BA4)
            // Target 8 against 128 emails of demand: the reservoir runs dry
            // and refills continuously, so banked draws, low-watermark
            // re-arms, and inline fallbacks all interleave under contention.
            .bank(BankConfig::default().rng_seed(0x5702_4142))
            .bank_producers(2)
            .reservoir_target(KIND_GARBLINGS, 8)
            .build(),
    );

    let config = PretzelConfig::test();
    let spam_email = SparseVector::from_pairs(vec![(0, 3), (1, 1), (2, 2), (7, 1)]);
    let mut transcripts: Vec<(usize, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let (provider_end, client_end) = memory_pair();
                mailroom
                    .submit(provider_end)
                    .expect("queue sized for fleet");
                let spec = ClientSpec::spam(config.clone());
                let spam_email = spam_email.clone();
                scope.spawn(move || {
                    let mut rng = test_rng(3000 + i as u64);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    let mut verdicts = Vec::with_capacity(EMAILS);
                    for _ in 0..EMAILS {
                        let is_spam = client.classify_spam(&spam_email, &mut rng).unwrap();
                        verdicts.push(format!("spam[{i}]:{is_spam}"));
                    }
                    client.finish().unwrap();
                    (i, verdicts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    transcripts.sort_by_key(|(i, _)| *i);

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), SESSIONS, "no session may be lost");
    assert_eq!(report.emails_total, (SESSIONS * EMAILS) as u64);
    let verdicts = transcripts.into_iter().flat_map(|(_, v)| v).collect();
    (verdicts, report)
}

/// The concurrent-drain stress pin: 64 sessions × 2 emails against a
/// target-8 reservoir, run twice under the same seeds.
#[test]
fn sixty_four_sessions_draining_one_reservoir_stay_deterministic() {
    let (first, first_report) = storm();
    let (second, _) = storm();

    assert_eq!(
        first, second,
        "fixed seeds must reproduce the 64-session transcript even though \
         the bank/fallback split is timing-dependent"
    );

    // Conservation at shutdown: every artifact ever produced was handed out
    // exactly once or is still stocked. A lost artifact breaks the equality
    // one way; a double-hand-out breaks it the other.
    for row in &first_report.reservoirs {
        assert_eq!(
            row.produced,
            row.drawn + row.depth,
            "artifact lost or double-issued: {row:?}"
        );
    }
    let garblings_drawn: u64 = first_report
        .reservoirs
        .iter()
        .filter(|r| r.kind == KIND_GARBLINGS)
        .map(|r| r.drawn)
        .sum();
    assert!(
        garblings_drawn > 0,
        "the storm must actually exercise banked draws"
    );
}
