//! Pool-exhaustion fallback for the offline/online phase split.
//!
//! The precomputation pools (`precompute_budget` on the provider mailroom,
//! `MailroomClient::precompute` on the client) only move work off the
//! latency path — they must never change what the protocol computes or
//! ships. This file pins that: a fixed-seed fleet of spam, topic, and virus
//! sessions is served three times, with pool budget 0 (every round falls
//! back to inline computation), 1 (the pool drains and refills every round),
//! and a budget larger than the whole run (no round ever computes inline).
//! All three runs must produce byte-identical verdicts and identical meter
//! payload counts.

// This file exists to pin the deprecated per-session shim
// (`precompute_budget` / `MailroomClient::precompute`) until it is removed;
// the fleet-bank successor is pinned by tests/precompute_bank.rs.
#![allow(deprecated)]

use pretzel::classifiers::SparseVector;
use pretzel::core::spam::AheVariant;
use pretzel::core::topic::CandidateMode;
use pretzel::core::PretzelConfig;
use pretzel::server::{ClientSpec, ClientSpecBuilder, Mailroom, MailroomConfig};

mod common;
use common::{connect_client, ling_suite, test_rng, FleetRecord};

const EMAILS_PER_SESSION: usize = 3;
/// Stands in for an unbounded pool: strictly larger than every round count
/// in the run, so no online round ever computes inline.
const UNBOUNDED: usize = EMAILS_PER_SESSION + 4;

/// Serves one spam (Baseline AHE, so the Paillier randomizer pool is
/// exercised), one topic (client-side garbling pool), and one virus session
/// through a mailroom with the given offline budget, with every RNG seeded
/// identically across calls. Sessions run sequentially on one worker so
/// submission order, meter attribution, and RNG streams are deterministic.
fn run_fleet(budget: usize) -> FleetRecord {
    let config = PretzelConfig::test();
    let mailroom = Mailroom::start(
        ling_suite(),
        MailroomConfig::builder()
            .workers(1)
            .queue_capacity(3)
            .rng_seed(0x5001_5EED)
            .precompute_budget(budget)
            .build(),
    );

    let spam_email = SparseVector::from_pairs(vec![(0, 3), (1, 1), (2, 2), (7, 1)]);
    let topic_email = SparseVector::from_pairs(vec![(3, 2), (5, 1), (11, 4)]);
    let attachment: &[u8] = b"MZ\x90\x00totally-legitimate-payload";
    let mut verdicts = Vec::new();

    // Session 1: spam, Baseline variant — the client pools `r^n` randomizers.
    {
        let mut rng = test_rng(70);
        let spec = ClientSpec::spam(config.clone()).with_variant(AheVariant::Baseline);
        let mut client = connect_client(&mailroom, &spec, &mut rng);
        client.precompute(budget, &mut rng);
        assert_eq!(
            client.pool_depth(),
            budget,
            "Baseline spam client pools exactly the requested rounds"
        );
        for _ in 0..EMAILS_PER_SESSION {
            let is_spam = client.classify_spam(&spam_email, &mut rng).unwrap();
            verdicts.push(format!("spam:{is_spam}"));
        }
        assert_eq!(
            client.pool_depth(),
            budget.saturating_sub(EMAILS_PER_SESSION),
            "rounds drain the pool; exhaustion falls back to inline"
        );
        client.finish().unwrap();
    }

    // Session 2: topic — the client pools pre-garbled argmax circuits.
    {
        let mut rng = test_rng(71);
        let spec = ClientSpecBuilder::topic(config.clone())
            .topic_mode(CandidateMode::Full)
            .build();
        let mut client = connect_client(&mailroom, &spec, &mut rng);
        client.precompute(budget, &mut rng);
        for _ in 0..EMAILS_PER_SESSION {
            let candidates = client.extract_topic(&topic_email, &mut rng).unwrap();
            verdicts.push(format!("topic:{candidates:?}"));
        }
        client.finish().unwrap();
    }

    // Session 3: virus — provider-side garbling pool via the spam machinery.
    {
        let mut rng = test_rng(72);
        let spec = ClientSpec::virus(config);
        let mut client = connect_client(&mailroom, &spec, &mut rng);
        client.precompute(budget, &mut rng);
        for _ in 0..EMAILS_PER_SESSION {
            let is_malicious = client.scan_attachment(attachment, &mut rng).unwrap();
            verdicts.push(format!("virus:{is_malicious}"));
        }
        client.finish().unwrap();
    }

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 3, "all sessions must complete cleanly");
    if budget == 0 {
        assert_eq!(
            report.pool_depth_total, 0,
            "budget 0 disables the offline phase entirely"
        );
    } else {
        assert!(
            report.pool_depth_total > 0,
            "warm budgets leave precomputed rounds banked at shutdown"
        );
    }

    FleetRecord::new(verdicts, &report)
}

/// The satellite acceptance test: pool size 0, 1, and ∞ (here: larger than
/// the whole run) are observationally equivalent — byte-identical verdicts
/// and identical meter payload counts under the same seeds.
#[test]
fn pool_budgets_zero_one_and_unbounded_are_equivalent() {
    let cold = run_fleet(0);
    let trickle = run_fleet(1);
    let unbounded = run_fleet(UNBOUNDED);

    assert_eq!(
        cold.verdicts, trickle.verdicts,
        "budget 1 (drain + refill every round) must match the inline path"
    );
    assert_eq!(
        cold.verdicts, unbounded.verdicts,
        "an unbounded pool (no inline rounds at all) must match too"
    );
    assert_eq!(
        cold.meters, trickle.meters,
        "payload byte and message counts are budget-independent"
    );
    assert_eq!(cold.meters, unbounded.meters);
    assert_eq!(cold.emails_total, (EMAILS_PER_SESSION * 3) as u64);
    assert_eq!(cold.emails_total, trickle.emails_total);
    assert_eq!(cold.emails_total, unbounded.emails_total);
}
