//! Rolling-upgrade acceptance test for the versioned wire protocol: one
//! mailroom serves an interleaved fleet of legacy v1 clients and
//! capability-negotiating v2 clients across all four built-in function
//! kinds, and the upgrade is **invisible in the verdicts** — the mixed
//! fleet's transcript is byte-identical to an all-v1 baseline under the
//! same seeds and submission order. v2 peers batch their rounds; v1 peers
//! transparently fall back to sequential serving (strictly more control
//! frames on the wire); [`MailroomReport::by_version`] splits the fleet
//! accounting by protocol generation.

use pretzel::classifiers::SparseVector;
use pretzel::core::session::EmailPayload;
use pretzel::core::topic::CandidateMode;
use pretzel::core::PretzelConfig;
use pretzel::server::{ClientSpec, ClientSpecBuilder, Mailroom, MailroomConfig};
use pretzel::transport::wire::{Capabilities, ProtocolVersion};

mod common;
use common::{connect_client, ling_suite, test_rng};

const ROUNDS_PER_SESSION: usize = 3;

/// The per-kind payload scripts, one per built-in function module, in
/// submission order. Each kind appears twice in a fleet run — once as a
/// legacy v1 client, once as a v2 client — so `spec_for_kind` is called
/// with both generations.
fn scripts() -> Vec<(&'static str, Vec<EmailPayload>)> {
    let spam_email = |a: usize| {
        EmailPayload::Tokens(SparseVector::from_pairs(vec![
            (a % 7, 3),
            (a % 11 + 2, 1),
            (7, 2),
        ]))
    };
    let attachment =
        |i: u8| EmailPayload::Attachment([0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, i].to_vec());
    vec![
        ("spam", (0..ROUNDS_PER_SESSION).map(spam_email).collect()),
        ("topic", (0..ROUNDS_PER_SESSION).map(spam_email).collect()),
        (
            "virus",
            (0..ROUNDS_PER_SESSION as u8).map(attachment).collect(),
        ),
        (
            "search",
            vec![
                EmailPayload::SearchIndex {
                    doc_id: 42,
                    body: "quarterly budget spreadsheet attached".into(),
                },
                EmailPayload::SearchQuery("budget".into()),
                EmailPayload::SearchQuery("absent".into()),
            ],
        ),
    ]
}

fn spec_for_kind(kind: &str, legacy: bool) -> ClientSpec {
    let config = PretzelConfig::test();
    let builder = match kind {
        "spam" => ClientSpecBuilder::spam(config),
        "topic" => ClientSpecBuilder::topic(config).topic_mode(CandidateMode::Full),
        "virus" => ClientSpecBuilder::virus(config),
        "search" => ClientSpecBuilder::search(config),
        other => panic!("unknown kind {other}"),
    };
    if legacy {
        builder.legacy_v1().build()
    } else {
        builder.build()
    }
}

/// One fleet run: 8 sessions (each kind once per protocol generation given
/// by `legacy_pattern[i % 2]`), served sequentially on one worker so the
/// provider RNG stream of session `i` is identical across runs. Every
/// client submits its rounds through `process_batch`, which batches on v2
/// sessions and transparently degrades to sequential rounds on v1.
fn run_fleet(legacy_pattern: [bool; 2]) -> (Vec<String>, pretzel::server::MailroomReport) {
    let mailroom = Mailroom::start(
        ling_suite(),
        MailroomConfig::builder()
            .workers(1)
            .queue_capacity(8)
            .rng_seed(0x0116_2ADE)
            .build(),
    );

    let mut verdicts = Vec::new();
    let mut session_idx = 0usize;
    for (kind, payloads) in scripts() {
        for &legacy in &legacy_pattern {
            let mut rng = test_rng(900 + session_idx as u64);
            let spec = spec_for_kind(kind, legacy);
            let mut client = connect_client(&mailroom, &spec, &mut rng);

            let profile = client.negotiated();
            if legacy {
                assert_eq!(profile.version, ProtocolVersion::V1);
                assert!(profile.capabilities.is_empty());
            } else {
                assert_eq!(profile.version, ProtocolVersion::V2);
                assert!(profile.supports(Capabilities::ROUND_BATCH));
            }

            for verdict in client.process_batch(&payloads, &mut rng).unwrap() {
                verdicts.push(format!("{kind}/{verdict:?}"));
            }
            assert_eq!(client.emails_sent(), payloads.len() as u64);
            client.finish().unwrap();
            session_idx += 1;
        }
    }

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 8, "all eight sessions must complete");
    (verdicts, report)
}

#[test]
fn mixed_version_fleet_matches_the_all_v1_baseline() {
    // Baseline: every session is a legacy v1 client.
    let (baseline_verdicts, baseline_report) = run_fleet([true, true]);
    // Rolling upgrade in flight: each kind served once per generation,
    // interleaved on the same mailroom.
    let (mixed_verdicts, mixed_report) = run_fleet([true, false]);

    // The protocol generation must be invisible in the outputs: same
    // session order, same seeds, same payloads → byte-identical verdicts.
    assert_eq!(
        baseline_verdicts, mixed_verdicts,
        "upgrading the wire protocol must not change a single verdict"
    );
    assert_eq!(baseline_report.emails_total, mixed_report.emails_total);

    // The baseline is all v1.
    let by_version = baseline_report.by_version();
    assert_eq!(by_version.len(), 1);
    assert_eq!(by_version[0].0, ProtocolVersion::V1);
    assert_eq!(by_version[0].1.sessions, 8);

    // The mixed fleet splits cleanly by generation.
    let by_version = mixed_report.by_version();
    assert_eq!(by_version.len(), 2);
    let (v1_totals, v2_totals) = (by_version[0].1, by_version[1].1);
    assert_eq!(by_version[0].0, ProtocolVersion::V1);
    assert_eq!(by_version[1].0, ProtocolVersion::V2);
    assert_eq!(v1_totals.sessions, 4);
    assert_eq!(v2_totals.sessions, 4);
    assert_eq!(
        v1_totals.emails + v2_totals.emails,
        mixed_report.emails_total
    );
    assert_eq!(
        v1_totals.messages + v2_totals.messages,
        mixed_report.fleet_messages,
        "per-version sums must reproduce the fleet meters"
    );

    // v1 sessions fall back to sequential rounds: one control frame per
    // email instead of one per batch, so strictly more messages for the
    // same work.
    assert!(
        v1_totals.messages > v2_totals.messages,
        "sequential v1 fallback must cost more round trips than v2 batching \
         (v1: {}, v2: {})",
        v1_totals.messages,
        v2_totals.messages
    );

    // Per-session versions landed in the stats, interleaved as submitted.
    for (i, stats) in mixed_report.sessions.iter().enumerate() {
        let expected = if i % 2 == 0 {
            ProtocolVersion::V1
        } else {
            ProtocolVersion::V2
        };
        assert_eq!(stats.version, Some(expected), "session {i}");
    }
}
