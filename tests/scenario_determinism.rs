//! Seeded scenarios are reproducible end to end: running the same scenario
//! with the same seed twice — including over real loopback TCP, where
//! accept order and thread scheduling are up to the OS — must produce
//! byte-identical verdict transcripts and identical fleet meter totals.
//! The [`pretzel::scenarios::DeterminismFingerprint`] carries both, so one
//! equality assert covers the whole observable surface.

use pretzel::scenarios::{
    run_scenario, MixedFleetSkew, RunOptions, Scenario, ScenarioConfig, SessionChurn, TransportMode,
};

/// The richest scenario — all five module kinds, interleaved v1/v2 peers,
/// batched submissions — repeated over loopback TCP. TCP is the adversarial
/// transport here: accept order is OS-scheduled, so this pins that verdict
/// collection is keyed by plan order, not arrival order.
#[test]
fn mixed_fleet_over_tcp_is_reproducible() {
    let scenario = MixedFleetSkew(ScenarioConfig::tiny());
    let options = RunOptions {
        transport: TransportMode::Tcp,
    };
    let first = run_scenario(&scenario, 41, &options);
    let second = run_scenario(&scenario, 41, &options);
    assert_eq!(
        first.fingerprint, second.fingerprint,
        "same scenario + same seed over TCP must be byte-identical"
    );
    assert!(first.completed > 0);

    // A different seed must actually change the event stream — otherwise
    // the fingerprint equality above would be vacuous.
    let other = run_scenario(&scenario, 42, &options);
    assert_ne!(
        first.fingerprint.verdict_digest, other.fingerprint.verdict_digest,
        "different seeds must produce different transcripts"
    );
}

/// Churny fleets (mid-protocol abandons, an extra zero-round drop) are
/// exactly as reproducible as clean ones, and the memory transport agrees
/// with itself run to run.
#[test]
fn session_churn_over_memory_is_reproducible() {
    let scenario = SessionChurn(ScenarioConfig::tiny());
    let options = RunOptions::default();
    let first = run_scenario(&scenario, 23, &options);
    let second = run_scenario(&scenario, 23, &options);
    assert_eq!(first.fingerprint, second.fingerprint);
    assert_eq!(first.completed, second.completed);
    assert_eq!(first.failed, second.failed);
    assert!(
        first.failed > 0,
        "{} must exercise the abandon path",
        scenario.name()
    );
}
