//! Workspace wiring smoke test (satellite of the CI bootstrap): every
//! umbrella re-export must resolve to a live crate, and the advertised
//! version must be the workspace version.

use rand::SeedableRng;

#[test]
fn umbrella_reexports_resolve() {
    // Touch one real item per re-exported crate so a broken dependency edge
    // or a dropped `pub use` fails this test rather than only downstream
    // users' builds.
    let _ = pretzel::bignum::BigUint::from(1u64);
    let _ = pretzel::classifiers::SparseVector::from_pairs(vec![(0, 1)]);
    let _ = pretzel::core::PretzelConfig::test();
    let _ = pretzel::datasets::ling_spam_like(0.01);
    let _ = pretzel::e2e::Email {
        from: String::new(),
        to: String::new(),
        subject: String::new(),
        body: String::new(),
    };
    let _ = pretzel::gc::spam_compare_circuit(8);
    let _ = pretzel::paillier::keygen(64, &mut rand::rngs::StdRng::seed_from_u64(1));
    let _ = pretzel::primitives::sha256(b"smoke");
    let _ = pretzel::rlwe::Params::new(16, 12);
    let _ = pretzel::sdp::ModelMatrix::from_rows(1, 1, vec![0]);
    let _ = pretzel::search::SearchIndex::new();
    let _ = pretzel::sse::SseClient::from_master_key([0u8; 32]);
    let _ = pretzel::transport::memory_pair();
}

#[test]
fn version_matches_workspace_version() {
    // The umbrella crate inherits `version.workspace = true`; if the
    // workspace version moves without the constant following (or vice versa)
    // this catches it.
    assert_eq!(pretzel::VERSION, env!("CARGO_PKG_VERSION"));
    assert!(!pretzel::VERSION.is_empty());
}
