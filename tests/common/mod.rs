//! Shared helpers for the integration tests: the fixed-seed RNG streams,
//! the deterministic Ling-spam-shaped model suites, and the fleet-record
//! plumbing that every mailroom suite previously duplicated.
//!
//! Each integration test binary compiles its own copy of this module and
//! uses a different subset of it, so unused-item lints are suppressed
//! file-wide rather than per-binary.
#![allow(dead_code)]

use pretzel::classifiers::nb::GrNbTrainer;
use pretzel::classifiers::{LabeledExample, NGramExtractor, SparseVector, Trainer};
use pretzel::core::topic::CandidateMode;
use pretzel::core::{PretzelConfig, ProviderModelSuite, WireTag};
use pretzel::datasets::ling_spam_like;
use pretzel::server::{ClientSpec, Mailroom, MailroomClient, MailroomReport};
use pretzel::transport::{memory_pair, MemoryChannel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed-seed RNG (satellite of the CI bootstrap): integration tests must be
/// reproducible run to run, so every call site gets its own deterministic
/// stream instead of ambient `thread_rng` entropy.
pub fn test_rng(stream: u64) -> StdRng {
    StdRng::seed_from_u64(0x5EED_C0DE ^ (stream << 32))
}

/// The deterministic virus model every suite shares: it lives in the
/// extractor's bucket space, not the token vocabulary, so it needs its own
/// tiny training set of magic-prefixed "malware" against benign text.
fn virus_model(extractor: &NGramExtractor) -> pretzel::classifiers::LinearModel {
    let virus_examples: Vec<LabeledExample> = (0..20u8)
        .flat_map(|i| {
            let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad];
            bad.push(i);
            let good = format!("meeting notes attachment {i}");
            [
                LabeledExample {
                    features: extractor.extract(&bad),
                    label: 1,
                },
                LabeledExample {
                    features: extractor.extract(good.as_bytes()),
                    label: 0,
                },
            ]
        })
        .collect();
    GrNbTrainer::default().train(&virus_examples, extractor.buckets, 2)
}

/// The shrunk Ling-spam-shaped corpus spec shared by every fleet suite: the
/// vocabulary is cut down so that dozens of protocol setups stay fast.
fn ling_corpus() -> pretzel::datasets::Corpus {
    let mut spec = ling_spam_like(0.08);
    spec.shared_vocab = 120;
    spec.class_vocab = 60;
    spec.doc_len = (20, 60);
    spec.generate()
}

/// The provider model suite used by the batching, phase-split, and
/// rolling-upgrade fleets: spam/topic trained on the full shrunk Ling-spam
/// corpus, plus the shared deterministic virus model.
pub fn ling_suite() -> ProviderModelSuite {
    let corpus = ling_corpus();
    let model = GrNbTrainer::default().train(&corpus.examples, corpus.num_features, 2);
    let extractor = NGramExtractor::new(3, 64);
    let virus = virus_model(&extractor);
    ProviderModelSuite {
        spam: model.clone(),
        topic: model,
        topic_mode: CandidateMode::Full,
        virus,
        virus_extractor: extractor,
        config: PretzelConfig::test(),
    }
}

/// The concurrency-suite variant of [`ling_suite`]: trains on a 60/40
/// train/test split and hands back the held-out test emails so sessions can
/// classify mail the model never saw.
pub fn ling_suite_with_test_split() -> (ProviderModelSuite, Vec<LabeledExample>) {
    let corpus = ling_corpus();
    let (train, test) = corpus.train_test_split(0.6, 7);
    let model = GrNbTrainer::default().train(&train, corpus.num_features, 2);
    let extractor = NGramExtractor::new(3, 64);
    let virus = virus_model(&extractor);
    let suite = ProviderModelSuite {
        spam: model.clone(),
        topic: model,
        topic_mode: CandidateMode::Full,
        virus,
        virus_extractor: extractor,
        config: PretzelConfig::test(),
    };
    (suite, test)
}

/// A minimal untrained-quality suite for tests that only exercise the
/// search module (which ignores the models and uses just the config).
pub fn tiny_suite() -> ProviderModelSuite {
    let examples: Vec<LabeledExample> = (0..8)
        .map(|i| LabeledExample {
            features: SparseVector::from_pairs(vec![(i % 4, 2u32)]),
            label: i % 2,
        })
        .collect();
    let model = GrNbTrainer::default().train(&examples, 4, 2);
    ProviderModelSuite {
        spam: model.clone(),
        topic: model.clone(),
        topic_mode: CandidateMode::Full,
        virus: model,
        virus_extractor: NGramExtractor::new(3, 64),
        config: PretzelConfig::test(),
    }
}

/// One per-session meter row: `(kind, emails, bytes_sent, bytes_received,
/// messages)`, in submission order.
pub type MeterRow = (Option<WireTag>, u64, u64, u64, u64);

/// Extracts the per-session meter rows a fleet run must keep invariant.
pub fn meter_rows(report: &MailroomReport) -> Vec<MeterRow> {
    report
        .sessions
        .iter()
        .map(|s| (s.kind, s.emails, s.bytes_sent, s.bytes_received, s.messages))
        .collect()
}

/// Everything observable about one fleet run that an optimization knob
/// (batching, pool budgets, protocol generation) must not change: the
/// verdict transcript and the per-session round/byte accounting.
#[derive(Debug, PartialEq, Eq)]
pub struct FleetRecord {
    pub verdicts: Vec<String>,
    pub meters: Vec<MeterRow>,
    pub emails_total: u64,
}

impl FleetRecord {
    /// Pairs a client-side verdict transcript with the shutdown report's
    /// meter rows.
    pub fn new(verdicts: Vec<String>, report: &MailroomReport) -> Self {
        FleetRecord {
            verdicts,
            meters: meter_rows(report),
            emails_total: report.emails_total,
        }
    }
}

/// The submit-then-connect boilerplate of every memory-channel fleet test:
/// hands one fresh memory pair to the mailroom and drives the client end
/// through the handshake.
pub fn connect_client(
    mailroom: &Mailroom,
    spec: &ClientSpec,
    rng: &mut StdRng,
) -> MailroomClient<MemoryChannel> {
    let (provider_end, client_end) = memory_pair();
    mailroom.submit(provider_end).unwrap();
    MailroomClient::connect(client_end, spec, rng).unwrap()
}
