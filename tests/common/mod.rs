//! Shared helpers for the integration tests.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed-seed RNG (satellite of the CI bootstrap): integration tests must be
/// reproducible run to run, so every call site gets its own deterministic
/// stream instead of ambient `thread_rng` entropy.
pub fn test_rng(stream: u64) -> StdRng {
    StdRng::seed_from_u64(0x5EED_C0DE ^ (stream << 32))
}
