//! Concurrency edges of the provider mailroom: teardown mid-protocol,
//! bounded-queue backpressure, and a fixed-seed 16-session fleet whose
//! verdicts must match the single-session baseline.

use std::time::{Duration, Instant};

use pretzel::classifiers::SparseVector;
use pretzel::core::spam::SpamFunction;
use pretzel::core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel::core::topic::CandidateMode;
use pretzel::core::{PretzelConfig, WireTag};
use pretzel::server::{
    ClientSpec, ClientSpecBuilder, Mailroom, MailroomClient, MailroomConfig, ServerError,
    SessionState,
};
use pretzel::transport::{memory_pair, run_two_party, Channel};

mod common;
use common::{ling_suite_with_test_split, test_rng};

#[test]
fn teardown_mid_protocol_fails_one_session_not_the_mailroom() {
    let (suite, emails) = ling_suite_with_test_split();
    let mailroom = Mailroom::start(
        suite,
        MailroomConfig {
            workers: 1,
            queue_capacity: 4,
            rng_seed: 0xDEAD,
            ..MailroomConfig::default()
        },
    );

    // Session A: a full, clean session — handshake, setup, one email, BYE.
    let (provider_end, client_end) = memory_pair();
    let a_id = mailroom.submit(provider_end).unwrap();
    let mut rng = test_rng(40);
    let spec = ClientSpec::spam(PretzelConfig::test());
    let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
    client.classify_spam(&emails[0].features, &mut rng).unwrap();
    client.finish().unwrap();

    // Session B vanishes mid-protocol: after a successful setup and one
    // classified email it announces another round and drops the channel, so
    // the worker is left blocking inside the per-email protocol.
    let (provider_end, mut client_end) = memory_pair();
    let b_id = mailroom.submit(provider_end).unwrap();
    let mut rng_b = test_rng(41);
    let mut client_b = {
        let spec = ClientSpec::spam(PretzelConfig::test());
        // Borrow the channel so we can send a raw frame after the driver.
        MailroomClient::connect(&mut client_end, &spec, &mut rng_b).unwrap()
    };
    client_b
        .classify_spam(&emails[1].features, &mut rng_b)
        .unwrap();
    drop(client_b);
    client_end.send(&[pretzel::server::ROUND_EMAIL]).unwrap();
    drop(client_end); // worker reads the control frame, then the channel dies

    // Session C on the same mailroom must still be served end to end.
    let (provider_end, client_end) = memory_pair();
    let c_id = mailroom.submit(provider_end).unwrap();
    let mut rng_c = test_rng(42);
    let spec = ClientSpec::spam(PretzelConfig::test());
    let mut client_c = MailroomClient::connect(client_end, &spec, &mut rng_c).unwrap();
    client_c
        .classify_spam(&emails[2].features, &mut rng_c)
        .unwrap();
    client_c.finish().unwrap();

    let report = mailroom.shutdown();
    let state = |id| {
        report
            .sessions
            .iter()
            .find(|s| s.id == id)
            .unwrap()
            .state
            .clone()
    };
    assert_eq!(state(a_id), SessionState::Completed);
    assert!(
        matches!(state(b_id), SessionState::Failed(_)),
        "dropping mid-protocol must fail the session, got {:?}",
        state(b_id)
    );
    assert_eq!(
        state(c_id),
        SessionState::Completed,
        "a failed session must not poison later ones"
    );
    assert_eq!(report.completed(), 2);
}

#[test]
fn full_queue_rejects_immediately_instead_of_blocking() {
    let (suite, _) = ling_suite_with_test_split();
    let mailroom = Mailroom::start(
        suite,
        MailroomConfig {
            workers: 1,
            queue_capacity: 1,
            rng_seed: 0xBEEF,
            ..MailroomConfig::default()
        },
    );

    // Session A occupies the single worker: it handshakes and then stalls
    // inside setup (the worker blocks waiting for the client's seed).
    let (provider_end, mut stalled_client) = memory_pair();
    let a_id = mailroom.submit(provider_end).unwrap();
    stalled_client.send(&[SpamFunction::WIRE_TAG, 1]).unwrap();
    let wait_start = Instant::now();
    while mailroom.session_stats(a_id).unwrap().state != SessionState::Active {
        assert!(
            wait_start.elapsed() < Duration::from_secs(10),
            "worker never picked up session A"
        );
        std::thread::yield_now();
    }

    // Session B fills the queue's single slot.
    let (provider_end, _b_client) = memory_pair();
    mailroom.submit(provider_end).unwrap();

    // Session C must be rejected NOW — no blocking on worker availability.
    let (provider_end, c_client) = memory_pair();
    let start = Instant::now();
    let err = mailroom.submit(provider_end);
    assert!(
        matches!(err, Err(ServerError::Backpressure(_))),
        "expected backpressure, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "rejection must be immediate, took {:?}",
        start.elapsed()
    );

    // And the refused client observes Busy through the normal driver path.
    let mut rng = test_rng(50);
    let spec = ClientSpec::spam(PretzelConfig::test());
    match MailroomClient::connect(c_client, &spec, &mut rng) {
        Err(ServerError::Busy) => {}
        Err(other) => panic!("expected Busy, got error: {other}"),
        Ok(_) => panic!("expected Busy, got an accepted session"),
    }

    // Unblock everything so shutdown can drain: the stalled clients vanish.
    drop(stalled_client);
    drop(_b_client);
    let report = mailroom.shutdown();
    // A failed (client vanished mid-setup); B failed (never handshook before
    // its client dropped); C rejected at intake.
    assert_eq!(report.completed(), 0);
    assert_eq!(
        report
            .sessions
            .iter()
            .filter(|s| s.state == SessionState::Rejected)
            .count(),
        1
    );
}

/// 16 concurrent fixed-seed sessions: every session's verdicts must equal
/// the verdicts of the same emails classified through a plain two-party
/// single-session exchange with the same model and parameters.
#[test]
fn sixteen_concurrent_sessions_match_the_single_session_baseline() {
    const SESSIONS: usize = 16;
    const EMAILS_PER_SESSION: usize = 3;

    let (suite, test_emails) = ling_suite_with_test_split();
    assert!(test_emails.len() >= SESSIONS * EMAILS_PER_SESSION);
    let inboxes: Vec<Vec<SparseVector>> = (0..SESSIONS)
        .map(|s| {
            (0..EMAILS_PER_SESSION)
                .map(|e| test_emails[s * EMAILS_PER_SESSION + e].features.clone())
                .collect()
        })
        .collect();

    // Single-session baseline: one plain client/provider pair per inbox,
    // driven directly over run_two_party (no mailroom involved).
    let config = PretzelConfig::test();
    let baseline: Vec<Vec<bool>> = inboxes
        .iter()
        .enumerate()
        .map(|(s, inbox)| {
            let model = suite.spam.clone();
            let provider_cfg = config.clone();
            let client_cfg = config.clone();
            let inbox = inbox.clone();
            let (provider_res, verdicts) = run_two_party(
                move |chan| -> pretzel::core::Result<()> {
                    let mut rng = test_rng(600 + s as u64);
                    let mut provider = SpamProvider::setup(
                        chan,
                        &model,
                        &provider_cfg,
                        AheVariant::Pretzel,
                        &mut rng,
                    )?;
                    for _ in 0..EMAILS_PER_SESSION {
                        provider.process_email(chan, &mut rng)?;
                    }
                    Ok(())
                },
                move |chan| -> pretzel::core::Result<Vec<bool>> {
                    let mut rng = test_rng(700 + s as u64);
                    let mut client =
                        SpamClient::setup(chan, &client_cfg, AheVariant::Pretzel, &mut rng)?;
                    inbox
                        .iter()
                        .map(|email| client.classify(chan, email, &mut rng))
                        .collect()
                },
            );
            provider_res.unwrap();
            verdicts.unwrap()
        })
        .collect();

    // The fleet: 16 concurrent sessions against one mailroom.
    let mailroom = Mailroom::start(
        suite,
        MailroomConfig {
            workers: 4,
            queue_capacity: SESSIONS,
            rng_seed: 0xF1EE7,
            ..MailroomConfig::default()
        },
    );
    let handles: Vec<_> = inboxes
        .iter()
        .enumerate()
        .map(|(s, inbox)| {
            let (provider_end, client_end) = memory_pair();
            mailroom.submit(provider_end).unwrap();
            let spec = ClientSpec::spam(config.clone());
            let inbox = inbox.clone();
            std::thread::spawn(move || {
                let mut rng = test_rng(800 + s as u64);
                let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
                let verdicts: Vec<bool> = inbox
                    .iter()
                    .map(|email| client.classify_spam(email, &mut rng).unwrap())
                    .collect();
                client.finish().unwrap();
                verdicts
            })
        })
        .collect();
    let fleet: Vec<Vec<bool>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (s, (fleet_verdicts, baseline_verdicts)) in fleet.iter().zip(baseline.iter()).enumerate() {
        assert_eq!(
            fleet_verdicts, baseline_verdicts,
            "session {s}: concurrent verdicts diverged from the single-session baseline"
        );
    }

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), SESSIONS);
    assert_eq!(report.emails_total, (SESSIONS * EMAILS_PER_SESSION) as u64);
    // Both verdict bits and the verdict *distribution* must be non-trivial:
    // a corpus split 95/5 ham/spam should not classify all one way.
    let spam_count: usize = fleet.iter().flatten().filter(|&&v| v).count();
    assert!(spam_count < SESSIONS * EMAILS_PER_SESSION);
}

/// 16 concurrent sessions spanning all four protocol kinds on one mailroom:
/// every session completes, and the per-kind meter totals of
/// `MailroomReport::by_kind` sum exactly to the fleet-wide report.
#[test]
fn mixed_fleet_of_all_four_kinds_reconciles_per_kind_accounting() {
    const PER_KIND: usize = 4;

    let (suite, emails) = ling_suite_with_test_split();
    let config = PretzelConfig::test();
    let mailroom = Mailroom::start(
        suite,
        MailroomConfig {
            workers: 4,
            queue_capacity: 4 * PER_KIND,
            rng_seed: 0x4B1D,
            ..MailroomConfig::default()
        },
    );

    let handles: Vec<_> = (0..4 * PER_KIND)
        .map(|i| {
            let (provider_end, client_end) = memory_pair();
            mailroom.submit(provider_end).unwrap();
            let config = config.clone();
            let email = emails[i].features.clone();
            std::thread::spawn(move || {
                let mut rng = test_rng(900 + i as u64);
                match i % 4 {
                    0 => {
                        let spec = ClientSpec::spam(config);
                        let mut client =
                            MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
                        client.classify_spam(&email, &mut rng).unwrap();
                        client.classify_spam(&email, &mut rng).unwrap();
                        client.finish().unwrap();
                    }
                    1 => {
                        let spec = ClientSpecBuilder::topic(config)
                            .topic_mode(CandidateMode::Full)
                            .build();
                        let mut client =
                            MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
                        client.extract_topic(&email, &mut rng).unwrap();
                        client.extract_topic(&email, &mut rng).unwrap();
                        client.finish().unwrap();
                    }
                    2 => {
                        let spec = ClientSpec::virus(config);
                        let mut client =
                            MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
                        client
                            .scan_attachment(b"MZ\x90\x00attachment payload", &mut rng)
                            .unwrap();
                        client.scan_attachment(b"meeting notes", &mut rng).unwrap();
                        client.finish().unwrap();
                    }
                    _ => {
                        let spec = ClientSpec::search(config);
                        let mut client =
                            MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
                        client
                            .index_email(i as u64, "expense report for the offsite", &mut rng)
                            .unwrap();
                        let hits = client.search_keyword("offsite", &mut rng).unwrap();
                        assert_eq!(hits, vec![i as u64]);
                        client.finish().unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 4 * PER_KIND);

    let by_kind = report.by_kind();
    let kinds: Vec<WireTag> = by_kind.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        kinds,
        vec![1, 2, 3, 4],
        "by_kind reports spam/topic/virus/search in wire-tag order"
    );
    for (kind, totals) in &by_kind {
        assert_eq!(totals.sessions, PER_KIND, "tag {kind}: session count");
        assert_eq!(
            totals.emails,
            2 * PER_KIND as u64,
            "tag {kind}: round count"
        );
        assert!(
            totals.bytes_sent > 0 && totals.bytes_received > 0,
            "tag {kind}"
        );
    }

    // The per-kind split is a partition: each axis sums to the fleet totals.
    assert_eq!(
        by_kind.iter().map(|(_, t)| t.emails).sum::<u64>(),
        report.emails_total
    );
    assert_eq!(
        by_kind.iter().map(|(_, t)| t.bytes_sent).sum::<u64>(),
        report.fleet_bytes_sent
    );
    assert_eq!(
        by_kind.iter().map(|(_, t)| t.bytes_received).sum::<u64>(),
        report.fleet_bytes_received
    );
    assert_eq!(
        by_kind.iter().map(|(_, t)| t.messages).sum::<u64>(),
        report.fleet_messages
    );
    assert_eq!(
        by_kind.iter().map(|(_, t)| t.pool_depth).sum::<u64>(),
        report.pool_depth_total
    );
}
