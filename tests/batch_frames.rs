//! Property coverage for the batch frame codec
//! ([`pretzel::transport::pack_frames`] / `unpack_frames`): packing is
//! invertible, and *every* corruption of a packed blob — truncation at any
//! boundary, a single flipped bit, or outright random bytes — either parses
//! back to something that re-encodes byte-identically or surfaces as a clean
//! [`TransportError::MalformedBatch`]. Never a panic, never a silent
//! misparse.

use pretzel::transport::{pack_frames, unpack_frames, TransportError};
use proptest::collection::vec;
use proptest::prelude::*;

/// Up to 8 frames of up to 64 bytes each: enough to cover empty frames,
/// empty batches, and multi-frame blobs without slowing the suite down.
fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(any::<u8>(), 0..64usize), 0..8usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `unpack_frames` is the inverse of `pack_frames`.
    #[test]
    fn pack_then_unpack_round_trips(frames in frames_strategy()) {
        let blob = pack_frames(&frames);
        let parsed = unpack_frames(&blob).expect("a fresh pack must parse");
        prop_assert_eq!(parsed, frames);
    }

    /// Every strict prefix of a packed blob is rejected as malformed: the
    /// codec validates the count and every length prefix against the bytes
    /// actually present, so a cut-off batch can never half-parse.
    #[test]
    fn every_truncation_is_a_clean_malformed_error(frames in frames_strategy()) {
        let blob = pack_frames(&frames);
        for cut in 0..blob.len() {
            match unpack_frames(&blob[..cut]) {
                Err(TransportError::MalformedBatch(_)) => {}
                other => prop_assert!(
                    false,
                    "truncation to {cut}/{} bytes must be MalformedBatch, got {other:?}",
                    blob.len()
                ),
            }
        }
    }

    /// A single flipped bit either fails validation cleanly or yields a
    /// parse that re-encodes to exactly the mutated blob — i.e. the flip
    /// landed inside payload bytes and the structure is genuinely still
    /// valid. Anything else would be a silent misparse.
    #[test]
    fn bit_flips_never_panic_or_misparse(
        frames in frames_strategy(),
        bit in 0..4096usize,
    ) {
        let mut blob = pack_frames(&frames);
        let bit = bit % (blob.len() * 8);
        blob[bit / 8] ^= 1 << (bit % 8);
        match unpack_frames(&blob) {
            Err(TransportError::MalformedBatch(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            Ok(parsed) => prop_assert_eq!(
                pack_frames(&parsed),
                blob,
                "an accepted mutation must re-encode canonically"
            ),
        }
    }

    /// Arbitrary byte soup: `unpack_frames` never panics, and anything it
    /// accepts re-encodes byte-identically.
    #[test]
    fn arbitrary_bytes_never_panic(blob in vec(any::<u8>(), 0..256usize)) {
        match unpack_frames(&blob) {
            Err(TransportError::MalformedBatch(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            Ok(parsed) => prop_assert_eq!(pack_frames(&parsed), blob),
        }
    }
}
