//! Encrypted keyword search through the serving stack (the tentpole
//! acceptance test): a fixed script of index and query rounds is run four
//! ways — directly over the in-process `ProviderSession`/`ClientSession`
//! endpoints and through a `Mailroom` — at precompute budgets 0 (every
//! response encrypted inline), 1 (the pre-encrypted response pool drains and
//! refills every round), and effectively unbounded (no response is ever
//! encrypted inline). All runs must produce byte-identical verdict
//! transcripts: the offline pool is a latency knob, never a semantics knob,
//! and the mailroom adds no observable behaviour over the bare protocol.

// The budget sweep deliberately drives the deprecated per-session shim
// (`ProviderSession::precompute` / `precompute_budget`); the fleet-bank
// successor is pinned by tests/precompute_bank.rs.
#![allow(deprecated)]

use pretzel::core::search::SearchFunction;
use pretzel::core::session::{ClientSession, EmailPayload, ProviderSession, Verdict};
use pretzel::core::spam::AheVariant;
use pretzel::core::spam::SpamFunction;
use pretzel::core::{ClientContext, PretzelConfig, ProtocolRegistry, WireTag};
use pretzel::server::{ClientSpec, Mailroom, MailroomConfig};
use pretzel::transport::run_two_party;

mod common;
use common::{connect_client, test_rng, tiny_suite};

/// One client seed drives every run, so the SSE master key — and therefore
/// every label, sealed id, and verdict — is identical across runs.
const CLIENT_SEED: u64 = 90;
/// Stands in for an unbounded pool: larger than the whole round count.
const UNBOUNDED: usize = 64;

fn mailbox() -> Vec<(u64, &'static str)> {
    vec![
        (1, "quarterly budget review meeting tomorrow"),
        (2, "free pills discount offer budget"),
        (3, "meeting notes and budget discussion"),
        (4, "lunch menu attached"),
    ]
}

fn script() -> Vec<EmailPayload> {
    let mut ops: Vec<EmailPayload> = mailbox()
        .into_iter()
        .map(|(doc_id, body)| EmailPayload::SearchIndex {
            doc_id,
            body: body.into(),
        })
        .collect();
    for kw in ["budget", "meeting", "lunch", "nonexistent"] {
        ops.push(EmailPayload::SearchQuery(kw.into()));
    }
    ops
}

/// Renders a verdict transcript; equality of these strings is the
/// byte-identical acceptance criterion.
fn render(verdicts: &[Verdict]) -> Vec<String> {
    verdicts.iter().map(|v| format!("{v:?}")).collect()
}

/// Runs the script over bare in-process sessions (no mailroom) with the
/// given provider-side precompute budget.
fn run_direct(budget: usize) -> Vec<String> {
    let suite_p = tiny_suite();
    let config = suite_p.config.clone();
    let rounds = script().len();
    let (provider_res, client_res) = run_two_party(
        move |chan| -> pretzel::core::Result<()> {
            let mut rng = test_rng(91);
            let registry = ProtocolRegistry::builtin();
            let mut session = ProviderSession::setup(
                &registry,
                SearchFunction::WIRE_TAG,
                chan,
                &suite_p,
                AheVariant::Pretzel,
                &mut rng,
            )?;
            session.precompute(budget, &mut rng);
            for _ in 0..rounds {
                session.process_round(chan, &mut rng)?;
                session.precompute(budget, &mut rng);
            }
            Ok(())
        },
        move |chan| -> pretzel::core::Result<Vec<Verdict>> {
            let mut rng = test_rng(CLIENT_SEED);
            let registry = ProtocolRegistry::builtin();
            let ctx = ClientContext::new(config);
            let mut session =
                ClientSession::setup(&registry, SearchFunction::WIRE_TAG, chan, &ctx, &mut rng)?;
            script()
                .iter()
                .map(|op| session.process_round(chan, op, &mut rng))
                .collect()
        },
    );
    provider_res.unwrap();
    render(&client_res.unwrap())
}

/// Runs the same script through a mailroom whose worker precomputes with the
/// given budget.
fn run_mailroom(budget: usize) -> Vec<String> {
    let mailroom = Mailroom::start(
        tiny_suite(),
        MailroomConfig::builder()
            .workers(1)
            .queue_capacity(2)
            .rng_seed(0x5EA2C4)
            .precompute_budget(budget)
            .build(),
    );
    let mut rng = test_rng(CLIENT_SEED);
    let spec = ClientSpec::search(PretzelConfig::test());
    let mut client = connect_client(&mailroom, &spec, &mut rng);
    let verdicts: Vec<Verdict> = script()
        .iter()
        .map(|op| client.process(op, &mut rng).unwrap())
        .collect();
    client.finish().unwrap();

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 1);
    assert_eq!(report.emails_total, script().len() as u64);
    let stats = &report.sessions[0];
    assert_eq!(stats.kind, Some(SearchFunction::WIRE_TAG));
    if budget == 0 {
        assert_eq!(stats.pool_depth, 0, "budget 0 disables the offline phase");
    } else {
        assert!(
            stats.pool_depth > 0,
            "warm budgets leave pre-encrypted responses banked"
        );
    }
    render(&verdicts)
}

/// The acceptance criterion: mailroom-served search verdicts are
/// byte-identical to the direct in-process protocol at budgets 0, 1, and
/// unbounded.
#[test]
fn mailroom_search_matches_direct_protocol_at_every_budget() {
    let baseline = run_direct(0);

    // Sanity: the transcript itself is correct against the plaintext truth.
    assert_eq!(
        baseline,
        vec![
            format!("{:?}", Verdict::SearchIndexed { postings: 5 }),
            format!("{:?}", Verdict::SearchIndexed { postings: 5 }),
            format!("{:?}", Verdict::SearchIndexed { postings: 5 }),
            format!("{:?}", Verdict::SearchIndexed { postings: 3 }),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![1, 2, 3],
                    total: 3
                }
            ),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![1, 3],
                    total: 2
                }
            ),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![4],
                    total: 1
                }
            ),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![],
                    total: 0
                }
            ),
        ]
    );

    for budget in [1, UNBOUNDED] {
        assert_eq!(
            run_direct(budget),
            baseline,
            "direct protocol at budget {budget} diverged from inline"
        );
    }
    for budget in [0, 1, UNBOUNDED] {
        assert_eq!(
            run_mailroom(budget),
            baseline,
            "mailroom-served search at budget {budget} diverged from the direct protocol"
        );
    }
}

/// A search session coexists with classification sessions on one mailroom,
/// and the per-kind report splits them correctly.
#[test]
fn search_and_spam_sessions_share_one_mailroom() {
    use pretzel::classifiers::SparseVector;

    let mailroom = Mailroom::start(
        tiny_suite(),
        MailroomConfig {
            workers: 2,
            queue_capacity: 4,
            rng_seed: 0xC0FE,
            ..MailroomConfig::default()
        },
    );

    let mut rng = test_rng(93);
    let mut search_client = connect_client(
        &mailroom,
        &ClientSpec::search(PretzelConfig::test()),
        &mut rng,
    );
    search_client
        .index_email(8, "tax season reminder", &mut rng)
        .unwrap();
    assert_eq!(
        search_client.search_keyword("tax", &mut rng).unwrap(),
        vec![8]
    );

    let mut rng_s = test_rng(94);
    let mut spam_client = connect_client(
        &mailroom,
        &ClientSpec::spam(PretzelConfig::test()),
        &mut rng_s,
    );
    let email = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
    spam_client.classify_spam(&email, &mut rng_s).unwrap();

    search_client.finish().unwrap();
    spam_client.finish().unwrap();

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 2);
    let by_kind = report.by_kind();
    let kinds: Vec<WireTag> = by_kind.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        kinds,
        vec![SpamFunction::WIRE_TAG, SearchFunction::WIRE_TAG]
    );
    let emails: u64 = by_kind.iter().map(|(_, t)| t.emails).sum();
    assert_eq!(emails, report.emails_total);
}
