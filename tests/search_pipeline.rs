//! Encrypted keyword search through the serving stack (the tentpole
//! acceptance test): a fixed script of index and query rounds is run four
//! ways — directly over the in-process `ProviderSession`/`ClientSession`
//! endpoints and through a `Mailroom` — at precompute budgets 0 (every
//! response encrypted inline), 1 (the pre-encrypted response pool drains and
//! refills every round), and effectively unbounded (no response is ever
//! encrypted inline). All runs must produce byte-identical verdict
//! transcripts: the offline pool is a latency knob, never a semantics knob,
//! and the mailroom adds no observable behaviour over the bare protocol.

use pretzel::core::search::SearchFunction;
use pretzel::core::session::{ClientSession, EmailPayload, ProviderSession, Verdict};
use pretzel::core::spam::AheVariant;
use pretzel::core::spam::SpamFunction;
use pretzel::core::topic::CandidateMode;
use pretzel::core::{ClientContext, PretzelConfig, ProtocolRegistry, ProviderModelSuite, WireTag};
use pretzel::server::{ClientSpec, Mailroom, MailroomClient, MailroomConfig};
use pretzel::transport::{memory_pair, run_two_party};

mod common;
use common::test_rng;

/// One client seed drives every run, so the SSE master key — and therefore
/// every label, sealed id, and verdict — is identical across runs.
const CLIENT_SEED: u64 = 90;
/// Stands in for an unbounded pool: larger than the whole round count.
const UNBOUNDED: usize = 64;

fn mailbox() -> Vec<(u64, &'static str)> {
    vec![
        (1, "quarterly budget review meeting tomorrow"),
        (2, "free pills discount offer budget"),
        (3, "meeting notes and budget discussion"),
        (4, "lunch menu attached"),
    ]
}

fn script() -> Vec<EmailPayload> {
    let mut ops: Vec<EmailPayload> = mailbox()
        .into_iter()
        .map(|(doc_id, body)| EmailPayload::SearchIndex {
            doc_id,
            body: body.into(),
        })
        .collect();
    for kw in ["budget", "meeting", "lunch", "nonexistent"] {
        ops.push(EmailPayload::SearchQuery(kw.into()));
    }
    ops
}

/// A model suite for the mailroom runs; search sessions only use the config,
/// so tiny untrained-quality models are fine for the unused modules.
fn suite() -> ProviderModelSuite {
    use pretzel::classifiers::nb::GrNbTrainer;
    use pretzel::classifiers::{LabeledExample, NGramExtractor, SparseVector, Trainer};

    let examples: Vec<LabeledExample> = (0..8)
        .map(|i| LabeledExample {
            features: SparseVector::from_pairs(vec![(i % 4, 2u32)]),
            label: i % 2,
        })
        .collect();
    let model = GrNbTrainer::default().train(&examples, 4, 2);
    ProviderModelSuite {
        spam: model.clone(),
        topic: model.clone(),
        topic_mode: CandidateMode::Full,
        virus: model,
        virus_extractor: NGramExtractor::new(3, 64),
        config: PretzelConfig::test(),
    }
}

/// Renders a verdict transcript; equality of these strings is the
/// byte-identical acceptance criterion.
fn render(verdicts: &[Verdict]) -> Vec<String> {
    verdicts.iter().map(|v| format!("{v:?}")).collect()
}

/// Runs the script over bare in-process sessions (no mailroom) with the
/// given provider-side precompute budget.
fn run_direct(budget: usize) -> Vec<String> {
    let suite_p = suite();
    let config = suite_p.config.clone();
    let rounds = script().len();
    let (provider_res, client_res) = run_two_party(
        move |chan| -> pretzel::core::Result<()> {
            let mut rng = test_rng(91);
            let registry = ProtocolRegistry::builtin();
            let mut session = ProviderSession::setup(
                &registry,
                SearchFunction::WIRE_TAG,
                chan,
                &suite_p,
                AheVariant::Pretzel,
                &mut rng,
            )?;
            session.precompute(budget, &mut rng);
            for _ in 0..rounds {
                session.process_round(chan, &mut rng)?;
                session.precompute(budget, &mut rng);
            }
            Ok(())
        },
        move |chan| -> pretzel::core::Result<Vec<Verdict>> {
            let mut rng = test_rng(CLIENT_SEED);
            let registry = ProtocolRegistry::builtin();
            let ctx = ClientContext::new(config);
            let mut session =
                ClientSession::setup(&registry, SearchFunction::WIRE_TAG, chan, &ctx, &mut rng)?;
            script()
                .iter()
                .map(|op| session.process_round(chan, op, &mut rng))
                .collect()
        },
    );
    provider_res.unwrap();
    render(&client_res.unwrap())
}

/// Runs the same script through a mailroom whose worker precomputes with the
/// given budget.
fn run_mailroom(budget: usize) -> Vec<String> {
    let mailroom = Mailroom::start(
        suite(),
        MailroomConfig::builder()
            .workers(1)
            .queue_capacity(2)
            .rng_seed(0x5EA2C4)
            .precompute_budget(budget)
            .build(),
    );
    let (provider_end, client_end) = memory_pair();
    mailroom.submit(provider_end).unwrap();
    let mut rng = test_rng(CLIENT_SEED);
    let spec = ClientSpec::search(PretzelConfig::test());
    let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
    let verdicts: Vec<Verdict> = script()
        .iter()
        .map(|op| client.process(op, &mut rng).unwrap())
        .collect();
    client.finish().unwrap();

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 1);
    assert_eq!(report.emails_total, script().len() as u64);
    let stats = &report.sessions[0];
    assert_eq!(stats.kind, Some(SearchFunction::WIRE_TAG));
    if budget == 0 {
        assert_eq!(stats.pool_depth, 0, "budget 0 disables the offline phase");
    } else {
        assert!(
            stats.pool_depth > 0,
            "warm budgets leave pre-encrypted responses banked"
        );
    }
    render(&verdicts)
}

/// The acceptance criterion: mailroom-served search verdicts are
/// byte-identical to the direct in-process protocol at budgets 0, 1, and
/// unbounded.
#[test]
fn mailroom_search_matches_direct_protocol_at_every_budget() {
    let baseline = run_direct(0);

    // Sanity: the transcript itself is correct against the plaintext truth.
    assert_eq!(
        baseline,
        vec![
            format!("{:?}", Verdict::SearchIndexed { postings: 5 }),
            format!("{:?}", Verdict::SearchIndexed { postings: 5 }),
            format!("{:?}", Verdict::SearchIndexed { postings: 5 }),
            format!("{:?}", Verdict::SearchIndexed { postings: 3 }),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![1, 2, 3],
                    total: 3
                }
            ),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![1, 3],
                    total: 2
                }
            ),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![4],
                    total: 1
                }
            ),
            format!(
                "{:?}",
                Verdict::SearchHits {
                    ids: vec![],
                    total: 0
                }
            ),
        ]
    );

    for budget in [1, UNBOUNDED] {
        assert_eq!(
            run_direct(budget),
            baseline,
            "direct protocol at budget {budget} diverged from inline"
        );
    }
    for budget in [0, 1, UNBOUNDED] {
        assert_eq!(
            run_mailroom(budget),
            baseline,
            "mailroom-served search at budget {budget} diverged from the direct protocol"
        );
    }
}

/// A search session coexists with classification sessions on one mailroom,
/// and the per-kind report splits them correctly.
#[test]
fn search_and_spam_sessions_share_one_mailroom() {
    use pretzel::classifiers::SparseVector;

    let mailroom = Mailroom::start(
        suite(),
        MailroomConfig {
            workers: 2,
            queue_capacity: 4,
            rng_seed: 0xC0FE,
            ..MailroomConfig::default()
        },
    );

    let (provider_end, client_end) = memory_pair();
    mailroom.submit(provider_end).unwrap();
    let mut rng = test_rng(93);
    let mut search_client = MailroomClient::connect(
        client_end,
        &ClientSpec::search(PretzelConfig::test()),
        &mut rng,
    )
    .unwrap();
    search_client
        .index_email(8, "tax season reminder", &mut rng)
        .unwrap();
    assert_eq!(
        search_client.search_keyword("tax", &mut rng).unwrap(),
        vec![8]
    );

    let (provider_end, client_end) = memory_pair();
    mailroom.submit(provider_end).unwrap();
    let mut rng_s = test_rng(94);
    let mut spam_client = MailroomClient::connect(
        client_end,
        &ClientSpec::spam(PretzelConfig::test()),
        &mut rng_s,
    )
    .unwrap();
    let email = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
    spam_client.classify_spam(&email, &mut rng_s).unwrap();

    search_client.finish().unwrap();
    spam_client.finish().unwrap();

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 2);
    let by_kind = report.by_kind();
    let kinds: Vec<WireTag> = by_kind.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        kinds,
        vec![SpamFunction::WIRE_TAG, SearchFunction::WIRE_TAG]
    );
    let emails: u64 = by_kind.iter().map(|(_, t)| t.emails).sum();
    assert_eq!(emails, report.emails_total);
}
