//! Cross-crate integration test for the future-work extensions: an encrypted
//! email with an attachment flows through decryption, private virus scanning
//! (provider never sees the attachment), and provider-side encrypted search
//! (provider never sees keywords), alongside the paper's client-side index.

use pretzel::classifiers::NGramExtractor;
use pretzel::core::spam::AheVariant;
use pretzel::core::virus::{VirusModelBuilder, VirusScanClient, VirusScanProvider};
use pretzel::core::PretzelConfig;
use pretzel::e2e::{DhGroup, Email, Identity};
use pretzel::search::SearchIndex;
use pretzel::sse::{SseClient, SseClientEndpoint, SseProviderEndpoint};
use pretzel::transport::memory_pair;

mod common;
use common::test_rng;
fn attachment_model() -> (NGramExtractor, pretzel::classifiers::LinearModel) {
    let extractor = NGramExtractor::new(3, 1024);
    let mut builder = VirusModelBuilder::new(extractor);
    for i in 0..25u8 {
        let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
        bad.extend(std::iter::repeat_n(0xcc, 16));
        bad.push(i);
        builder.add_malicious(&bad);
        builder.add_benign(format!("status update number {i}: all services nominal").as_bytes());
    }
    (extractor, builder.train())
}

#[test]
fn encrypted_mail_with_attachment_is_scanned_and_searchable_privately() {
    let mut rng = test_rng(1);
    let config = PretzelConfig::test();

    // --- e2e leg: Alice sends Bob an email whose body describes an attachment.
    let dh = DhGroup::insecure_test_group(80, &mut rng);
    let alice = Identity::generate("alice@example.com", &dh, &mut rng);
    let bob = Identity::generate("bob@example.com", &dh, &mut rng);
    let email = Email {
        from: alice.address.clone(),
        to: bob.address.clone(),
        subject: "invoice attached".into(),
        body: "please review the attached invoice before the quarterly deadline".into(),
    };
    let mut attachment = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
    attachment.extend(std::iter::repeat_n(0xcc, 16));

    let encrypted = alice.encrypt_email(&bob.public(), &email, &mut rng);
    let decrypted = bob.decrypt_email(&alice.public(), &encrypted).unwrap();
    assert_eq!(decrypted.body, email.body);

    // --- Private virus scan of the attachment.
    let (extractor, model) = attachment_model();
    let (mut provider_chan, mut client_chan) = memory_pair();
    let provider_cfg = config.clone();
    let scanner = std::thread::spawn(move || {
        let mut rng = test_rng(2);
        let mut provider = VirusScanProvider::setup(
            &mut provider_chan,
            &model,
            extractor,
            &provider_cfg,
            AheVariant::Pretzel,
            &mut rng,
        )
        .unwrap();
        provider
            .process_attachment(&mut provider_chan, &mut rng)
            .unwrap();
        provider
            .process_attachment(&mut provider_chan, &mut rng)
            .unwrap();
    });
    let mut scan_client =
        VirusScanClient::setup(&mut client_chan, &config, AheVariant::Pretzel, &mut rng).unwrap();
    let malicious = scan_client
        .scan(&mut client_chan, &attachment, &mut rng)
        .unwrap();
    let body_clean = scan_client
        .scan(&mut client_chan, decrypted.body.as_bytes(), &mut rng)
        .unwrap();
    scanner.join().unwrap();
    assert!(malicious, "the booby-trapped attachment must be flagged");
    assert!(!body_clean, "ordinary text must not be flagged");

    // --- Provider-side encrypted search over the decrypted body.
    let (mut sse_provider_chan, mut sse_client_chan) = memory_pair();
    let sse_provider = std::thread::spawn(move || {
        let mut endpoint = SseProviderEndpoint::new();
        endpoint.serve(&mut sse_provider_chan).unwrap();
        endpoint.index().len()
    });
    let mut sse = SseClientEndpoint::new(SseClient::from_master_key([9u8; 32]));
    sse.index_and_upload(&mut sse_client_chan, 1, &decrypted.classification_text())
        .unwrap();
    let hits = sse.search(&mut sse_client_chan, "invoice").unwrap();
    let misses = sse.search(&mut sse_client_chan, "unrelated").unwrap();
    sse.close(&mut sse_client_chan).unwrap();
    let stored = sse_provider.join().unwrap();
    assert_eq!(hits, vec![1]);
    assert!(misses.is_empty());
    assert!(stored > 0);

    // --- The client-side index of §5 still works alongside the SSE extension.
    let mut local = SearchIndex::new();
    local.add_document(&decrypted.classification_text());
    assert_eq!(local.query("invoice").len(), 1);
}
