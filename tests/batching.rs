//! Batched rounds are an optimization, not a semantic change: a mixed
//! four-kind fleet served in coalesced batches must produce byte-identical
//! verdicts to the same fleet served one round at a time, at every offline
//! pool budget (0 = pure inline, 1 = drain-and-refill, ∞ = never dry), under
//! fixed seeds. Also pins the registry contract end to end: unknown wire
//! tags are clean errors through the whole mailroom stack, and a
//! custom-registered module serves alongside the built-ins.

// Budget-sweep fleets here deliberately drive the deprecated per-session
// precompute shim; see tests/precompute_bank.rs for the bank-mode pins.
#![allow(deprecated)]

use std::sync::Arc;

use pretzel::classifiers::SparseVector;
use pretzel::core::registry::{
    ClientContext, ClientModule, FunctionModule, ProtocolRegistry, ProviderModule, WireTag,
};
use pretzel::core::session::EmailPayload;
use pretzel::core::spam::AheVariant;
use pretzel::core::topic::CandidateMode;
use pretzel::core::{PretzelConfig, PretzelError, ProviderModelSuite};
use pretzel::server::{ClientSpec, ClientSpecBuilder, Mailroom, MailroomConfig, ServerError};
use pretzel::transport::{memory_pair, Channel};
use rand::RngCore;

mod common;
use common::{connect_client, ling_suite, test_rng, FleetRecord};

const ROUNDS_PER_SESSION: usize = 3;
/// Larger than any session's round count: no round ever computes inline.
const UNBOUNDED: usize = ROUNDS_PER_SESSION + 4;

/// The four per-kind payload scripts of the mixed fleet, in the order the
/// sessions are submitted.
fn scripts() -> Vec<(ClientSpec, Vec<EmailPayload>)> {
    let config = PretzelConfig::test();
    let spam_email = |a: usize| {
        EmailPayload::Tokens(SparseVector::from_pairs(vec![
            (a % 7, 3),
            (a % 11 + 2, 1),
            (7, 2),
        ]))
    };
    let attachment =
        |i: u8| EmailPayload::Attachment([0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, i].to_vec());
    vec![
        (
            // Baseline variant so the Paillier randomizer pool is on the
            // batched path too.
            ClientSpec::spam(config.clone()).with_variant(AheVariant::Baseline),
            (0..ROUNDS_PER_SESSION).map(spam_email).collect(),
        ),
        (
            ClientSpecBuilder::topic(config.clone())
                .topic_mode(CandidateMode::Full)
                .build(),
            (0..ROUNDS_PER_SESSION).map(spam_email).collect(),
        ),
        (
            ClientSpec::virus(config.clone()),
            (0..ROUNDS_PER_SESSION as u8).map(attachment).collect(),
        ),
        (
            ClientSpec::search(config),
            vec![
                EmailPayload::SearchIndex {
                    doc_id: 42,
                    body: "quarterly budget spreadsheet attached".into(),
                },
                EmailPayload::SearchQuery("budget".into()),
                EmailPayload::SearchQuery("absent".into()),
            ],
        ),
    ]
}

/// Serves the mixed fleet sequentially on one worker (deterministic RNG
/// streams), each client submitting its rounds either one at a time or as a
/// single coalesced batch.
fn run_fleet(budget: usize, batched: bool) -> FleetRecord {
    let mailroom = Mailroom::start(
        ling_suite(),
        MailroomConfig::builder()
            .workers(1)
            .queue_capacity(4)
            .rng_seed(0xBA7C4)
            .precompute_budget(budget)
            .build(),
    );

    let mut verdicts = Vec::new();
    for (s, (spec, payloads)) in scripts().into_iter().enumerate() {
        let mut rng = test_rng(500 + s as u64);
        let mut client = connect_client(&mailroom, &spec, &mut rng);
        client.precompute(budget, &mut rng);
        if batched {
            for verdict in client.process_batch(&payloads, &mut rng).unwrap() {
                verdicts.push(format!("{verdict:?}"));
            }
        } else {
            for payload in &payloads {
                verdicts.push(format!("{:?}", client.process(payload, &mut rng).unwrap()));
            }
        }
        assert_eq!(client.emails_sent(), payloads.len() as u64);
        client.finish().unwrap();
    }

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 4, "all four sessions must complete");
    FleetRecord::new(verdicts, &report)
}

/// The batching acceptance test: batched and sequential serving produce
/// byte-identical verdicts at pool budgets 0, 1 and ∞, and within each mode
/// the meter counts are budget-independent.
#[test]
fn batched_rounds_match_sequential_at_every_budget() {
    let seq_cold = run_fleet(0, false);
    let batch_cold = run_fleet(0, true);
    let batch_trickle = run_fleet(1, true);
    let batch_unbounded = run_fleet(UNBOUNDED, true);

    assert_eq!(
        seq_cold.verdicts, batch_cold.verdicts,
        "batched verdicts must equal sequential verdicts"
    );
    assert_eq!(
        batch_cold.verdicts, batch_trickle.verdicts,
        "pool budget must not change batched verdicts"
    );
    assert_eq!(batch_cold.verdicts, batch_unbounded.verdicts);
    assert_eq!(seq_cold.emails_total, batch_cold.emails_total);

    // Within the batched mode, wire traffic is budget-independent (pools
    // only move work off the latency path).
    assert_eq!(batch_cold.meters, batch_trickle.meters);
    assert_eq!(batch_cold.meters, batch_unbounded.meters);

    // Batching coalesces frames: strictly fewer messages than sequential
    // serving of the same rounds, for every session.
    for (seq, batch) in seq_cold.meters.iter().zip(&batch_cold.meters) {
        assert_eq!(seq.0, batch.0, "same kind order");
        assert_eq!(seq.1, batch.1, "same round counts");
        assert!(
            batch.4 < seq.4,
            "kind {:?}: batch must exchange fewer messages ({} vs {})",
            seq.0,
            batch.4,
            seq.4
        );
    }
}

// ---------------------------------------------------------------------------
// Registry contract, end to end.
// ---------------------------------------------------------------------------

/// A minimal custom module: the provider echoes each opaque payload's length.
struct EchoLenFunction;

impl EchoLenFunction {
    const WIRE_TAG: WireTag = 9;
}

impl FunctionModule for EchoLenFunction {
    fn wire_tag(&self) -> WireTag {
        Self::WIRE_TAG
    }
    fn display_name(&self) -> &'static str {
        "echo-len"
    }
    fn provider_setup(
        &self,
        _channel: &mut dyn Channel,
        _suite: &ProviderModelSuite,
        _variant: AheVariant,
        _rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>, PretzelError> {
        Ok(Box::new(EchoLenProvider))
    }
    fn client_setup(
        &self,
        _channel: &mut dyn Channel,
        _ctx: &ClientContext,
        _rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>, PretzelError> {
        Ok(Box::new(EchoLenClient))
    }
}

struct EchoLenProvider;

impl ProviderModule for EchoLenProvider {
    fn wire_tag(&self) -> WireTag {
        EchoLenFunction::WIRE_TAG
    }
    fn display_name(&self) -> &'static str {
        "echo-len"
    }
    fn precompute(&mut self, _budget: usize, _rng: &mut dyn RngCore) -> usize {
        0
    }
    fn pool_depth(&self) -> usize {
        0
    }
    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        _rng: &mut dyn RngCore,
    ) -> Result<Option<usize>, PretzelError> {
        let msg = channel.recv()?;
        channel.send(&(msg.len() as u64).to_le_bytes())?;
        Ok(None)
    }
}

struct EchoLenClient;

impl ClientModule for EchoLenClient {
    fn wire_tag(&self) -> WireTag {
        EchoLenFunction::WIRE_TAG
    }
    fn display_name(&self) -> &'static str {
        "echo-len"
    }
    fn model_storage_bytes(&self) -> usize {
        0
    }
    fn precompute(&mut self, _budget: usize, _rng: &mut dyn RngCore) -> usize {
        0
    }
    fn pool_depth(&self) -> usize {
        0
    }
    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        payload: &EmailPayload,
        _rng: &mut dyn RngCore,
    ) -> Result<pretzel::core::Verdict, PretzelError> {
        let EmailPayload::Opaque(bytes) = payload else {
            return Err(PretzelError::Protocol("echo-len takes opaque bytes".into()));
        };
        channel.send(bytes)?;
        let reply = channel.recv()?;
        let value = u64::from_le_bytes(
            reply
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .ok_or_else(|| PretzelError::Protocol("bad echo reply".into()))?,
        );
        Ok(pretzel::core::Verdict::Custom {
            tag: EchoLenFunction::WIRE_TAG,
            value,
        })
    }
}

/// Every module registered in a registry — built-ins and customs alike —
/// resolves back to itself through its wire tag.
#[test]
fn wire_tag_round_trip_is_exhaustive_over_the_registry() {
    let registry = ProtocolRegistry::builtin()
        .with_module(Arc::new(EchoLenFunction))
        .unwrap();
    assert_eq!(registry.wire_tags(), vec![1, 2, 3, 4, 9]);
    for module in registry.modules() {
        let tag = module.wire_tag();
        let resolved = registry.from_wire_tag(tag).unwrap();
        assert_eq!(resolved.wire_tag(), tag, "from_wire_tag(wire_tag(k)) == k");
        assert_eq!(resolved.display_name(), module.display_name());
    }
    // Unknown tags and duplicate registrations are clean protocol errors.
    assert!(matches!(
        registry.from_wire_tag(0xEE),
        Err(PretzelError::Protocol(_))
    ));
    let mut registry = registry;
    assert!(matches!(
        registry.register(Arc::new(EchoLenFunction)),
        Err(PretzelError::Protocol(_))
    ));
}

/// A handshake carrying a tag the mailroom's registry does not serve fails
/// that session cleanly (and only that session); a registered custom module
/// serves end to end, batch path included.
#[test]
fn mailroom_serves_registered_modules_and_rejects_unknown_tags() {
    let registry = ProtocolRegistry::builtin()
        .with_module(Arc::new(EchoLenFunction))
        .unwrap();
    let mailroom = Mailroom::start_with_registry(
        ling_suite(),
        registry,
        MailroomConfig {
            workers: 1,
            queue_capacity: 4,
            rng_seed: 0x7A6,
            ..MailroomConfig::default()
        },
    );

    // Session 1: a wire tag nobody registered. The worker refuses it at
    // handshake; the client's setup then observes a dead channel.
    let (provider_end, mut bad_client) = memory_pair();
    let bad_id = mailroom.submit(provider_end).unwrap();
    bad_client.send(&[0xEE, 1]).unwrap();

    // Session 2: the custom module, driven through the normal client stack
    // with both the sequential and the (default one-at-a-time) batch path.
    let mut rng = test_rng(77);
    let spec = ClientSpec::for_module(Arc::new(EchoLenFunction), PretzelConfig::test());
    let mut client = connect_client(&mailroom, &spec, &mut rng);
    assert_eq!(client.wire_tag(), EchoLenFunction::WIRE_TAG);
    assert_eq!(client.display_name(), "echo-len");
    let payloads = vec![
        EmailPayload::Opaque(vec![1, 2, 3]),
        EmailPayload::Opaque(vec![0; 10]),
    ];
    let verdicts = client.process_batch(&payloads, &mut rng).unwrap();
    assert_eq!(
        verdicts,
        vec![
            pretzel::core::Verdict::Custom { tag: 9, value: 3 },
            pretzel::core::Verdict::Custom { tag: 9, value: 10 },
        ]
    );
    client.finish().unwrap();

    let report = mailroom.shutdown();
    let bad = report.sessions.iter().find(|s| s.id == bad_id).unwrap();
    assert!(
        matches!(bad.state, pretzel::server::SessionState::Failed(_)),
        "unknown tag must fail the session, got {:?}",
        bad.state
    );
    assert_eq!(bad.kind, None, "an unresolved tag is never recorded");
    let good = report
        .sessions
        .iter()
        .find(|s| s.kind == Some(EchoLenFunction::WIRE_TAG))
        .unwrap();
    assert_eq!(good.kind_name, Some("echo-len"));
    assert_eq!(good.emails, 2);
}

/// Oversized and zero batch announcements are rejected before any module
/// code runs.
#[test]
fn degenerate_batch_counts_are_rejected() {
    let mailroom = Mailroom::start(
        ling_suite(),
        MailroomConfig {
            workers: 1,
            queue_capacity: 2,
            rng_seed: 0xB47,
            ..MailroomConfig::default()
        },
    );
    let mut rng = test_rng(88);
    let spec = ClientSpec::spam(PretzelConfig::test());
    let mut client = connect_client(&mailroom, &spec, &mut rng);

    // Empty batches are a client-side no-op: no traffic, no verdicts.
    assert!(client.process_batch(&[], &mut rng).unwrap().is_empty());

    // A batch above the cap is refused client-side before any frame.
    let huge: Vec<EmailPayload> = (0..pretzel::server::MAX_BATCH_ROUNDS + 1)
        .map(|_| EmailPayload::Tokens(SparseVector::from_pairs(vec![(0, 1)])))
        .collect();
    assert!(matches!(
        client.process_batch(&huge, &mut rng),
        Err(ServerError::Control(_))
    ));

    // The session is still healthy afterwards.
    client
        .classify_spam(&SparseVector::from_pairs(vec![(0, 2)]), &mut rng)
        .unwrap();
    client.finish().unwrap();
    let report = mailroom.shutdown();
    assert_eq!(report.completed(), 1);
}
