//! Wire-compatibility pins for the versioned protocol (tentpole of the
//! handshake/codec redesign, enforced by the `wire-compat` CI job).
//!
//! Three layers of protection:
//!
//! 1. **Golden bytes** — committed hex fixtures under `tests/golden/` pin
//!    the exact encoding of v1 frames (the identity, frozen forever), v2
//!    frames (header + CRC-32), and every handshake offer/ack shape. Any
//!    drift in encoded bytes fails here before it can strand deployed
//!    peers.
//! 2. **Properties** — the v1 codec is byte-identical on arbitrary
//!    payloads, and the v2 codec round-trips them.
//! 3. **Adversarial handshakes** against a live mailroom — truncated
//!    offers, out-of-range version spans, inverted spans, and unknown
//!    capability bits (which must be IGNORED, not rejected: forward
//!    compatibility is what lets an old provider serve a newer client).

use pretzel::classifiers::nb::GrNbTrainer;
use pretzel::classifiers::{LabeledExample, NGramExtractor, SparseVector, Trainer};
use pretzel::core::topic::CandidateMode;
use pretzel::core::{PretzelConfig, ProviderModelSuite};
use pretzel::datasets::ling_spam_like;
use pretzel::server::{
    ClientSpec, ClientSpecBuilder, Mailroom, MailroomClient, MailroomConfig, SessionState,
    ACK_ACCEPTED,
};
use pretzel::transport::wire::{
    codec_for, crc32, Capabilities, HandshakeAck, HandshakeError, HandshakeOffer, ProtocolVersion,
    HANDSHAKE_MAGIC, OFFER_LEN,
};
use pretzel::transport::{memory_pair, Channel};
use proptest::prelude::*;

mod common;
use common::test_rng;

// ---------------------------------------------------------------------------
// Golden fixtures
// ---------------------------------------------------------------------------

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

/// Parses a fixture file of `|`-separated hex columns, skipping comments.
fn fixture_rows(name: &str) -> Vec<Vec<String>> {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden fixture {path} must be committed: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| l.split('|').map(str::to_string).collect())
        .collect()
}

#[test]
fn golden_v1_frames_are_the_identity_forever() {
    let rows = fixture_rows("wire_v1.txt");
    assert!(!rows.is_empty());
    let codec = codec_for(ProtocolVersion::V1);
    for row in rows {
        let [name, payload, frame] = row.as_slice() else {
            panic!("bad fixture row {row:?}");
        };
        let (payload, frame) = (unhex(payload), unhex(frame));
        assert_eq!(payload, frame, "{name}: v1 frames ARE their payloads");
        assert_eq!(codec.encode(&payload), frame, "{name}: encode drifted");
        assert_eq!(
            codec.decode(&frame).unwrap(),
            payload,
            "{name}: decode drifted"
        );
    }
}

#[test]
fn golden_v2_frames_match_the_pinned_encoding() {
    let rows = fixture_rows("wire_v2.txt");
    assert!(!rows.is_empty());
    let codec = codec_for(ProtocolVersion::V2);
    for row in rows {
        let [name, payload, frame] = row.as_slice() else {
            panic!("bad fixture row {row:?}");
        };
        let (payload, frame) = (unhex(payload), unhex(frame));
        assert_eq!(codec.encode(&payload), frame, "{name}: encode drifted");
        assert_eq!(
            codec.decode(&frame).unwrap(),
            payload,
            "{name}: decode drifted"
        );
    }
}

#[test]
fn golden_handshake_frames_match_the_pinned_encoding() {
    let mut frames = std::collections::HashMap::new();
    for row in fixture_rows("handshake.txt") {
        let [name, frame] = row.as_slice() else {
            panic!("bad fixture row {row:?}");
        };
        frames.insert(name.clone(), unhex(frame));
    }

    // The frozen v1 vocabulary.
    assert_eq!(frames["legacy_v1_handshake_spam_pretzel"], vec![1, 1]);
    assert_eq!(frames["legacy_v1_ack_accepted"], vec![ACK_ACCEPTED]);
    assert_eq!(
        frames["legacy_v1_ack_busy"],
        vec![pretzel::server::ACK_BUSY]
    );

    // Offers encode (and decode) to the pinned bytes.
    let offer = HandshakeOffer {
        min_version: 1,
        max_version: 2,
        wire_tag: 1,
        variant: 1,
        capabilities: Capabilities::ROUND_BATCH,
    };
    assert_eq!(offer.encode(), frames["offer_spam_v1_to_v2_batch"]);
    assert_eq!(
        HandshakeOffer::decode(&frames["offer_spam_v1_to_v2_batch"]).unwrap(),
        offer
    );
    assert_eq!(
        HandshakeOffer {
            min_version: 2,
            max_version: 2,
            wire_tag: 4,
            variant: 1,
            capabilities: Capabilities::NONE,
        }
        .encode(),
        frames["offer_search_v2_only_nocaps"]
    );

    // Every ack shape.
    let cases: [(&str, HandshakeAck); 6] = [
        (
            "ack_accept_v2_batch",
            HandshakeAck::Accept {
                version: ProtocolVersion::V2,
                capabilities: Capabilities::ROUND_BATCH,
            },
        ),
        (
            "ack_accept_v1",
            HandshakeAck::Accept {
                version: ProtocolVersion::V1,
                capabilities: Capabilities::NONE,
            },
        ),
        (
            "ack_refuse_version_mismatch_1_2",
            HandshakeAck::Refuse(HandshakeError::VersionMismatch {
                offered_min: 0,
                offered_max: 0,
                supported_min: 1,
                supported_max: 2,
            }),
        ),
        (
            "ack_refuse_capability_batch",
            HandshakeAck::Refuse(HandshakeError::CapabilityRefused {
                missing: Capabilities::ROUND_BATCH,
            }),
        ),
        (
            "ack_refuse_unknown_tag_0xee",
            HandshakeAck::Refuse(HandshakeError::UnknownTag { tag: 0xEE }),
        ),
        (
            "ack_refuse_malformed",
            HandshakeAck::Refuse(HandshakeError::Malformed(
                "provider judged the offer malformed".into(),
            )),
        ),
    ];
    for (name, ack) in cases {
        assert_eq!(ack.encode(), frames[name], "{name}: encode drifted");
        assert_eq!(
            HandshakeAck::decode(&frames[name]).unwrap(),
            ack,
            "{name}: decode drifted"
        );
    }
}

#[test]
fn v1_serving_constants_are_frozen() {
    // These byte values are on the wire of every deployed v1 peer.
    assert_eq!(pretzel::server::ACK_ACCEPTED, 0x41);
    assert_eq!(pretzel::server::ACK_BUSY, 0x42);
    assert_eq!(pretzel::server::ROUND_BYE, 0);
    assert_eq!(pretzel::server::ROUND_EMAIL, 1);
    assert_eq!(pretzel::server::ROUND_BATCH, 2);
    assert_eq!(HANDSHAKE_MAGIC, [0x00, b'P', b'Z']);
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The frozen v1 codec is byte-for-byte the identity on arbitrary
    /// payloads — encode adds nothing, decode strips nothing.
    #[test]
    fn v1_codec_is_byte_identical_on_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let codec = codec_for(ProtocolVersion::V1);
        prop_assert_eq!(codec.encode(&payload), payload.clone());
        prop_assert_eq!(codec.decode(&payload).unwrap(), payload);
    }

    /// The v2 codec round-trips arbitrary payloads through its framed,
    /// checksummed encoding.
    #[test]
    fn v2_codec_round_trips_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let codec = codec_for(ProtocolVersion::V2);
        let frame = codec.encode(&payload);
        prop_assert_eq!(frame.len(), payload.len() + 10);
        prop_assert_eq!(codec.decode(&frame).unwrap(), payload);
    }
}

// ---------------------------------------------------------------------------
// Adversarial handshakes against a live mailroom
// ---------------------------------------------------------------------------

fn small_suite() -> ProviderModelSuite {
    let mut spec = ling_spam_like(0.08);
    spec.shared_vocab = 60;
    spec.class_vocab = 30;
    spec.doc_len = (10, 30);
    let corpus = spec.generate();
    let model = GrNbTrainer::default().train(&corpus.examples, corpus.num_features, 2);

    let extractor = NGramExtractor::new(3, 64);
    let virus_examples: Vec<LabeledExample> = (0..8u8)
        .flat_map(|i| {
            let bad = [0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, i];
            let good = format!("plain attachment {i}");
            [
                LabeledExample {
                    features: extractor.extract(&bad),
                    label: 1,
                },
                LabeledExample {
                    features: extractor.extract(good.as_bytes()),
                    label: 0,
                },
            ]
        })
        .collect();
    let virus_model = GrNbTrainer::default().train(&virus_examples, extractor.buckets, 2);

    ProviderModelSuite {
        spam: model.clone(),
        topic: model,
        topic_mode: CandidateMode::Full,
        virus: virus_model,
        virus_extractor: extractor,
        config: PretzelConfig::test(),
    }
}

fn one_worker_mailroom() -> Mailroom {
    Mailroom::start(
        small_suite(),
        MailroomConfig::builder()
            .workers(1)
            .queue_capacity(4)
            .rng_seed(0x317E)
            .build(),
    )
}

/// Sends a raw first frame and returns the provider's negotiation ack (the
/// intake ack is drained and asserted first).
fn raw_handshake(mailroom: &Mailroom, first_frame: &[u8]) -> (u64, HandshakeAck) {
    let (provider_end, mut client_end) = memory_pair();
    let id = mailroom.submit(provider_end).unwrap();
    client_end.send(first_frame).unwrap();
    assert_eq!(client_end.recv().unwrap(), vec![ACK_ACCEPTED]);
    let ack = HandshakeAck::decode(&client_end.recv().unwrap()).unwrap();
    (id, ack)
}

#[test]
fn truncated_offers_fail_only_their_session() {
    let mailroom = one_worker_mailroom();

    // Magic plus a partial body: recognizably an offer, structurally short.
    let mut truncated = HANDSHAKE_MAGIC.to_vec();
    truncated.extend_from_slice(&[1, 2]);
    assert!(truncated.len() < OFFER_LEN);
    let (bad_id, ack) = raw_handshake(&mailroom, &truncated);
    assert!(
        matches!(ack, HandshakeAck::Refuse(HandshakeError::Malformed(_))),
        "got {ack:?}"
    );

    // The mailroom still serves a healthy session afterwards.
    let (provider_end, client_end) = memory_pair();
    let ok_id = mailroom.submit(provider_end).unwrap();
    let mut rng = test_rng(41);
    let spec = ClientSpec::spam(PretzelConfig::test());
    let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
    client
        .classify_spam(&SparseVector::from_pairs(vec![(0, 2)]), &mut rng)
        .unwrap();
    client.finish().unwrap();

    let report = mailroom.shutdown();
    let bad = report.sessions.iter().find(|s| s.id == bad_id).unwrap();
    assert!(matches!(bad.state, SessionState::Failed(_)));
    let ok = report.sessions.iter().find(|s| s.id == ok_id).unwrap();
    assert_eq!(ok.state, SessionState::Completed);
}

#[test]
fn out_of_range_version_spans_get_a_structured_mismatch() {
    let mailroom = one_worker_mailroom();
    // A client from the future that dropped v1/v2 support entirely.
    let offer = HandshakeOffer {
        min_version: 7,
        max_version: 9,
        wire_tag: 1,
        variant: 1,
        capabilities: Capabilities::NONE,
    };
    let (_, ack) = raw_handshake(&mailroom, &offer.encode());
    match ack {
        HandshakeAck::Refuse(HandshakeError::VersionMismatch {
            supported_min,
            supported_max,
            ..
        }) => {
            assert_eq!(supported_min, ProtocolVersion::MIN.as_byte());
            assert_eq!(supported_max, ProtocolVersion::MAX.as_byte());
        }
        other => panic!("expected a version mismatch refusal, got {other:?}"),
    }
    mailroom.shutdown();
}

#[test]
fn inverted_and_zero_version_spans_are_malformed() {
    let mailroom = one_worker_mailroom();
    for (min, max) in [(2, 1), (0, 2)] {
        let offer = HandshakeOffer {
            min_version: min,
            max_version: max,
            wire_tag: 1,
            variant: 1,
            capabilities: Capabilities::NONE,
        };
        let (_, ack) = raw_handshake(&mailroom, &offer.encode());
        assert!(
            matches!(ack, HandshakeAck::Refuse(HandshakeError::Malformed(_))),
            "span {min}..={max} must be malformed, got {ack:?}"
        );
    }
    mailroom.shutdown();
}

#[test]
fn unknown_capability_bits_are_ignored_not_rejected() {
    let mailroom = one_worker_mailroom();
    let (provider_end, client_end) = memory_pair();
    mailroom.submit(provider_end).unwrap();

    // A newer client advertising capability bits this build has never heard
    // of: negotiation must succeed and grant only the known intersection.
    let mut rng = test_rng(42);
    let spec = ClientSpecBuilder::spam(PretzelConfig::test())
        .capabilities(Capabilities::from_bits((1 << 40) | (1 << 17) | 1))
        .build();
    let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
    let profile = client.negotiated();
    assert_eq!(profile.version, ProtocolVersion::V2);
    assert_eq!(profile.capabilities, Capabilities::ROUND_BATCH);
    client
        .classify_spam(&SparseVector::from_pairs(vec![(0, 2)]), &mut rng)
        .unwrap();
    client.finish().unwrap();
    mailroom.shutdown();
}

#[test]
fn offers_with_trailing_bytes_from_the_future_still_negotiate() {
    let mailroom = one_worker_mailroom();
    let (provider_end, mut client_end) = memory_pair();
    mailroom.submit(provider_end).unwrap();

    // A longer offer from a future build: extra fields after the known 15
    // bytes are ignored by the decoder.
    let mut frame = HandshakeOffer {
        min_version: 1,
        max_version: 2,
        wire_tag: 1,
        variant: 1,
        capabilities: Capabilities::ROUND_BATCH,
    }
    .encode();
    frame.extend_from_slice(&[0xAB; 9]);
    client_end.send(&frame).unwrap();
    assert_eq!(client_end.recv().unwrap(), vec![ACK_ACCEPTED]);
    let ack = HandshakeAck::decode(&client_end.recv().unwrap()).unwrap();
    assert_eq!(
        ack,
        HandshakeAck::Accept {
            version: ProtocolVersion::V2,
            capabilities: Capabilities::ROUND_BATCH,
        }
    );
    // Hang up instead of running setup: the worker must notice and fail
    // only this session (shutdown would otherwise wait on it forever).
    drop(client_end);
    mailroom.shutdown();
}
