//! Failure-injection and misbehaving-party tests (paper §4.4).
//!
//! Guarantee 1 says the parties cannot observe each other's inputs even when
//! they deviate from the protocol's mechanics. These tests feed each endpoint
//! malformed, truncated, or outright malicious messages and check that the
//! endpoint returns an error instead of panicking, leaking, or silently
//! producing a result. They also exercise the replay defense and the
//! "plausible deniability" opt-outs the paper describes.

use pretzel::classifiers::nb::GrNbTrainer;
use pretzel::classifiers::{LabeledExample, SparseVector, Trainer};
use pretzel::core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel::core::topic::{CandidateMode, TopicClient};
use pretzel::core::{PretzelConfig, PretzelError, ReplayGuard};
use pretzel::primitives::sha256;
use pretzel::transport::{memory_pair, run_two_party, Channel};

mod common;
use common::test_rng;
fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
    LabeledExample {
        features: SparseVector::from_pairs(pairs.to_vec()),
        label,
    }
}

fn tiny_spam_model() -> pretzel::classifiers::LinearModel {
    let mut corpus = Vec::new();
    for i in 0..10 {
        corpus.push(example(&[(i % 4, 2)], 1));
        corpus.push(example(&[(4 + i % 4, 2)], 0));
    }
    GrNbTrainer::default().train(&corpus, 8, 2)
}

/// Sends the messages a responder expects from the joint-randomness exchange,
/// honestly. Returns after the exchange completes.
fn run_joint_randomness_as_initiator<C: Channel>(chan: &mut C) {
    let seed = [5u8; 32];
    chan.send(&sha256(&seed)).unwrap();
    let _their_seed = chan.recv().unwrap();
    chan.send(&seed).unwrap();
}

#[test]
fn spam_client_rejects_a_false_commitment_reveal() {
    let (client_res, _) = run_two_party(
        |chan| {
            SpamClient::setup(
                chan,
                &PretzelConfig::test(),
                AheVariant::Pretzel,
                &mut test_rng(1),
            )
        },
        |chan| {
            // Malicious provider: commits to one seed, reveals a different one.
            let committed = [1u8; 32];
            chan.send(&sha256(&committed)).unwrap();
            let _client_seed = chan.recv().unwrap();
            chan.send(&[2u8; 32]).unwrap();
        },
    );
    assert!(
        matches!(client_res, Err(PretzelError::Protocol(_))),
        "client must reject a reveal that does not match the commitment"
    );
}

#[test]
fn spam_client_rejects_a_model_with_the_wrong_column_count() {
    let (client_res, _) = run_two_party(
        |chan| {
            SpamClient::setup(
                chan,
                &PretzelConfig::test(),
                AheVariant::Pretzel,
                &mut test_rng(2),
            )
        },
        |chan| {
            run_joint_randomness_as_initiator(chan);
            chan.send(&9u64.to_le_bytes()).unwrap(); // rows
            chan.send(&3u64.to_le_bytes()).unwrap(); // cols: spam must be 2
        },
    );
    assert!(matches!(client_res, Err(PretzelError::Protocol(_))));
}

#[test]
fn spam_client_rejects_a_garbage_public_key() {
    let (client_res, _) = run_two_party(
        |chan| {
            SpamClient::setup(
                chan,
                &PretzelConfig::test(),
                AheVariant::Pretzel,
                &mut test_rng(3),
            )
        },
        |chan| {
            run_joint_randomness_as_initiator(chan);
            chan.send(&9u64.to_le_bytes()).unwrap();
            chan.send(&2u64.to_le_bytes()).unwrap();
            chan.send(&[0xAB; 17]).unwrap(); // not a serialized RLWE public key
        },
    );
    assert!(client_res.is_err(), "garbage public key must be rejected");
}

#[test]
fn spam_client_rejects_a_truncated_model_blob() {
    let config = PretzelConfig::test();
    let params = config.rlwe_params();
    let (client_res, _) = run_two_party(
        |chan| SpamClient::setup(chan, &config, AheVariant::Pretzel, &mut test_rng(4)),
        move |chan| {
            let mut rng = test_rng(5);
            run_joint_randomness_as_initiator(chan);
            chan.send(&9u64.to_le_bytes()).unwrap();
            chan.send(&2u64.to_le_bytes()).unwrap();
            // A syntactically valid public key…
            let (_sk, pk) = pretzel::rlwe::keygen(&params, None, &mut rng);
            chan.send(&pk.to_bytes()).unwrap();
            // …but a model blob whose length does not match the claimed count.
            chan.send(&4u64.to_le_bytes()).unwrap();
            chan.send(&[0u8; 100]).unwrap();
        },
    );
    let err = client_res
        .err()
        .expect("blob size mismatch must fail the setup");
    assert!(
        matches!(err, PretzelError::Protocol(_)),
        "blob size mismatch must be a protocol error, got {err:?}"
    );
}

#[test]
fn spam_client_errors_when_the_provider_disappears_mid_setup() {
    let (client_res, _) = run_two_party(
        |chan| {
            SpamClient::setup(
                chan,
                &PretzelConfig::test(),
                AheVariant::Pretzel,
                &mut test_rng(6),
            )
        },
        |chan| {
            // The provider sends only its commitment and then hangs up.
            chan.send(&sha256(&[1u8; 32])).unwrap();
        },
    );
    let err = client_res
        .err()
        .expect("a vanished provider must fail the setup");
    assert!(
        matches!(err, PretzelError::Transport(_)),
        "a closed channel must surface as a transport error, got {err:?}"
    );
}

#[test]
fn spam_provider_errors_on_a_garbage_per_email_message() {
    let model = tiny_spam_model();
    let config = PretzelConfig::test();
    let config_client = config.clone();

    let (provider_res, client_res) = run_two_party(
        move |chan| {
            let mut rng = test_rng(7);
            let mut provider =
                SpamProvider::setup(chan, &model, &config, AheVariant::Pretzel, &mut rng)?;
            // The "per-email" message the client sends below is garbage.
            provider.process_email(chan, &mut rng)
        },
        move |chan| {
            let mut rng = test_rng(8);
            let _client =
                SpamClient::setup(chan, &config_client, AheVariant::Pretzel, &mut rng).unwrap();
            // Instead of a blinded ciphertext, send junk.
            chan.send(b"not a ciphertext").unwrap();
        },
    );
    let () = client_res;
    assert!(
        provider_res.is_err(),
        "the provider must reject a malformed per-email message"
    );
}

#[test]
fn topic_client_requires_a_candidate_model_for_decomposed_mode() {
    let (mut _provider_chan, mut client_chan) = memory_pair();
    let res = TopicClient::setup(
        &mut client_chan,
        &PretzelConfig::test(),
        AheVariant::Pretzel,
        CandidateMode::Decomposed(5),
        None,
        &mut test_rng(9),
    );
    assert!(matches!(res, Err(PretzelError::Protocol(_))));
}

#[test]
fn replay_guard_rejects_duplicates_per_sender() {
    let mut guard = ReplayGuard::default();
    assert!(guard.check_and_record("alice@example.com", 0));
    assert!(guard.check_and_record("alice@example.com", 1));
    assert!(
        !guard.check_and_record("alice@example.com", 0),
        "replaying alice's email 0 must be rejected"
    );
    // A different sender has an independent channel (the §4.4 defense treats
    // each sender as its own lossy, duplicating channel).
    assert!(guard.check_and_record("mallory@example.com", 0));
    assert!(!guard.check_and_record("mallory@example.com", 0));
    // Alice can still send new ids.
    assert!(guard.check_and_record("alice@example.com", 2));
}

/// A channel decorator that flips one bit in every sent message at least
/// `min_len` bytes long — a stand-in for an active network adversary
/// corrupting the large RLWE search-response frames while leaving the small
/// control messages alone.
struct BitFlipChannel<C> {
    inner: C,
    min_len: usize,
}

impl<C: Channel> Channel for BitFlipChannel<C> {
    fn send(&mut self, msg: &[u8]) -> pretzel::transport::Result<()> {
        if msg.len() >= self.min_len {
            let mut corrupted = msg.to_vec();
            corrupted[msg.len() / 2] ^= 0x01;
            self.inner.send(&corrupted)
        } else {
            self.inner.send(msg)
        }
    }
    fn recv(&mut self) -> pretzel::transport::Result<Vec<u8>> {
        self.inner.recv()
    }
    fn flush(&mut self) -> pretzel::transport::Result<()> {
        self.inner.flush()
    }
}

#[test]
fn search_client_rejects_a_tampered_response_instead_of_misdecoding() {
    use pretzel::core::search::{SearchClient, SearchProvider};

    let config = PretzelConfig::test();
    let config_client = config.clone();
    // The response ciphertext (2·n·8 bytes) is the only provider message
    // this large; everything else passes through untouched.
    let ct_len = config.rlwe_params().ciphertext_bytes();
    let (provider_res, client_res) = run_two_party(
        move |chan| {
            let mut tampering = BitFlipChannel {
                inner: chan,
                min_len: ct_len,
            };
            let mut rng = test_rng(60);
            let mut provider = SearchProvider::setup(&mut tampering, &config, &mut rng)?;
            provider.process_round(&mut tampering, &mut rng)?; // honest index round
            provider.process_round(&mut tampering, &mut rng) // corrupted query round
        },
        move |chan| {
            let mut rng = test_rng(61);
            let mut client = SearchClient::setup(chan, &config_client, &mut rng)?;
            client.index_email(chan, 1, "confidential merger draft")?;
            client.query(chan, "merger")
        },
    );
    provider_res.unwrap();
    let err = client_res.expect_err("a bit-flipped response must not decode");
    assert!(
        matches!(err, PretzelError::Protocol(_)),
        "tampering must surface as a protocol error, got {err:?}"
    );
}

#[test]
fn search_client_rejects_a_truncated_response() {
    use pretzel::core::search::{response_capacity, SearchClient};

    let config = PretzelConfig::test();
    let capacity = response_capacity(&config.rlwe_params()) as u64;
    let (client_res, _) = run_two_party(
        move |chan| {
            let mut rng = test_rng(62);
            let client = SearchClient::setup(chan, &config, &mut rng)?;
            client.query(chan, "anything")
        },
        move |chan| {
            // A provider that runs the setup honestly…
            run_joint_randomness_as_initiator(chan);
            let _pk = chan.recv().unwrap();
            chan.send(&capacity.to_le_bytes()).unwrap();
            // …then answers the query with a truncated ciphertext.
            let _query = chan.recv().unwrap();
            chan.send(&[0u8; 100]).unwrap();
        },
    );
    let err = client_res.expect_err("a truncated response must be rejected");
    assert!(matches!(err, PretzelError::Protocol(_)));
}

#[test]
fn search_client_rejects_a_capacity_downgrade() {
    use pretzel::core::search::SearchClient;

    // A malicious provider announcing a different response capacity (e.g. to
    // smuggle truncated result sets past the client) fails the setup.
    let (client_res, _) = run_two_party(
        |chan| {
            let mut rng = test_rng(63);
            SearchClient::setup(chan, &PretzelConfig::test(), &mut rng)
        },
        |chan| {
            run_joint_randomness_as_initiator(chan);
            let _pk = chan.recv().unwrap();
            chan.send(&1u64.to_le_bytes()).unwrap();
        },
    );
    assert!(matches!(client_res, Err(PretzelError::Protocol(_))));
}

#[test]
fn sse_provider_rejects_malformed_uploads_without_panicking() {
    use pretzel::sse::{SseError, SseProviderEndpoint};

    let (provider_res, _) = run_two_party(
        |chan| SseProviderEndpoint::new().serve(chan),
        |chan| {
            // Claim 1000 postings but send 3 bytes of payload.
            let mut msg = vec![0u8];
            msg.extend_from_slice(&1000u64.to_le_bytes());
            msg.extend_from_slice(&[1, 2, 3]);
            chan.send(&msg).unwrap();
        },
    );
    assert!(matches!(provider_res, Err(SseError::Protocol(_))));
}
