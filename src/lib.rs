//! Umbrella crate for the Pretzel reproduction.
//!
//! Re-exports every workspace crate under one name so the examples and
//! integration tests (and downstream users who just want "all of Pretzel")
//! can depend on a single crate. See the individual crates for the substance:
//!
//! * [`core`] — the Pretzel system itself (function modules, cost model,
//!   configuration).
//! * [`e2e`], [`classifiers`], [`datasets`], [`search`], [`sse`] —
//!   application-level substrates (including the provider-side encrypted
//!   search extension the paper leaves as future work).
//! * [`server`] — the provider mailroom: a multi-session serving layer
//!   (worker pool, bounded intake, per-session metering) over the function
//!   modules.
//! * [`scenarios`] — named, seeded workload generators (steady, bursty,
//!   heavy-tail, churn, slow-loris, pool-exhaustion, mixed-fleet) that drive
//!   a mailroom fleet for integration tests and statistical benchmarks.
//! * [`rlwe`], [`paillier`], [`gc`], [`sdp`], [`bignum`], [`primitives`],
//!   [`transport`] — cryptographic and systems substrates.

pub use pretzel_bignum as bignum;
pub use pretzel_classifiers as classifiers;
pub use pretzel_core as core;
pub use pretzel_datasets as datasets;
pub use pretzel_e2e as e2e;
pub use pretzel_gc as gc;
pub use pretzel_paillier as paillier;
pub use pretzel_primitives as primitives;
pub use pretzel_rlwe as rlwe;
pub use pretzel_scenarios as scenarios;
pub use pretzel_sdp as sdp;
pub use pretzel_search as search;
pub use pretzel_server as server;
pub use pretzel_sse as sse;
pub use pretzel_transport as transport;

/// Version of the reproduction workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
