//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used in this
//! workspace (single-producer/single-consumer duplex pairs), so the stub
//! delegates to `std::sync::mpsc` wrapped in a `Mutex` on the receiving side
//! to provide crossbeam's `&self`-based, `Sync` receiver API.

pub mod channel {
    //! MPMC-style channels backed by `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel. Shareable (`Sync`) like
    /// crossbeam's receiver; concurrent `recv` calls serialize on a mutex.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails once the channel is empty and
        /// every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Returns immediately with a value if one is ready.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
            for i in 0..100u32 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..1000 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 999 * 1000 / 2);
        }
    }
}
