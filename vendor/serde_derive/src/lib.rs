//! Offline stand-in for `serde_derive`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! serializes through the traits yet (no serde_json or bincode in the tree),
//! so the derives expand to nothing. `#[derive(Serialize, Deserialize)]`
//! compiles unchanged and the wire-format decision is deferred until a real
//! serializer lands.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
