//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest that the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, [`any`],
//! [`collection::vec`], `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! / `prop_assume!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: no shrinking on failure (the failing
//! inputs are printed instead), and generation is driven by a deterministic
//! per-test RNG (seeded from the test's module path and name) so CI runs are
//! reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; another case is drawn.
    Reject(String),
    /// `prop_assert*!` failed; the test panics.
    Fail(String),
}

/// Deterministic RNG driving generation for one property test.
pub fn test_rng(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name: stable across runs and
    // platforms, distinct per test.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with length drawn from a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. Each `fn` runs `config.cases` successful cases
/// with inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} attempts for {} cases)",
                        attempts,
                        config.cases,
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                    let case = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  inputs: {}",
                                msg, case
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x::z");
        let mut d = crate::test_rng("x::y");
        assert_ne!(c.next_u64(), d.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_and_vec_strategies_work(
            n in 1usize..10,
            bytes in crate::collection::vec(any::<u8>(), 0..16),
            word in any::<u64>(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(bytes.len() < 16);
            prop_assert_eq!(word, word);
        }

        #[test]
        fn prop_map_applies(
            doubled in (0u32..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(doubled % 2 == 0);
            prop_assume!(doubled > 0);
            prop_assert_ne!(doubled, 1);
        }
    }
}
