//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand` 0.8 API that the workspace
//! uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`], [`thread_rng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is a deterministic xoshiro256++ generator — not cryptographically
//! secure, but statistically solid and stable across runs, which is what the
//! tests and benchmarks need. `thread_rng` seeds a fresh `StdRng` from process
//! entropy (time, thread, and a global counter).

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG by expanding a 64-bit state with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            Self::from_state(s)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Generator returned by [`crate::thread_rng`]; freshly seeded from
    /// process entropy.
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new(inner: StdRng) -> Self {
            ThreadRng { inner }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a nondeterministically seeded RNG.
///
/// Unlike the real `rand`, each call returns an independent generator rather
/// than a handle to a thread-local; every caller in this workspace treats the
/// result as an opaque `impl Rng`, so the difference is unobservable.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&now.to_le_bytes());
    seed[8..16].copy_from_slice(&tid.to_le_bytes());
    seed[16..24].copy_from_slice(&count.to_le_bytes());
    seed[24..].copy_from_slice(&(now ^ tid.rotate_left(32)).to_le_bytes());
    rngs::ThreadRng::new(rngs::StdRng::from_seed(seed))
}

pub mod distributions {
    //! The standard distribution and uniform range sampling.

    use super::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// Types that can produce values of `T`.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values of the type
    /// (unit interval for floats).
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl<T, const N: usize> Distribution<[T; N]> for Standard
    where
        Standard: Distribution<T>,
    {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> [T; N] {
            std::array::from_fn(|_| self.sample(rng))
        }
    }

    /// Range types accepted by [`Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    range_float!(f32, f64);

    /// Uniform value in `[0, span)` by widening multiply (Lemire reduction,
    /// without the rejection step — bias is below 2^-32 for the spans the
    /// workspace uses, which is irrelevant for tests and benchmarks).
    fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

// Re-export matching the real crate's layout.
pub use distributions::Distribution;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
