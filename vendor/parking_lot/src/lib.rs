//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API: `lock()`
//! returns the guard directly, recovering from poisoning (a poisoned std
//! mutex just means another thread panicked while holding it; the data is
//! still consistent for the counters this workspace protects).

use std::fmt;
use std::sync::TryLockError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` does not return a poison `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value; no locking needed
    /// because `&mut self` proves exclusive access.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn shared_counter_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
