//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of message
//! and model types but never serializes through them yet (no format crate in
//! the tree), so this stub provides the two trait names and re-exports the
//! no-op derives from `serde_derive`. When a real serializer is introduced,
//! replace this vendored pair with the real crates.

/// Marker matching `serde::Serialize`'s name; carries no methods because no
/// serializer exists in the workspace yet.
pub trait Serialize {}

/// Marker matching `serde::Deserialize`'s name and lifetime parameter.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
