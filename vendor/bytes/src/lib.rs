//! Offline stand-in for the `bytes` crate.
//!
//! Implements the small slice-of-a-growable-buffer API that the transport
//! layer's framing code uses: [`BytesMut`] with `with_capacity`, `put_slice`
//! (via [`BufMut`]), `advance` (via [`Buf`]), and `split_to`. Backed by a
//! `Vec<u8>` plus a read cursor; `advance`/`split_to` are O(1) until the next
//! write compacts the buffer.

use std::ops::Deref;

/// Read-side operations.
pub trait Buf {
    /// Discards the first `count` readable bytes.
    fn advance(&mut self, count: usize);
}

/// Write-side operations.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer with an amortized-O(1) read cursor.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes are readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` readable bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let split = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut {
            data: split,
            start: 0,
        }
    }

    /// Copies the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.start..].to_vec()
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance out of bounds");
        self.start += count;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.compact();
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_advance_split_roundtrip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf[0], 1);
        buf.advance(2);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf[0], 3);
        let head = buf.split_to(2);
        assert_eq!(head.to_vec(), vec![3, 4]);
        assert_eq!(buf.to_vec(), vec![5]);
        buf.put_slice(&[6]);
        assert_eq!(buf.to_vec(), vec![5, 6]);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1]);
        buf.advance(2);
    }
}
