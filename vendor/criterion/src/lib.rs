//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion's API that the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::measurement_time`] / [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::finish`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (used with
//! `harness = false`).
//!
//! Measurement is a simple wall-clock mean over `sample_size` batches — no
//! statistical analysis, plotting, or baseline comparison. Timings print to
//! stdout in a `name ... mean 1.234 ms/iter` format.

use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding `value` or the computation feeding
/// it. Same contract as `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            samples: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.default_samples, f);
        self
    }
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the stub always runs exactly
    /// `sample_size` samples regardless of the requested measurement time.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Times `f` and prints the mean per-iteration cost.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, name.into());
        run_bench(&full, self.samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    // One warm-up sample, then the timed samples.
    f(&mut bencher);
    bencher.total = Duration::ZERO;
    bencher.iters = 0;
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean_ns = if bencher.iters == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / bencher.iters as f64
    };
    println!("{name:<50} mean {}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:.0} ns/iter")
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine`, accumulating into the sample mean.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.total += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Collects benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups (`harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_counts_iters() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    criterion_group!(bench_group, smoke);

    fn smoke(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn criterion_group_macro_produces_runner() {
        bench_group();
    }
}
