//! Client-side keyword search (§5): the provider's servers are not needed to
//! search a mailbox — the client indexes decrypted emails locally.
//!
//! Run with: `cargo run --release --example keyword_search`

use std::time::Instant;

use pretzel_datasets::{gmail_like, Corpus};
use pretzel_search::SearchIndex;

fn main() {
    let corpus: Corpus = gmail_like(0.3).generate();
    println!("Indexing a mailbox of {} emails…", corpus.examples.len());

    let mut index = SearchIndex::new();
    let start = Instant::now();
    let mut texts = Vec::new();
    for example in &corpus.examples {
        let text = corpus.render_text(example);
        index.add_document(&text);
        texts.push(text);
    }
    let indexing = start.elapsed();
    let stats = index.stats();
    println!(
        "Indexed {} documents, {} distinct terms, {} postings, ~{} KB, {:.2} ms total ({:.3} ms/email).",
        stats.documents,
        stats.terms,
        stats.postings,
        stats.size_bytes / 1024,
        indexing.as_secs_f64() * 1e3,
        indexing.as_secs_f64() * 1e3 / corpus.examples.len() as f64
    );

    // Query a few words of varying frequency.
    let probes: Vec<&str> = texts[0].split(' ').take(3).collect();
    for probe in probes {
        let start = Instant::now();
        let hits = index.query(probe);
        let elapsed = start.elapsed();
        println!(
            "query {:?}: {} matching emails in {:.1} µs",
            probe,
            hits.len(),
            elapsed.as_secs_f64() * 1e6
        );
    }

    // Conjunctive query.
    let words: Vec<&str> = texts[1].split(' ').take(2).collect();
    let start = Instant::now();
    let hits = index.query_all(&words);
    println!(
        "conjunctive query {:?}: {} matching emails in {:.1} µs",
        words,
        hits.len(),
        start.elapsed().as_secs_f64() * 1e6
    );

    // Incremental update (a newly arrived email).
    let start = Instant::now();
    index.add_document("urgent quarterly budget review tomorrow with the auditors");
    println!(
        "indexing one new email took {:.1} µs; \"auditors\" now returns {} hit(s)",
        start.elapsed().as_secs_f64() * 1e6,
        index.query("auditors").len()
    );
    println!("\nAll of this ran on the client; the provider only ever stored ciphertext.");
}
