//! Keyword search both ways: the paper's client-side index (§5) and the
//! provider-served encrypted variant, where a mailroom answers single-keyword
//! queries over an SSE index without ever seeing keywords or document ids.
//!
//! Run with: `cargo run --release --example keyword_search`

use std::time::Instant;

use pretzel_datasets::{gmail_like, Corpus};
use pretzel_search::SearchIndex;

fn main() {
    let corpus: Corpus = gmail_like(0.3).generate();
    println!("Indexing a mailbox of {} emails…", corpus.examples.len());

    let mut index = SearchIndex::new();
    let start = Instant::now();
    let mut texts = Vec::new();
    for example in &corpus.examples {
        let text = corpus.render_text(example);
        index.add_document(&text);
        texts.push(text);
    }
    let indexing = start.elapsed();
    let stats = index.stats();
    println!(
        "Indexed {} documents, {} distinct terms, {} postings, ~{} KB, {:.2} ms total ({:.3} ms/email).",
        stats.documents,
        stats.terms,
        stats.postings,
        stats.size_bytes / 1024,
        indexing.as_secs_f64() * 1e3,
        indexing.as_secs_f64() * 1e3 / corpus.examples.len() as f64
    );

    // Query a few words of varying frequency.
    let probes: Vec<&str> = texts[0].split(' ').take(3).collect();
    for probe in probes {
        let start = Instant::now();
        let hits = index.query(probe);
        let elapsed = start.elapsed();
        println!(
            "query {:?}: {} matching emails in {:.1} µs",
            probe,
            hits.len(),
            elapsed.as_secs_f64() * 1e6
        );
    }

    // Conjunctive query.
    let words: Vec<&str> = texts[1].split(' ').take(2).collect();
    let start = Instant::now();
    let hits = index.query_all(&words);
    println!(
        "conjunctive query {:?}: {} matching emails in {:.1} µs",
        words,
        hits.len(),
        start.elapsed().as_secs_f64() * 1e6
    );

    // Incremental update (a newly arrived email).
    let start = Instant::now();
    index.add_document("urgent quarterly budget review tomorrow with the auditors");
    println!(
        "indexing one new email took {:.1} µs; \"auditors\" now returns {} hit(s)",
        start.elapsed().as_secs_f64() * 1e6,
        index.query("auditors").len()
    );
    println!("\nAll of this ran on the client; the provider only ever stored ciphertext.");

    served_search(&texts);
}

/// The provider-served variant: the same mailbox indexed *at the provider*
/// under searchable symmetric encryption, queried through a mailroom session
/// (the registered `search` function module) with RLWE-packed responses.
fn served_search(texts: &[String]) {
    use pretzel_classifiers::NGramExtractor;
    use pretzel_core::topic::CandidateMode;
    use pretzel_core::{PretzelConfig, ProviderModelSuite};
    use pretzel_server::{ClientSpec, Mailroom, MailroomClient, MailroomConfig};
    use pretzel_transport::memory_pair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    println!("\n— provider-served encrypted search —");
    let config = PretzelConfig::test();
    // Search sessions only use the parameter preset; the models are for the
    // classification sessions this mailroom could serve concurrently.
    let placeholder = pretzel_classifiers::LinearModel {
        weights: vec![vec![0.0; 4]; 2],
        bias: vec![0.0; 2],
    };
    let suite = ProviderModelSuite {
        spam: placeholder.clone(),
        topic: placeholder.clone(),
        topic_mode: CandidateMode::Full,
        virus: placeholder,
        virus_extractor: NGramExtractor::new(3, 64),
        config: config.clone(),
    };
    let mailroom = Mailroom::start(suite, MailroomConfig::default());

    let (provider_end, client_end) = memory_pair();
    mailroom.submit(provider_end).expect("intake has room");
    let mut rng = StdRng::seed_from_u64(5);
    let spec = ClientSpec::search(config);
    let mut client = MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");

    let upload_count = texts.len().min(50);
    let start = Instant::now();
    let mut postings = 0usize;
    for (id, text) in texts.iter().take(upload_count).enumerate() {
        postings += client
            .index_email(id as u64, text, &mut rng)
            .expect("index round");
    }
    println!(
        "uploaded {} emails as {} encrypted postings in {:.2} ms \
         (the provider sees only opaque labels and sealed ids)",
        upload_count,
        postings,
        start.elapsed().as_secs_f64() * 1e3
    );

    let probe = texts[0].split(' ').next().unwrap();
    let start = Instant::now();
    let hits = client.search_keyword(probe, &mut rng).expect("query round");
    println!(
        "query {:?}: {} matching emails in {:.1} µs — answered from the \
         provider's encrypted index, response packed in one RLWE ciphertext",
        probe,
        hits.len(),
        start.elapsed().as_secs_f64() * 1e6
    );
    client.finish().expect("teardown");

    let report = mailroom.shutdown();
    let stats = &report.sessions[0];
    println!(
        "session served {} rounds ({:.1} KB up, {:.1} KB down); the provider \
         learned result counts and access patterns, never keywords or ids",
        stats.emails,
        stats.bytes_received as f64 / 1024.0,
        stats.bytes_sent as f64 / 1024.0,
    );
}
