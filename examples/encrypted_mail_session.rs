//! Client and provider as two real endpoints talking over TCP: the provider
//! stores encrypted mail and serves the spam-filtering function module; the
//! client decrypts, classifies privately and searches locally.
//!
//! This exercises the same code paths as the in-memory examples but over the
//! `TcpChannel` framing, i.e. the deployment shape the paper assumes on top
//! of SMTP/IMAP.
//!
//! Run with: `cargo run --release --example encrypted_mail_session`

use std::net::TcpListener;

use pretzel_classifiers::nb::GrNbTrainer;
use pretzel_classifiers::Trainer;
use pretzel_core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel_core::PretzelConfig;
use pretzel_datasets::{ling_spam_like, Corpus};
use pretzel_e2e::{DhGroup, Email, EncryptedEmail, Identity};
use pretzel_search::SearchIndex;
use pretzel_transport::{Channel, TcpChannel};

fn main() {
    let config = PretzelConfig::test();
    let mut rng = rand::thread_rng();

    // Identities and keyring (key management is out of band, §2.2).
    let dh = DhGroup::insecure_test_group(96, &mut rng);
    let alice = Identity::generate("alice@example.com", &dh, &mut rng);
    let bob = Identity::generate("bob@example.com", &dh, &mut rng);
    let alice_public = alice.public();
    let bob_public = bob.public();

    // Provider-side training data and model.
    let corpus = ling_spam_like(0.04).generate();
    let (train, test) = corpus.train_test_split(0.8, 11);
    let model = GrNbTrainer::default().train(&train, corpus.num_features, 2);

    // Alice composes three emails (rendered from the synthetic corpus).
    let outgoing: Vec<(Email, bool)> = test
        .iter()
        .take(3)
        .map(|ex| {
            (
                Email {
                    from: alice.address.clone(),
                    to: bob.address.clone(),
                    subject: format!("message about item {}", ex.label),
                    body: Corpus::render_text(&corpus, ex),
                },
                ex.label == 1,
            )
        })
        .collect();
    let encrypted_mail: Vec<EncryptedEmail> = outgoing
        .iter()
        .map(|(email, _)| alice.encrypt_email(&bob_public, email, &mut rng))
        .collect();

    // ---- Provider process (thread) listening on TCP. -----------------------
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let provider_cfg = config.clone();
    let provider_mail = encrypted_mail.clone();
    let provider_thread = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut chan = TcpChannel::new(stream);
        // 1. Deliver the stored (encrypted) mailbox to the client.
        chan.send(&(provider_mail.len() as u32).to_be_bytes())
            .unwrap();
        for message in &provider_mail {
            chan.send(&message.to_bytes()).unwrap();
        }
        // 2. Serve the private spam-filtering function module.
        let mut rng = rand::thread_rng();
        let mut provider = SpamProvider::setup(
            &mut chan,
            &model,
            &provider_cfg,
            AheVariant::Pretzel,
            &mut rng,
        )
        .expect("provider setup");
        for _ in 0..provider_mail.len() {
            provider
                .process_email(&mut chan, &mut rng)
                .expect("provider step");
        }
        println!(
            "[provider] served {} emails without seeing any plaintext",
            provider_mail.len()
        );
    });

    // ---- Client process. ----------------------------------------------------
    let mut chan = TcpChannel::connect(addr).expect("connect");
    let count = u32::from_be_bytes(chan.recv().unwrap().try_into().unwrap()) as usize;
    let mut mailbox = Vec::with_capacity(count);
    for _ in 0..count {
        let bytes = chan.recv().unwrap();
        mailbox.push(EncryptedEmail::from_bytes(&bytes).expect("well-formed ciphertext"));
    }
    println!(
        "[client]   fetched {} encrypted emails over TCP",
        mailbox.len()
    );

    let mut client =
        SpamClient::setup(&mut chan, &config, AheVariant::Pretzel, &mut rng).expect("client setup");
    let mut index = SearchIndex::new();
    let mut vocab = pretzel_classifiers::Vocabulary::new();
    for idx in 0..corpus.num_features {
        vocab.add(&pretzel_datasets::feature_word(idx));
    }
    let tokenizer = pretzel_classifiers::Tokenizer::new();

    for (i, message) in mailbox.iter().enumerate() {
        let email = bob
            .decrypt_email(&alice_public, message)
            .expect("authentic email");
        let features = vocab.vectorize(&tokenizer, &email.classification_text());
        let is_spam = client
            .classify(&mut chan, &features, &mut rng)
            .expect("classify");
        index.add_document(&email.classification_text());
        println!(
            "[client]   email {i} from {}: {} (ground truth: {})",
            email.from,
            if is_spam { "SPAM" } else { "not spam" },
            if outgoing[i].1 { "spam" } else { "ham" }
        );
    }
    println!(
        "[client]   local search index: {} documents, {} bytes",
        index.len(),
        index.stats().size_bytes
    );
    provider_thread.join().unwrap();
    println!("\nSession complete: classification matched the provider-side model while the");
    println!("provider only ever handled ciphertext and blinded dot products.");
}
