//! Provider mailroom walkthrough: one provider serves eight concurrent
//! client sessions — spam filtering, topic extraction, virus scanning and
//! encrypted keyword search — over in-memory channels, then prints
//! per-session and fleet-wide meter stats.
//!
//! Run with: `cargo run --release --example mailroom`

use rand::rngs::StdRng;
use rand::SeedableRng;

use pretzel::classifiers::nb::{GrNbTrainer, MultinomialNbTrainer};
use pretzel::classifiers::{NGramExtractor, SparseVector, Trainer};
use pretzel::core::topic::CandidateMode;
use pretzel::core::{PretzelConfig, ProviderModelSuite};
use pretzel::datasets::{ling_spam_like, newsgroups_like};
use pretzel::server::{ClientSpec, Mailroom, MailroomClient, MailroomConfig};
use pretzel::transport::memory_pair;

fn main() {
    let config = PretzelConfig::test();

    // Train the provider's three proprietary models on synthetic corpora.
    let mut spam_spec = ling_spam_like(0.05);
    spam_spec.shared_vocab = 200;
    spam_spec.class_vocab = 80;
    let spam_corpus = spam_spec.generate();
    let (spam_train, spam_test) = spam_corpus.train_test_split(0.8, 7);
    let spam_model = GrNbTrainer::default().train(&spam_train, spam_corpus.num_features, 2);

    let mut topic_spec = newsgroups_like(0.02);
    topic_spec.shared_vocab = 150;
    topic_spec.class_vocab = 40;
    let topic_corpus = topic_spec.generate();
    let (topic_train, topic_test) = topic_corpus.train_test_split(0.8, 9);
    let topic_model = MultinomialNbTrainer::default().train(
        &topic_train,
        topic_corpus.num_features,
        topic_corpus.num_classes,
    );

    let extractor = NGramExtractor::new(3, 512);
    let mut virus_examples = Vec::new();
    for i in 0..30u8 {
        let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
        bad.extend(std::iter::repeat_n(0xcc, 20));
        bad.push(i);
        virus_examples.push(pretzel::classifiers::LabeledExample {
            features: extractor.extract(&bad),
            label: 1,
        });
        let good = format!("quarterly report attachment number {i}");
        virus_examples.push(pretzel::classifiers::LabeledExample {
            features: extractor.extract(good.as_bytes()),
            label: 0,
        });
    }
    let virus_model = GrNbTrainer::default().train(&virus_examples, extractor.buckets, 2);

    let suite = ProviderModelSuite {
        spam: spam_model,
        topic: topic_model,
        topic_mode: CandidateMode::Full,
        virus: virus_model,
        virus_extractor: extractor,
        config: config.clone(),
    };

    // Start the mailroom: a worker pool with a bounded intake queue.
    let mailroom_cfg = MailroomConfig {
        queue_capacity: 8,
        ..MailroomConfig::default()
    };
    println!(
        "Mailroom up: {} worker(s), intake queue of {}.\n",
        mailroom_cfg.workers, mailroom_cfg.queue_capacity
    );
    let mailroom = Mailroom::start(suite, mailroom_cfg);

    // Eight concurrent senders: two per function module.
    let mut handles = Vec::new();
    for i in 0..8usize {
        let (provider_end, client_end) = memory_pair();
        mailroom.submit(provider_end).expect("intake has room");
        let config = config.clone();
        let spam_emails: Vec<SparseVector> = spam_test
            .iter()
            .skip(i * 4)
            .take(4)
            .map(|e| e.features.clone())
            .collect();
        let topic_emails: Vec<SparseVector> = topic_test
            .iter()
            .skip(i * 4)
            .take(4)
            .map(|e| e.features.clone())
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(90 + i as u64);
            match i % 4 {
                0 => {
                    let spec = ClientSpec::spam(config);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    let spam_count = spam_emails
                        .iter()
                        .filter(|email| client.classify_spam(email, &mut rng).expect("classify"))
                        .count();
                    client.finish().expect("teardown");
                    format!("client {i}: spam session, {spam_count}/4 flagged as spam")
                }
                1 => {
                    let spec = ClientSpec::topic(config, CandidateMode::Full, None);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    for email in &topic_emails {
                        client.extract_topic(email, &mut rng).expect("extract");
                    }
                    client.finish().expect("teardown");
                    format!("client {i}: topic session, 4 emails (indices go to the provider)")
                }
                2 => {
                    let spec = ClientSpec::virus(config);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
                    bad.extend(std::iter::repeat_n(0xcc, 20));
                    let flagged = client.scan_attachment(&bad, &mut rng).expect("scan");
                    let clean = client
                        .scan_attachment(b"meeting notes for tuesday", &mut rng)
                        .expect("scan");
                    client.finish().expect("teardown");
                    format!(
                        "client {i}: virus session, malicious flagged={flagged}, benign flagged={clean}"
                    )
                }
                _ => {
                    let spec = ClientSpec::search(config);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    client
                        .index_email(1, "quarterly budget review tomorrow", &mut rng)
                        .expect("index");
                    client
                        .index_email(2, "offsite travel budget approved", &mut rng)
                        .expect("index");
                    let hits = client.search_keyword("budget", &mut rng).expect("query");
                    client.finish().expect("teardown");
                    format!(
                        "client {i}: search session, \"budget\" matched {} of 2 indexed emails",
                        hits.len()
                    )
                }
            }
        }));
    }
    for handle in handles {
        println!("{}", handle.join().expect("client thread"));
    }

    // Graceful shutdown returns the final per-session + fleet accounting.
    let report = mailroom.shutdown();
    println!("\nper-session accounting:");
    println!("  id  protocol  state       emails  sent       received   topics");
    for s in &report.sessions {
        println!(
            "  {:<3} {:<9} {:<11} {:<7} {:<10} {:<10} {:?}",
            s.id,
            s.kind.map(|k| k.to_string()).unwrap_or_else(|| "?".into()),
            format!("{:?}", s.state),
            s.emails,
            format!("{:.1} KB", s.bytes_sent as f64 / 1024.0),
            format!("{:.1} KB", s.bytes_received as f64 / 1024.0),
            s.topics,
        );
    }
    println!(
        "\nfleet: {} sessions ({} completed), {} emails, {:.1} KB sent, {:.1} KB received, {:.1} KB/email",
        report.sessions.len(),
        report.completed(),
        report.emails_total,
        report.fleet_bytes_sent as f64 / 1024.0,
        report.fleet_bytes_received as f64 / 1024.0,
        report.bytes_per_email() / 1024.0,
    );
}
