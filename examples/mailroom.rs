//! Provider mailroom walkthrough: one provider serves ten concurrent client
//! sessions — spam filtering, topic extraction, virus scanning, encrypted
//! keyword search, **and a custom fifth function registered from this
//! example** — over in-memory channels, then prints per-session and
//! fleet-wide meter stats.
//!
//! The fifth function (`attach-stats`, wire tag 7) is the point of the
//! function-module registry: an attachment-size analytics protocol built
//! from `pretzel_sdp`'s RLWE machinery, registered with
//! [`Mailroom::start_with_registry`] without touching `pretzel_core` — no
//! enum arm, no session.rs edit, no mailroom change. Spam sessions here
//! also submit their emails as one **batched** round
//! ([`MailroomClient::process_batch`]) instead of four sequential ones.
//!
//! The fleet is deliberately **mixed-version**: topic and search clients
//! are pinned to the frozen legacy v1 wire protocol (2-byte handshake, raw
//! frames, no capabilities) while the rest negotiate v2 with checksummed
//! framing and the round-batch capability — one mailroom serves both
//! generations on the same intake, as it would mid rolling upgrade. The
//! final report splits the accounting per protocol version.
//!
//! Run with: `cargo run --release --example mailroom`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use pretzel::classifiers::nb::{GrNbTrainer, MultinomialNbTrainer};
use pretzel::classifiers::{NGramExtractor, SparseVector, Trainer};
use pretzel::core::registry::{
    ClientContext, ClientModule, FunctionModule, ProtocolRegistry, ProviderModule, WireTag,
};
use pretzel::core::session::{EmailPayload, Verdict};
use pretzel::core::spam::AheVariant;
use pretzel::core::topic::CandidateMode;
use pretzel::core::{PretzelConfig, PretzelError, ProviderModelSuite};
use pretzel::datasets::{ling_spam_like, newsgroups_like};
use pretzel::sdp::rlwe_pack::{self, Packing};
use pretzel::sdp::ModelMatrix;
use pretzel::server::{ClientSpec, ClientSpecBuilder, Mailroom, MailroomClient, MailroomConfig};
use pretzel::transport::{memory_pair, Channel};

// ---------------------------------------------------------------------------
// The fifth function module: attachment-size analytics.
//
// The provider holds a proprietary per-size-bucket cost weight vector
// (encrypted under its own RLWE key, exactly like the classification
// models); the client maps each attachment to a size bucket, computes the
// encrypted weight lookup as a one-hot secure dot product, blinds it, and
// learns the weighted cost score. The provider never sees the attachment or
// its size bucket; the client never sees the weight vector.
// ---------------------------------------------------------------------------

/// Attachment sizes are bucketed by KiB up to this many buckets.
const STATS_BUCKETS: usize = 16;

/// The example's registrable analytics function (wire tag 7 — any free tag
/// in the provider's registry works).
struct AttachmentStatsFunction;

impl AttachmentStatsFunction {
    const WIRE_TAG: WireTag = 7;

    fn bucket(len: usize) -> usize {
        (len / 1024).min(STATS_BUCKETS - 1)
    }
}

impl FunctionModule for AttachmentStatsFunction {
    fn wire_tag(&self) -> WireTag {
        Self::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "attach-stats"
    }

    fn provider_setup(
        &self,
        channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        _variant: AheVariant,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>, PretzelError> {
        let params = suite.config.rlwe_params();
        let (sk, pk) = pretzel::rlwe::keygen(&params, None, rng);
        // The proprietary per-bucket weights: storage cost grows with size.
        let weights: Vec<u64> = (0..STATS_BUCKETS as u64).map(|b| 3 + 2 * b).collect();
        let matrix = ModelMatrix::from_rows(STATS_BUCKETS, 1, weights);
        let enc = rlwe_pack::encrypt_model(&pk, &matrix, Packing::AcrossRow, rng)?;
        channel.send(&pk.to_bytes())?;
        channel.send(&(enc.ciphertext_count() as u64).to_le_bytes())?;
        let mut blob = Vec::with_capacity(enc.ciphertext_count() * params.ciphertext_bytes());
        for ct in enc.ciphertexts() {
            blob.extend_from_slice(&ct.to_bytes());
        }
        channel.send(&blob)?;
        Ok(Box::new(StatsProvider { sk }))
    }

    fn client_setup(
        &self,
        channel: &mut dyn Channel,
        ctx: &ClientContext,
        _rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>, PretzelError> {
        let params = ctx.config.rlwe_params();
        let pk = pretzel::rlwe::PublicKey::from_bytes(&params, &channel.recv()?)
            .map_err(|e| PretzelError::Ahe(e.to_string()))?;
        let count_frame = channel.recv()?;
        let count = u64::from_le_bytes(
            count_frame
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .ok_or_else(|| PretzelError::Protocol("bad ciphertext count".into()))?,
        ) as usize;
        let blob = channel.recv()?;
        let ct_len = params.ciphertext_bytes();
        if blob.len() != count * ct_len {
            return Err(PretzelError::Protocol("bad weight blob size".into()));
        }
        let cts = blob
            .chunks_exact(ct_len)
            .map(|c| pretzel::rlwe::Ciphertext::from_bytes(&params, c))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| PretzelError::Ahe(e.to_string()))?;
        let model = rlwe_pack::EncryptedModel::from_parts(
            Packing::AcrossRow,
            cts,
            STATS_BUCKETS,
            1,
            params.slots(),
        );
        Ok(Box::new(StatsClient { pk, model }))
    }
}

/// Provider endpoint: decrypts blinded weight lookups and echoes them back.
struct StatsProvider {
    sk: pretzel::rlwe::SecretKey,
}

impl ProviderModule for StatsProvider {
    fn wire_tag(&self) -> WireTag {
        AttachmentStatsFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "attach-stats"
    }

    fn precompute(&mut self, _budget: usize, _rng: &mut dyn RngCore) -> usize {
        0
    }

    fn pool_depth(&self) -> usize {
        0
    }

    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        _rng: &mut dyn RngCore,
    ) -> Result<Option<usize>, PretzelError> {
        let blob = channel.recv()?;
        let ct = pretzel::rlwe::Ciphertext::from_bytes(self.sk.params(), &blob)
            .map_err(|e| PretzelError::Ahe(e.to_string()))?;
        // The blinding noise hides the true score (and thus the bucket).
        let blinded = rlwe_pack::provider_decrypt(&self.sk, &[ct], 1)[0][0];
        channel.send(&blinded.to_le_bytes())?;
        Ok(None)
    }
}

/// Client endpoint: one-hot dot product against the encrypted weights.
struct StatsClient {
    pk: pretzel::rlwe::PublicKey,
    model: rlwe_pack::EncryptedModel,
}

impl ClientModule for StatsClient {
    fn wire_tag(&self) -> WireTag {
        AttachmentStatsFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "attach-stats"
    }

    fn model_storage_bytes(&self) -> usize {
        self.model.size_bytes(&self.pk)
    }

    fn precompute(&mut self, _budget: usize, _rng: &mut dyn RngCore) -> usize {
        0
    }

    fn pool_depth(&self) -> usize {
        0
    }

    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        payload: &EmailPayload,
        rng: &mut dyn RngCore,
    ) -> Result<Verdict, PretzelError> {
        let EmailPayload::Opaque(attachment) = payload else {
            return Err(PretzelError::Protocol(
                "attach-stats sessions take opaque attachment bytes".into(),
            ));
        };
        let one_hot = vec![(AttachmentStatsFunction::bucket(attachment.len()), 1u64)];
        let accs = rlwe_pack::client_dot_product(&self.pk, &self.model, &one_hot)?;
        let (blinded, noise) = rlwe_pack::blind(&self.pk, &accs[0], 1, rng);
        channel.send(&blinded.to_bytes())?;
        let reply = channel.recv()?;
        let masked = u64::from_le_bytes(
            reply
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .ok_or_else(|| PretzelError::Protocol("bad score reply".into()))?,
        );
        let t = self.pk.params().t;
        let score = masked.wrapping_sub(noise[0]) & (t - 1);
        Ok(Verdict::Custom {
            tag: AttachmentStatsFunction::WIRE_TAG,
            value: score,
        })
    }
}

fn main() {
    let config = PretzelConfig::test();

    // Train the provider's three proprietary models on synthetic corpora.
    let mut spam_spec = ling_spam_like(0.05);
    spam_spec.shared_vocab = 200;
    spam_spec.class_vocab = 80;
    let spam_corpus = spam_spec.generate();
    let (spam_train, spam_test) = spam_corpus.train_test_split(0.8, 7);
    let spam_model = GrNbTrainer::default().train(&spam_train, spam_corpus.num_features, 2);

    let mut topic_spec = newsgroups_like(0.02);
    topic_spec.shared_vocab = 150;
    topic_spec.class_vocab = 40;
    let topic_corpus = topic_spec.generate();
    let (topic_train, topic_test) = topic_corpus.train_test_split(0.8, 9);
    let topic_model = MultinomialNbTrainer::default().train(
        &topic_train,
        topic_corpus.num_features,
        topic_corpus.num_classes,
    );

    let extractor = NGramExtractor::new(3, 512);
    let mut virus_examples = Vec::new();
    for i in 0..30u8 {
        let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
        bad.extend(std::iter::repeat_n(0xcc, 20));
        bad.push(i);
        virus_examples.push(pretzel::classifiers::LabeledExample {
            features: extractor.extract(&bad),
            label: 1,
        });
        let good = format!("quarterly report attachment number {i}");
        virus_examples.push(pretzel::classifiers::LabeledExample {
            features: extractor.extract(good.as_bytes()),
            label: 0,
        });
    }
    let virus_model = GrNbTrainer::default().train(&virus_examples, extractor.buckets, 2);

    let suite = ProviderModelSuite {
        spam: spam_model,
        topic: topic_model,
        topic_mode: CandidateMode::Full,
        virus: virus_model,
        virus_extractor: extractor,
        config: config.clone(),
    };

    // The registry: four built-ins plus this example's analytics module —
    // the whole "add a fifth function" cost is this one registration.
    let registry = ProtocolRegistry::builtin()
        .with_module(Arc::new(AttachmentStatsFunction))
        .expect("tag 7 is free");
    println!(
        "Registry serves {} function modules: {:?}\n",
        registry.len(),
        registry
    );

    // Start the mailroom: a worker pool with a bounded intake queue.
    let mailroom_cfg = MailroomConfig::builder().queue_capacity(10).build();
    println!(
        "Mailroom up: {} worker(s), intake queue of {}.\n",
        mailroom_cfg.workers, mailroom_cfg.queue_capacity
    );
    let mailroom = Mailroom::start_with_registry(suite, registry, mailroom_cfg);

    // Ten concurrent senders: two per function module.
    let mut handles = Vec::new();
    for i in 0..10usize {
        let (provider_end, client_end) = memory_pair();
        mailroom.submit(provider_end).expect("intake has room");
        let config = config.clone();
        let spam_emails: Vec<SparseVector> = spam_test
            .iter()
            .skip(i * 4)
            .take(4)
            .map(|e| e.features.clone())
            .collect();
        let topic_emails: Vec<SparseVector> = topic_test
            .iter()
            .skip(i * 4)
            .take(4)
            .map(|e| e.features.clone())
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(90 + i as u64);
            match i % 5 {
                0 => {
                    let spec = ClientSpec::spam(config);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    let profile = client.negotiated();
                    // All four emails travel as ONE batched round: one
                    // coalesced ciphertext frame, one batched Yao exchange.
                    let payloads: Vec<EmailPayload> = spam_emails
                        .iter()
                        .map(|e| EmailPayload::Tokens(e.clone()))
                        .collect();
                    let verdicts = client.process_batch(&payloads, &mut rng).expect("batch");
                    let spam_count = verdicts
                        .iter()
                        .filter(|v| matches!(v, Verdict::Spam { is_spam: true }))
                        .count();
                    client.finish().expect("teardown");
                    format!(
                        "client {i}: spam session over {} ({:?}), batched 4 rounds, \
                         {spam_count}/4 flagged",
                        profile.version, profile.capabilities
                    )
                }
                1 => {
                    // A not-yet-upgraded sender: pinned to the frozen v1
                    // protocol, served byte-identically to the old format.
                    let spec = ClientSpecBuilder::topic(config)
                        .topic_mode(CandidateMode::Full)
                        .legacy_v1()
                        .build();
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    let version = client.negotiated().version;
                    for email in &topic_emails {
                        client.extract_topic(email, &mut rng).expect("extract");
                    }
                    client.finish().expect("teardown");
                    format!(
                        "client {i}: topic session over {version}, 4 emails \
                         (indices go to the provider)"
                    )
                }
                2 => {
                    let spec = ClientSpec::virus(config);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
                    bad.extend(std::iter::repeat_n(0xcc, 20));
                    let flagged = client.scan_attachment(&bad, &mut rng).expect("scan");
                    let clean = client
                        .scan_attachment(b"meeting notes for tuesday", &mut rng)
                        .expect("scan");
                    client.finish().expect("teardown");
                    format!(
                        "client {i}: virus session, malicious flagged={flagged}, benign flagged={clean}"
                    )
                }
                3 => {
                    // Also still on v1 — process_batch on such a session
                    // would transparently fall back to sequential rounds.
                    let spec = ClientSpecBuilder::search(config).legacy_v1().build();
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    client
                        .index_email(1, "quarterly budget review tomorrow", &mut rng)
                        .expect("index");
                    client
                        .index_email(2, "offsite travel budget approved", &mut rng)
                        .expect("index");
                    let hits = client.search_keyword("budget", &mut rng).expect("query");
                    client.finish().expect("teardown");
                    format!(
                        "client {i}: search session, \"budget\" matched {} of 2 indexed emails",
                        hits.len()
                    )
                }
                _ => {
                    // The fifth, example-registered function module.
                    let spec =
                        ClientSpec::for_module(Arc::new(AttachmentStatsFunction), config);
                    let mut client =
                        MailroomClient::connect(client_end, &spec, &mut rng).expect("connect");
                    let small = vec![0u8; 700]; // bucket 0 → weight 3
                    let large = vec![0u8; 5 * 1024]; // bucket 5 → weight 13
                    let mut scores = Vec::new();
                    for attachment in [&small, &large] {
                        match client
                            .process(&EmailPayload::Opaque(attachment.clone()), &mut rng)
                            .expect("stats round")
                        {
                            Verdict::Custom { value, .. } => scores.push(value),
                            other => panic!("unexpected verdict {other:?}"),
                        }
                    }
                    client.finish().expect("teardown");
                    format!(
                        "client {i}: attach-stats session, cost scores {scores:?} \
                         (provider never saw the sizes)"
                    )
                }
            }
        }));
    }
    for handle in handles {
        println!("{}", handle.join().expect("client thread"));
    }

    // Graceful shutdown returns the final per-session + fleet accounting.
    let report = mailroom.shutdown();
    println!("\nper-session accounting:");
    println!("  id  protocol      wire  state       emails  sent       received   topics");
    for s in &report.sessions {
        println!(
            "  {:<3} {:<13} {:<5} {:<11} {:<7} {:<10} {:<10} {:?}",
            s.id,
            s.kind_name.unwrap_or("?"),
            s.version
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into()),
            format!("{:?}", s.state),
            s.emails,
            format!("{:.1} KB", s.bytes_sent as f64 / 1024.0),
            format!("{:.1} KB", s.bytes_received as f64 / 1024.0),
            s.topics,
        );
    }
    println!("\nper-kind fleet totals:");
    for (tag, totals) in report.by_kind() {
        println!(
            "  tag {tag}: {} sessions, {} emails, {:.1} KB sent",
            totals.sessions,
            totals.emails,
            totals.bytes_sent as f64 / 1024.0,
        );
    }
    println!("\nper-version fleet totals (rolling-upgrade view):");
    for (version, totals) in report.by_version() {
        println!(
            "  {version}: {} sessions, {} emails, {} messages, {:.1} KB sent",
            totals.sessions,
            totals.emails,
            totals.messages,
            totals.bytes_sent as f64 / 1024.0,
        );
    }
    println!(
        "\nfleet: {} sessions ({} completed), {} emails, {:.1} KB sent, {:.1} KB received, {:.1} KB/email",
        report.sessions.len(),
        report.completed(),
        report.emails_total,
        report.fleet_bytes_sent as f64 / 1024.0,
        report.fleet_bytes_received as f64 / 1024.0,
        report.bytes_per_email() / 1024.0,
    );
}
