//! Provider-side keyword search over encrypted mail via SSE (paper §5).
//!
//! Pretzel's own keyword-search module is client-side only; the paper notes
//! that a provider-side index — useful when logging in from a new device —
//! "could be built on searchable symmetric encryption" and leaves it as
//! future work. This example runs that extension: the client uploads
//! encrypted postings as it reads mail, and later searches the provider-side
//! index from a fresh device that holds only the 32-byte master key.
//!
//! Run with: `cargo run --release --example provider_side_search`

use pretzel_sse::{SseClient, SseClientEndpoint, SseProviderEndpoint};
use pretzel_transport::memory_pair;

fn mailbox() -> Vec<(u64, &'static str)> {
    vec![
        (
            1,
            "Flight itinerary for the Lisbon conference, boarding pass attached",
        ),
        (
            2,
            "Team offsite logistics: hotel block and travel reimbursement",
        ),
        (3, "Re: quarterly earnings draft, numbers need another pass"),
        (4, "Lisbon restaurant recommendations from Ana"),
        (5, "Your boarding pass for flight TP 342"),
        (6, "Earnings call rescheduled to Thursday"),
    ]
}

fn main() {
    let master_key = [7u8; 32]; // in practice derived from the user's e2e keys via HKDF

    let (mut provider_chan, mut client_chan) = memory_pair();
    let provider = std::thread::spawn(move || {
        let mut endpoint = SseProviderEndpoint::new();
        let handled = endpoint.serve(&mut provider_chan).expect("provider serve");
        (
            handled,
            endpoint.index().len(),
            endpoint.index().size_bytes(),
        )
    });

    // --- Device A: index the mailbox as emails are decrypted. --------------
    let mut device_a = SseClientEndpoint::new(SseClient::from_master_key(master_key));
    for (id, body) in mailbox() {
        let postings = device_a
            .index_and_upload(&mut client_chan, id, body)
            .expect("upload");
        println!("[device A] indexed email {id}: {postings} encrypted postings uploaded");
    }
    println!(
        "[device A] client state: {} distinct keywords, {} postings total",
        device_a.state().distinct_keywords(),
        device_a.state().total_postings()
    );

    // --- Device B: fresh device, only the master key, searches remotely. ----
    let device_b = SseClientEndpoint::new(SseClient::from_master_key(master_key));
    for query in ["lisbon", "earnings", "boarding", "payroll"] {
        let mut hits = device_b.search(&mut client_chan, query).expect("search");
        hits.sort_unstable();
        println!("[device B] search {query:?} -> emails {hits:?}");
    }
    device_b.close(&mut client_chan).expect("close");

    let (handled, postings, bytes) = provider.join().unwrap();
    println!();
    println!(
        "[provider] served {handled} requests; stores {postings} opaque postings ({bytes} bytes) \
         and never saw a keyword or an email id in the clear."
    );
}
