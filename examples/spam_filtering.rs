//! Spam filtering over a small synthetic inbox: trains GR-NB at the provider,
//! runs the private protocol for every email, and compares the private
//! verdicts against a non-private (NoPriv) provider and the ground truth.
//!
//! Run with: `cargo run --release --example spam_filtering`

use pretzel_classifiers::nb::GrNbTrainer;
use pretzel_classifiers::Trainer;
use pretzel_core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel_core::{NoPrivProvider, PretzelConfig, ReplayGuard};
use pretzel_datasets::ling_spam_like;
use pretzel_transport::{memory_pair, MeteredChannel};

fn main() {
    let mut rng = rand::thread_rng();
    let config = PretzelConfig::test();

    let corpus = ling_spam_like(0.05).generate();
    let (train, test) = corpus.train_test_split(0.8, 7);
    let inbox: Vec<_> = test.into_iter().take(12).collect();
    println!(
        "Training on {} emails over {} features; inbox of {} emails to classify privately.\n",
        train.len(),
        corpus.num_features,
        inbox.len()
    );
    let model = GrNbTrainer::default().train(&train, corpus.num_features, 2);
    let noprivate = NoPrivProvider::new(model.clone());

    let (mut provider_chan, client_chan) = memory_pair();
    let mut metered = MeteredChannel::new(client_chan);
    let meter = metered.meter();

    let model_for_provider = model.clone();
    let provider_cfg = config.clone();
    let emails = inbox.len();
    let provider_thread = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut provider = SpamProvider::setup(
            &mut provider_chan,
            &model_for_provider,
            &provider_cfg,
            AheVariant::Pretzel,
            &mut rng,
        )
        .expect("provider setup");
        for _ in 0..emails {
            provider
                .process_email(&mut provider_chan, &mut rng)
                .expect("provider per-email step");
        }
    });

    let mut client = SpamClient::setup(&mut metered, &config, AheVariant::Pretzel, &mut rng)
        .expect("client setup");
    println!(
        "Setup done: encrypted model occupies {} bytes at the client.",
        client.model_storage_bytes()
    );
    meter.reset();

    // The client refuses to feed the same email into the protocol twice
    // (replay defense, §4.4).
    let mut replay = ReplayGuard::default();

    let mut agree_truth = 0usize;
    let mut agree_noprivate = 0usize;
    for (i, example) in inbox.iter().enumerate() {
        assert!(replay.check_and_record("provider-mailbox", i as u64));
        let is_spam = client
            .classify(&mut metered, &example.features, &mut rng)
            .expect("classification");
        let noprivate_verdict = noprivate.is_spam(&example.features);
        let truth = example.label == 1;
        if is_spam == truth {
            agree_truth += 1;
        }
        if is_spam == noprivate_verdict {
            agree_noprivate += 1;
        }
        println!(
            "email {i:>2}: private={}  noprivate={}  truth={}",
            verdict(is_spam),
            verdict(noprivate_verdict),
            verdict(truth)
        );
    }
    provider_thread.join().unwrap();

    println!(
        "\nPrivate protocol agreed with the non-private provider on {agree_noprivate}/{} emails",
        inbox.len()
    );
    println!(
        "Ground-truth accuracy of the private verdicts: {agree_truth}/{}",
        inbox.len()
    );
    println!(
        "Average per-email network overhead: {:.1} KB (Figure 6/§6.1 reports 19.6 KB at paper scale)",
        meter.total_bytes() as f64 / inbox.len() as f64 / 1024.0
    );
    assert!(
        !replay.check_and_record("provider-mailbox", 0),
        "replays are rejected"
    );
    println!("Replaying email 0 is rejected by the client's replay guard.");
}

fn verdict(spam: bool) -> &'static str {
    if spam {
        "SPAM"
    } else {
        "ham "
    }
}
