//! Topic extraction with decomposed classification (§4.3): the provider
//! learns one topic per email for ad targeting, while the email itself and
//! the client's candidate set stay hidden.
//!
//! Run with: `cargo run --release --example topic_extraction`

use pretzel_classifiers::nb::MultinomialNbTrainer;
use pretzel_classifiers::Trainer;
use pretzel_core::spam::AheVariant;
use pretzel_core::topic::{CandidateMode, TopicClient, TopicProvider};
use pretzel_core::{NoPrivProvider, PretzelConfig};
use pretzel_datasets::{newsgroups_like, Corpus};
use pretzel_transport::{memory_pair, MeteredChannel};

fn main() {
    let mut rng = rand::thread_rng();
    let config = PretzelConfig::test();
    let b_prime = 4usize;

    // The provider's proprietary topic model, trained on the full corpus.
    let corpus = newsgroups_like(0.04).generate();
    let (train, test) = corpus.train_test_split(0.8, 3);
    let provider_model =
        MultinomialNbTrainer::default().train(&train, corpus.num_features, corpus.num_classes);
    // The public candidate model is trained on only 10% of the training data
    // (Figure 14's premise): good enough to shortlist candidates, not to pick
    // the winner.
    let public_subset = Corpus::subsample(&train, 0.10, 5);
    let candidate_model = MultinomialNbTrainer::default().train(
        &public_subset,
        corpus.num_features,
        corpus.num_classes,
    );
    let noprivate = NoPrivProvider::new(provider_model.clone());

    let emails: Vec<_> = test.into_iter().take(8).collect();
    println!(
        "{} topics, {} features; provider model trained on {} docs, public candidate model on {} docs.",
        corpus.num_classes,
        corpus.num_features,
        train.len(),
        public_subset.len()
    );
    println!(
        "Extracting topics for {} emails with B' = {b_prime} candidates…\n",
        emails.len()
    );

    let (mut provider_chan, client_chan) = memory_pair();
    let mut metered = MeteredChannel::new(client_chan);
    let meter = metered.meter();
    let provider_cfg = config.clone();
    let model_for_provider = provider_model.clone();
    let n_emails = emails.len();
    let provider_thread = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut provider = TopicProvider::setup(
            &mut provider_chan,
            &model_for_provider,
            &provider_cfg,
            AheVariant::Pretzel,
            CandidateMode::Decomposed(b_prime),
            &mut rng,
        )
        .expect("provider setup");
        (0..n_emails)
            .map(|_| {
                provider
                    .process_email(&mut provider_chan)
                    .expect("provider step")
            })
            .collect::<Vec<usize>>()
    });

    let mut client = TopicClient::setup(
        &mut metered,
        &config,
        AheVariant::Pretzel,
        CandidateMode::Decomposed(b_prime),
        Some(candidate_model),
        &mut rng,
    )
    .expect("client setup");
    meter.reset();

    let mut candidate_sets = Vec::new();
    for example in &emails {
        let candidates = client
            .extract(&mut metered, &example.features, &mut rng)
            .expect("topic extraction");
        candidate_sets.push(candidates);
    }
    let provider_topics = provider_thread.join().unwrap();

    let mut match_noprivate = 0usize;
    for (i, example) in emails.iter().enumerate() {
        let private_topic = provider_topics[i];
        let noprivate_topic = noprivate.classify(&example.features);
        if private_topic == noprivate_topic {
            match_noprivate += 1;
        }
        println!(
            "email {i}: provider learned topic {private_topic:>2}  (candidates sent: {:?}, NoPriv would say {noprivate_topic}, true label {})",
            candidate_sets[i], example.label
        );
    }
    println!(
        "\nProvider's private answer matched the non-private classifier on {match_noprivate}/{} emails",
        emails.len()
    );
    println!(
        "Average per-email network: {:.1} KB (decomposition keeps this flat in B — Figure 11)",
        meter.total_bytes() as f64 / emails.len() as f64 / 1024.0
    );
    println!("The provider never saw the email text or the {b_prime}-candidate shortlist.");
}
