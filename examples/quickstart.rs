//! Quickstart: the full Pretzel pipeline on one email, end to end.
//!
//! 1. Alice encrypts and signs an email for Bob with the e2e module.
//! 2. Bob's client authenticates and decrypts it.
//! 3. Bob's client and his provider run the private spam-filtering protocol:
//!    only Bob learns whether the email is spam; the provider learns nothing.
//! 4. Bob's client indexes the email for local keyword search.
//!
//! Run with: `cargo run --release --example quickstart`

use pretzel_classifiers::nb::GrNbTrainer;
use pretzel_classifiers::{Tokenizer, Trainer, Vocabulary};
use pretzel_core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel_core::PretzelConfig;
use pretzel_datasets::ling_spam_like;
use pretzel_e2e::{DhGroup, Email, Identity};
use pretzel_search::SearchIndex;
use pretzel_transport::memory_pair;

fn main() {
    let mut rng = rand::thread_rng();
    let config = PretzelConfig::test();

    // --- Provider trains a spam model on its (synthetic) corpus. -----------
    println!("[provider] training a GR-NB spam model…");
    let corpus = ling_spam_like(0.05).generate();
    let (train, _) = corpus.train_test_split(0.8, 1);
    let model = GrNbTrainer::default().train(&train, corpus.num_features, 2);

    // The feature mapping (vocabulary) is public; only parameters are hidden.
    // Here the synthetic corpus indexes features directly, so the client maps
    // email words through the same deterministic word <-> index convention.
    let tokenizer = Tokenizer::new();
    let mut vocab = Vocabulary::new();
    for idx in 0..corpus.num_features {
        vocab.add(&pretzel_datasets::feature_word(idx));
    }

    // --- e2e: Alice sends Bob an encrypted, signed email. ------------------
    println!("[alice]    encrypting and signing an email for bob…");
    let dh = DhGroup::insecure_test_group(96, &mut rng);
    let alice = Identity::generate("alice@example.com", &dh, &mut rng);
    let bob = Identity::generate("bob@example.com", &dh, &mut rng);
    let body = corpus.render_text(&corpus.examples[0]);
    let email = Email {
        from: alice.address.clone(),
        to: bob.address.clone(),
        subject: "about that offer".into(),
        body,
    };
    let encrypted = alice.encrypt_email(&bob.public(), &email, &mut rng);
    println!(
        "[provider] stores {} bytes of ciphertext; it cannot read the email",
        encrypted.size_bytes()
    );

    // --- Bob decrypts. ------------------------------------------------------
    let decrypted = bob
        .decrypt_email(&alice.public(), &encrypted)
        .expect("authentic email");
    println!("[bob]      decrypted email from {}", decrypted.from);

    // --- Private spam filtering between Bob's client and the provider. -----
    let (mut provider_chan, mut client_chan) = memory_pair();
    let model_for_provider = model.clone();
    let provider_cfg = config.clone();
    let provider_thread = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut provider = SpamProvider::setup(
            &mut provider_chan,
            &model_for_provider,
            &provider_cfg,
            AheVariant::Pretzel,
            &mut rng,
        )
        .expect("provider setup");
        provider
            .process_email(&mut provider_chan, &mut rng)
            .expect("provider per-email step");
    });

    let mut client = SpamClient::setup(&mut client_chan, &config, AheVariant::Pretzel, &mut rng)
        .expect("client setup");
    println!(
        "[bob]      stored the encrypted spam model: {} bytes",
        client.model_storage_bytes()
    );
    let features = vocab.vectorize(&tokenizer, &decrypted.classification_text());
    let is_spam = client
        .classify(&mut client_chan, &features, &mut rng)
        .expect("classification");
    provider_thread.join().unwrap();
    println!(
        "[bob]      private spam verdict: {}",
        if is_spam { "SPAM" } else { "not spam" }
    );

    // --- Local keyword search. ----------------------------------------------
    let mut index = SearchIndex::new();
    index.add_document(&decrypted.classification_text());
    let first_word = decrypted.body.split(' ').next().unwrap_or("");
    println!(
        "[bob]      local search for {:?} -> {} hit(s); index is {} bytes",
        first_word,
        index.query(first_word).len(),
        index.stats().size_bytes
    );
    println!("\nDone: the provider filtered spam without ever seeing the plaintext email.");
}
