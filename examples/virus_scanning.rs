//! Private virus scanning of email attachments (paper §7 future work).
//!
//! The provider holds a proprietary two-class attachment model over hashed
//! byte n-grams; the client holds the decrypted attachments. They run the
//! same secure protocol as spam filtering: the client learns one bit per
//! attachment ("malicious" / "clean") and the provider learns nothing about
//! the attachment bytes.
//!
//! Run with: `cargo run --release --example virus_scanning`

use pretzel_classifiers::NGramExtractor;
use pretzel_core::spam::AheVariant;
use pretzel_core::virus::{VirusModelBuilder, VirusScanClient, VirusScanProvider};
use pretzel_core::PretzelConfig;
use pretzel_transport::memory_pair;

/// Synthetic "malware family": executables that share a distinctive byte
/// motif. A real provider would train on a malware corpus; the protocol is
/// identical.
fn malicious_sample(variant: u8) -> Vec<u8> {
    let mut bytes = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x13, 0x37];
    bytes.extend(std::iter::repeat_n(0xcc, 24));
    bytes.extend_from_slice(&[variant, variant.wrapping_mul(7), 0x00]);
    bytes
}

fn benign_sample(i: usize) -> Vec<u8> {
    format!(
        "Quarterly planning notes, revision {i}. Agenda: budget review, hiring, \
         offsite logistics. Please add comments inline before Friday."
    )
    .into_bytes()
}

fn main() {
    let mut rng = rand::thread_rng();
    let config = PretzelConfig::test();

    // --- Provider trains its proprietary attachment model. -----------------
    println!("[provider] training an attachment model over hashed 3-gram features…");
    let extractor = NGramExtractor::new(3, 2048);
    let mut builder = VirusModelBuilder::new(extractor);
    for i in 0..40 {
        builder.add_malicious(&malicious_sample(i as u8));
        builder.add_benign(&benign_sample(i));
    }
    let model = builder.train();
    println!(
        "[provider] model: {} features x {} classes",
        model.num_features(),
        model.num_classes()
    );

    // --- Client and provider run the private scanning protocol. ------------
    let (mut provider_chan, mut client_chan) = memory_pair();
    let provider_cfg = config.clone();
    let scans = 4usize;
    let provider = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut provider = VirusScanProvider::setup(
            &mut provider_chan,
            &model,
            extractor,
            &provider_cfg,
            AheVariant::Pretzel,
            &mut rng,
        )
        .expect("provider setup");
        for _ in 0..scans {
            provider
                .process_attachment(&mut provider_chan, &mut rng)
                .expect("provider scan");
        }
    });

    let mut client =
        VirusScanClient::setup(&mut client_chan, &config, AheVariant::Pretzel, &mut rng)
            .expect("client setup");
    println!(
        "[client]   stored the encrypted attachment model: {} bytes",
        client.model_storage_bytes()
    );

    let attachments: Vec<(&str, Vec<u8>)> = vec![
        ("invoice.exe", malicious_sample(200)),
        ("notes.txt", benign_sample(99)),
        ("update.bin", malicious_sample(201)),
        ("minutes.txt", benign_sample(100)),
    ];
    for (name, bytes) in &attachments {
        let malicious = client
            .scan(&mut client_chan, bytes, &mut rng)
            .expect("client scan");
        println!(
            "[client]   {name:<12} -> {}",
            if malicious {
                "MALICIOUS (quarantined)"
            } else {
                "clean"
            }
        );
    }
    provider.join().unwrap();

    println!();
    println!("The provider scanned {scans} attachments without ever seeing their bytes.");
}
