//! Named, seeded workload scenarios for the Pretzel mailroom.
//!
//! The repo's benchmark story used to be one-shot runs of friendly
//! workloads. This crate supplies the adversarial half: a library of
//! **scenarios** — steady-state control, bursty arrivals, heavy-tailed
//! email sizes, session churn, slow-loris stalls, precompute-pool storms,
//! and a skewed mixed fleet with a custom module and interleaved v1/v2
//! peers — each a pure function from `(params, seed)` to a fully
//! materialized [`ScenarioPlan`], executed by a shared [`run_scenario`]
//! runner over memory channels or loopback TCP.
//!
//! Consumers:
//!
//! * `tests/scenario_determinism.rs` — same seed ⇒ identical
//!   [`DeterminismFingerprint`] (verdict bytes and meter totals), even over
//!   real sockets.
//! * the `bench_scenarios` bin in `pretzel_bench` — runs every scenario K
//!   times and emits median/p95/p99 + spread per the [`stats::Summary`]
//!   convention into `BENCH_scenarios.json`, which `bench_gate` defends
//!   against regressions in CI.
//!
//! See `docs/BENCHMARKS.md` for the full schema and gate policy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod custom;
pub mod library;
pub mod plan;
pub mod runner;
pub mod stats;

use pretzel_classifiers::nb::GrNbTrainer;
use pretzel_classifiers::{LabeledExample, NGramExtractor, Trainer};
use pretzel_core::registry::ProtocolRegistry;
use pretzel_core::topic::CandidateMode;
use pretzel_core::{PretzelConfig, ProviderModelSuite};
use pretzel_datasets::ling_spam_like;

pub use custom::{DigestFunction, DIGEST_WIRE_TAG};
pub use library::{
    BurstyArrivals, HeavyTailSizes, MixedFleetSkew, PoolExhaustionStorm, PrefilledBankStorm,
    SessionChurn, SlowLoris, Steady,
};
pub use plan::{RoundOp, ScenarioPlan, SessionEnd, SessionPlan};
pub use runner::{
    run_scenario, DeterminismFingerprint, RunOptions, ScenarioOutcome, TransportMode,
};
pub use stats::Summary;

/// Feature-space size of the scenario corpus (`shared_vocab + 2 *
/// class_vocab` of the ling-spam-like spec in [`scenario_suite`]); token
/// emails draw their features from this range.
pub const SCENARIO_NUM_FEATURES: usize = 240;

/// Size knobs shared by every scenario: how many client sessions the fleet
/// has and how many email rounds each submits. Scenario-specific knobs
/// (burst counts, pacing, budgets) are fixed constants reported through
/// [`Scenario::params`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Client sessions in the fleet.
    pub sessions: usize,
    /// Email rounds per session (scenarios may scale this internally, e.g.
    /// the storm doubles it; the exact counts appear in the plan).
    pub rounds: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            sessions: 8,
            rounds: 6,
        }
    }
}

impl ScenarioConfig {
    /// Smoke-test size: five sessions (enough for the mixed fleet to cover
    /// all five kinds), two rounds each. Used by CI's scenario-gate job.
    pub fn tiny() -> Self {
        ScenarioConfig {
            sessions: 5,
            rounds: 2,
        }
    }
}

/// A named, seeded workload generator.
///
/// Implementations must keep [`Scenario::plan`] pure: two calls with the
/// same seed (on the same params) must produce identical plans. The runner
/// and the determinism tests both lean on this.
pub trait Scenario: Send + Sync {
    /// Stable identifier (`steady`, `bursty-arrivals`, …) used in CLI
    /// flags, JSON records, and gate matching.
    fn name(&self) -> &'static str;

    /// One-line description for `--list` style output.
    fn summary(&self) -> &'static str;

    /// The parameters the plan was compiled from, as stable key/value
    /// pairs; recorded in `BENCH_scenarios.json` and compared by the gate
    /// so records with different shapes are never diffed against each
    /// other.
    fn params(&self) -> Vec<(&'static str, u64)>;

    /// Compiles the seeded plan (see [`ScenarioPlan`]).
    fn plan(&self, seed: u64) -> ScenarioPlan;
}

/// All scenarios at `config` size, in canonical order.
pub fn all_scenarios(config: ScenarioConfig) -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(library::Steady(config)),
        Box::new(library::BurstyArrivals(config)),
        Box::new(library::HeavyTailSizes(config)),
        Box::new(library::SessionChurn(config)),
        Box::new(library::SlowLoris(config)),
        Box::new(library::PoolExhaustionStorm(config)),
        Box::new(library::PrefilledBankStorm(config)),
        Box::new(library::MixedFleetSkew(config)),
    ]
}

/// Looks a scenario up by its stable name.
pub fn scenario_by_name(name: &str, config: ScenarioConfig) -> Option<Box<dyn Scenario>> {
    all_scenarios(config).into_iter().find(|s| s.name() == name)
}

/// The provider model suite every scenario is served from: the same
/// ling-spam-like corpus and byte-ngram virus model the integration tests
/// use, at test scale. Deterministic — the dataset generator is seeded by
/// the spec.
pub fn scenario_suite() -> ProviderModelSuite {
    let mut spec = ling_spam_like(0.08);
    spec.shared_vocab = 120;
    spec.class_vocab = 60;
    spec.doc_len = (20, 60);
    let corpus = spec.generate();
    debug_assert_eq!(corpus.num_features, SCENARIO_NUM_FEATURES);
    let model = GrNbTrainer::default().train(&corpus.examples, corpus.num_features, 2);

    let extractor = NGramExtractor::new(3, 64);
    let virus_examples: Vec<LabeledExample> = (0..20u8)
        .flat_map(|i| {
            let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad];
            bad.push(i);
            let good = format!("meeting notes attachment {i}");
            [
                LabeledExample {
                    features: extractor.extract(&bad),
                    label: 1,
                },
                LabeledExample {
                    features: extractor.extract(good.as_bytes()),
                    label: 0,
                },
            ]
        })
        .collect();
    let virus_model = GrNbTrainer::default().train(&virus_examples, extractor.buckets, 2);

    ProviderModelSuite {
        spam: model.clone(),
        topic: model,
        topic_mode: CandidateMode::Full,
        virus: virus_model,
        virus_extractor: extractor,
        config: PretzelConfig::test(),
    }
}

/// The registry scenarios are served against: the four built-ins plus the
/// custom [`DigestFunction`] (wire tag [`DIGEST_WIRE_TAG`]).
pub fn scenario_registry() -> ProtocolRegistry {
    ProtocolRegistry::builtin()
        .with_module(std::sync::Arc::new(DigestFunction))
        .expect("digest wire tag must not collide with a built-in")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique_and_cover_the_issue_list() {
        let scenarios = all_scenarios(ScenarioConfig::tiny());
        let names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate scenario name");
        for required in [
            "steady",
            "bursty-arrivals",
            "heavy-tail-email-sizes",
            "session-churn",
            "slow-loris",
            "pool-exhaustion-storm",
            "mixed-fleet-skew",
        ] {
            assert!(names.contains(&required), "missing scenario {required}");
            assert!(
                scenario_by_name(required, ScenarioConfig::tiny()).is_some(),
                "lookup must find {required}"
            );
        }
        assert!(scenario_by_name("no-such-scenario", ScenarioConfig::tiny()).is_none());
    }

    #[test]
    fn plans_are_pure_functions_of_seed_and_params() {
        for scenario in all_scenarios(ScenarioConfig::tiny()) {
            let a = scenario.plan(42);
            let b = scenario.plan(42);
            assert_eq!(a.sessions.len(), b.sessions.len(), "{}", scenario.name());
            assert_eq!(a.total_emails(), b.total_emails(), "{}", scenario.name());
            for (x, y) in a.sessions.iter().zip(&b.sessions) {
                assert_eq!(x.client_seed, y.client_seed, "{}", scenario.name());
                assert_eq!(x.email_count(), y.email_count(), "{}", scenario.name());
                assert_eq!(x.arrival_delay, y.arrival_delay, "{}", scenario.name());
                assert_eq!(x.frame_pace, y.frame_pace, "{}", scenario.name());
                assert_eq!(x.end, y.end, "{}", scenario.name());
            }
            // Different seed must change at least the per-session streams.
            let c = scenario.plan(43);
            assert!(
                a.sessions
                    .iter()
                    .zip(&c.sessions)
                    .any(|(x, y)| x.client_seed != y.client_seed),
                "{}: seed must reach the session streams",
                scenario.name()
            );
        }
    }

    #[test]
    fn churn_plans_mix_orderly_and_abandoning_sessions() {
        let plan = library::SessionChurn(ScenarioConfig::tiny()).plan(7);
        assert!(plan.expected_failed() >= 2, "churn needs abandonments");
        assert!(plan.expected_completed() >= 2, "churn needs survivors");
        assert!(
            plan.sessions
                .iter()
                .any(|s| s.rounds.is_empty() && s.end == SessionEnd::Abandon),
            "one client must vanish straight after its handshake"
        );
    }

    #[test]
    fn mixed_fleet_covers_every_kind_and_both_generations() {
        let plan = library::MixedFleetSkew(ScenarioConfig::tiny()).plan(7);
        let labels: Vec<&str> = plan.sessions.iter().map(|s| s.label).collect();
        for kind in ["spam", "topic", "virus", "search", "digest"] {
            assert!(labels.contains(&kind), "mixed fleet missing {kind}");
        }
    }

    #[test]
    fn steady_runs_to_a_clean_fleet_over_memory_channels() {
        let scenario = library::Steady(ScenarioConfig::tiny());
        let outcome = run_scenario(&scenario, 7, &RunOptions::default());
        assert_eq!(outcome.completed, ScenarioConfig::tiny().sessions);
        assert_eq!(outcome.failed, 0);
        assert_eq!(
            outcome.fingerprint.emails_total,
            (ScenarioConfig::tiny().sessions * ScenarioConfig::tiny().rounds) as u64
        );
        assert!(outcome.throughput() > 0.0);
    }

    #[test]
    fn identical_seeds_reproduce_the_fingerprint_in_process() {
        let scenario = library::PoolExhaustionStorm(ScenarioConfig::tiny());
        let a = run_scenario(&scenario, 11, &RunOptions::default());
        let b = run_scenario(&scenario, 11, &RunOptions::default());
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    /// The bank-mode storm is deterministic despite its background
    /// producer threads: the prefilled stock covers the whole demand, so
    /// the fallback counters — the only place producer timing could leak
    /// into the fingerprint — pin to zero on every run.
    #[test]
    fn prefilled_bank_storm_reproduces_with_zero_fallbacks() {
        let scenario = library::PrefilledBankStorm(ScenarioConfig::tiny());
        let a = run_scenario(&scenario, 11, &RunOptions::default());
        let b = run_scenario(&scenario, 11, &RunOptions::default());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(
            a.fingerprint
                .by_kind
                .iter()
                .all(|(_, totals)| totals.fallback_draws == 0),
            "a reservoir prefilled past total demand never serves inline"
        );
    }
}
