//! Executes a compiled [`ScenarioPlan`](crate::ScenarioPlan) against a
//! live mailroom.
//!
//! The runner is the only impure part of the scenario stack: it spawns one
//! thread per planned session, connects each over the selected transport
//! (in-process memory channels or loopback TCP), applies the plan's arrival
//! delays and frame pacing, submits the scripted rounds, and tears down as
//! scripted — orderly goodbye or mid-protocol abandonment. It collects each
//! session's verdicts **client-side, in plan order**, so the transcript is
//! independent of the provider's accept/scheduling order; fleet meter
//! totals are order-independent sums. Together those form the
//! [`DeterminismFingerprint`] that the reproducibility tests and the bench
//! harness both rely on.

use std::time::{Duration, Instant};

use pretzel_core::registry::WireTag;
use pretzel_server::{serve_tcp_sessions, KindTotals, Mailroom, MailroomClient, SessionState};
use pretzel_transport::{memory_pair, Channel, PacedChannel, TcpAcceptor, TcpChannel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::custom::fnv64;
use crate::plan::{RoundOp, SessionEnd, SessionPlan};
use crate::{scenario_registry, scenario_suite, Scenario};

/// Which transport the fleet connects over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportMode {
    /// In-process crossbeam channel pairs (no sockets; the default).
    #[default]
    Memory,
    /// Loopback TCP through [`TcpAcceptor`]/[`serve_tcp_sessions`] — real
    /// sockets, real framing, used by the determinism tests.
    Tcp,
}

/// Options for [`run_scenario`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Transport the fleet connects over.
    pub transport: TransportMode,
}

/// The reproducible subset of a scenario run: everything here must be
/// byte-identical across two runs with the same seed (wall-clock time is
/// deliberately excluded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterminismFingerprint {
    /// FNV-1a digest of the newline-joined verdict transcript.
    pub verdict_digest: u64,
    /// Per-session verdict lines, flattened in plan order.
    pub verdicts: Vec<String>,
    /// Fleet-wide emails served.
    pub emails_total: u64,
    /// Fleet payload bytes provider→clients.
    pub fleet_bytes_sent: u64,
    /// Fleet payload bytes clients→provider.
    pub fleet_bytes_received: u64,
    /// Fleet messages in both directions.
    pub fleet_messages: u64,
    /// Final offline-pool depth summed over sessions.
    pub pool_depth_total: u64,
    /// Per-kind meter totals, ordered by wire tag.
    pub by_kind: Vec<(WireTag, KindTotals)>,
}

/// What one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Seed the plan was compiled from.
    pub seed: u64,
    /// Wall-clock duration from first arrival to last teardown.
    pub wall: Duration,
    /// Sessions the provider recorded as completed.
    pub completed: usize,
    /// Sessions the provider recorded as failed (abandonments).
    pub failed: usize,
    /// The reproducible measurement surface.
    pub fingerprint: DeterminismFingerprint,
}

impl ScenarioOutcome {
    /// Emails served per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.fingerprint.emails_total as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Drives one planned session over an established channel and returns its
/// verdict transcript.
fn drive_session<C: Channel>(channel: C, plan: &SessionPlan) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(plan.client_seed);
    let paced = PacedChannel::new(channel, plan.frame_pace);
    let mut client = MailroomClient::connect(paced, &plan.spec, &mut rng)
        .unwrap_or_else(|e| panic!("scenario client connect ({}): {e}", plan.label));
    let mut transcript = Vec::new();
    for op in &plan.rounds {
        match op {
            RoundOp::One(payload) => {
                let verdict = client
                    .process(payload, &mut rng)
                    .unwrap_or_else(|e| panic!("scenario round ({}): {e}", plan.label));
                transcript.push(format!("{}/{verdict:?}", plan.label));
            }
            RoundOp::Batch(payloads) => {
                let verdicts = client
                    .process_batch(payloads, &mut rng)
                    .unwrap_or_else(|e| panic!("scenario batch ({}): {e}", plan.label));
                for verdict in verdicts {
                    transcript.push(format!("{}/{verdict:?}", plan.label));
                }
            }
        }
    }
    match plan.end {
        SessionEnd::Finish => {
            client
                .finish()
                .unwrap_or_else(|e| panic!("scenario finish ({}): {e}", plan.label));
        }
        SessionEnd::Abandon => client.abandon(),
    }
    transcript
}

/// Compiles `scenario` with `seed` and executes it, returning the outcome.
///
/// The mailroom always serves the scenario registry (the four built-ins
/// plus the custom digest module), so any scenario may script any kind.
///
/// # Panics
/// Panics if any session errors, or if the provider's completed/failed
/// accounting disagrees with the plan — a scenario run that silently lost
/// sessions would corrupt every statistic derived from it.
pub fn run_scenario(scenario: &dyn Scenario, seed: u64, options: &RunOptions) -> ScenarioOutcome {
    let plan = scenario.plan(seed);
    let mailroom =
        Mailroom::start_with_registry(scenario_suite(), scenario_registry(), plan.mailroom.clone());
    // Bank-enabled plans prefill their fleet reservoirs before the clock
    // starts: scenario statistics measure online serving, not the offline
    // phase, and a deterministic fingerprint needs the stock in place.
    assert!(
        mailroom.wait_until_bank_full(Duration::from_secs(120)),
        "{}: precompute bank never reached its targets",
        scenario.name()
    );

    let start = Instant::now();
    let transcripts: Vec<Vec<String>> = match options.transport {
        TransportMode::Memory => std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .sessions
                .iter()
                .map(|session| {
                    let mailroom = &mailroom;
                    scope.spawn(move || {
                        if !session.arrival_delay.is_zero() {
                            std::thread::sleep(session.arrival_delay);
                        }
                        let (provider_end, client_end) = memory_pair();
                        mailroom
                            .submit(provider_end)
                            .unwrap_or_else(|e| panic!("scenario submit: {e}"));
                        drive_session(client_end, session)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scenario client thread panicked"))
                .collect()
        }),
        TransportMode::Tcp => {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback acceptor");
            let addr = acceptor.local_addr().expect("acceptor local addr");
            let fleet_size = plan.sessions.len();
            std::thread::scope(|scope| {
                let accept_loop = {
                    let mailroom = &mailroom;
                    let acceptor = &acceptor;
                    scope.spawn(move || serve_tcp_sessions(mailroom, acceptor, fleet_size))
                };
                let handles: Vec<_> = plan
                    .sessions
                    .iter()
                    .map(|session| {
                        scope.spawn(move || {
                            if !session.arrival_delay.is_zero() {
                                std::thread::sleep(session.arrival_delay);
                            }
                            let channel =
                                TcpChannel::connect(addr).expect("connect loopback scenario");
                            drive_session(channel, session)
                        })
                    })
                    .collect();
                let transcripts: Vec<Vec<String>> = handles
                    .into_iter()
                    .map(|h| h.join().expect("scenario client thread panicked"))
                    .collect();
                let accepted = accept_loop.join().expect("acceptor thread panicked");
                assert_eq!(
                    accepted, fleet_size,
                    "every planned session must be accepted"
                );
                transcripts
            })
        }
    };
    let wall = start.elapsed();
    let report = mailroom.shutdown();

    let verdicts: Vec<String> = transcripts.into_iter().flatten().collect();
    let verdict_digest = fnv64(verdicts.join("\n").as_bytes());
    let completed = report.completed();
    let failed = report
        .sessions
        .iter()
        .filter(|s| matches!(s.state, SessionState::Failed(_)))
        .count();
    assert_eq!(
        completed,
        plan.expected_completed(),
        "{}: completed sessions diverge from the plan",
        scenario.name()
    );
    assert_eq!(
        failed,
        plan.expected_failed(),
        "{}: failed sessions diverge from the plan",
        scenario.name()
    );
    assert_eq!(
        report.emails_total,
        plan.total_emails(),
        "{}: served emails diverge from the plan",
        scenario.name()
    );

    ScenarioOutcome {
        name: scenario.name(),
        seed,
        wall,
        completed,
        failed,
        fingerprint: DeterminismFingerprint {
            verdict_digest,
            verdicts,
            emails_total: report.emails_total,
            fleet_bytes_sent: report.fleet_bytes_sent,
            fleet_bytes_received: report.fleet_bytes_received,
            fleet_messages: report.fleet_messages,
            pool_depth_total: report.pool_depth_total,
            by_kind: report.by_kind(),
        },
    }
}
