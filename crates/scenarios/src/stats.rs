//! Order statistics for repeated benchmark runs.
//!
//! Every statistical claim in `BENCH_scenarios.json` (and in the fixed
//! `throughput_mailroom --repeat` reporting) flows through [`Summary`], so
//! the convention is defined exactly once: **nearest-rank percentiles** over
//! the raw samples — no interpolation, no trimming — plus min/max/mean and a
//! min–max spread expressed as a percentage of the median. Nearest-rank is
//! deliberately conservative for small K (p95 of 5 samples is the worst
//! sample), which is what a regression gate wants.

/// Summary statistics over one scenario's repeated samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Nearest-rank 50th percentile.
    pub median: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// `100 * (max - min) / median` — the run-to-run noise of this record,
    /// used by the regression gate as its noise floor (0 when the median
    /// is 0).
    pub spread_pct: f64,
}

impl Summary {
    /// Summarizes a non-empty sample set.
    ///
    /// # Panics
    /// Panics on an empty slice — a bench run that produced no samples is a
    /// harness bug, not a statistic.
    pub fn from_samples(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let median = percentile(&sorted, 50.0);
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        Summary {
            median,
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            min,
            max,
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            spread_pct: if median > 0.0 {
                100.0 * (max - min) / median
            } else {
                0.0
            },
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty slice: the
/// smallest sample such that at least `q`% of the data is ≤ it.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_is_every_statistic() {
        let s = Summary::from_samples(&[42.0]);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.spread_pct, 0.0);
    }

    #[test]
    fn nearest_rank_matches_hand_computation() {
        // 10 samples: p50 is the 5th, p95 the 10th, p99 the 10th.
        let samples: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let s = Summary::from_samples(&samples);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p95, 10.0);
        assert_eq!(s.p99, 10.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean, 5.5);
        assert!((s.spread_pct - 180.0).abs() < 1e-9);
    }

    #[test]
    fn order_of_samples_is_irrelevant() {
        let a = Summary::from_samples(&[3.0, 1.0, 2.0]);
        let b = Summary::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.median, 2.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_sample_set_panics() {
        let _ = Summary::from_samples(&[]);
    }
}
