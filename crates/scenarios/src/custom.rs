//! A minimal custom [`FunctionModule`] so mixed-fleet scenarios exercise
//! the registry's extension path, not just the four built-ins.
//!
//! The module is a keyless FNV-1a digest service: the client sends opaque
//! bytes, the provider replies with their 64-bit FNV-1a digest, and the
//! verdict is [`Verdict::Custom`] carrying that digest. It is deliberately
//! trivial — the point is that the mailroom dispatches an out-of-tree wire
//! tag through the same handshake, metering, and reporting machinery as the
//! paper's functions, under load and interleaved with v1/v2 peers.

use pretzel_core::registry::{
    ClientContext, ClientModule, FunctionModule, ProviderModule, WireTag,
};
use pretzel_core::session::{EmailPayload, ProviderModelSuite, Verdict};
use pretzel_core::spam::AheVariant;
use pretzel_core::PretzelError;
use pretzel_transport::Channel;
use rand::RngCore;

/// Wire tag of the digest module (built-ins use 1–4; examples use 7 and 9).
pub const DIGEST_WIRE_TAG: WireTag = 11;

/// 64-bit FNV-1a over `data` — also the digest used to fingerprint verdict
/// transcripts in [`ScenarioOutcome`](crate::ScenarioOutcome).
pub fn fnv64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The registrable digest function (see [`DIGEST_WIRE_TAG`]).
pub struct DigestFunction;

impl FunctionModule for DigestFunction {
    fn wire_tag(&self) -> WireTag {
        DIGEST_WIRE_TAG
    }
    fn display_name(&self) -> &'static str {
        "fnv-digest"
    }
    fn provider_setup(
        &self,
        _channel: &mut dyn Channel,
        _suite: &ProviderModelSuite,
        _variant: AheVariant,
        _rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>, PretzelError> {
        Ok(Box::new(DigestProvider))
    }
    fn client_setup(
        &self,
        _channel: &mut dyn Channel,
        _ctx: &ClientContext,
        _rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>, PretzelError> {
        Ok(Box::new(DigestClient))
    }
}

struct DigestProvider;

impl ProviderModule for DigestProvider {
    fn wire_tag(&self) -> WireTag {
        DIGEST_WIRE_TAG
    }
    fn display_name(&self) -> &'static str {
        "fnv-digest"
    }
    fn precompute(&mut self, _budget: usize, _rng: &mut dyn RngCore) -> usize {
        0
    }
    fn pool_depth(&self) -> usize {
        0
    }
    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        _rng: &mut dyn RngCore,
    ) -> Result<Option<usize>, PretzelError> {
        let msg = channel.recv()?;
        channel.send(&fnv64(&msg).to_le_bytes())?;
        Ok(None)
    }
}

struct DigestClient;

impl ClientModule for DigestClient {
    fn wire_tag(&self) -> WireTag {
        DIGEST_WIRE_TAG
    }
    fn display_name(&self) -> &'static str {
        "fnv-digest"
    }
    fn model_storage_bytes(&self) -> usize {
        0
    }
    fn precompute(&mut self, _budget: usize, _rng: &mut dyn RngCore) -> usize {
        0
    }
    fn pool_depth(&self) -> usize {
        0
    }
    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        payload: &EmailPayload,
        _rng: &mut dyn RngCore,
    ) -> Result<Verdict, PretzelError> {
        let EmailPayload::Opaque(bytes) = payload else {
            return Err(PretzelError::Protocol(
                "fnv-digest takes opaque bytes".into(),
            ));
        };
        channel.send(bytes)?;
        let reply = channel.recv()?;
        let value = u64::from_le_bytes(
            reply
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .ok_or_else(|| PretzelError::Protocol("bad digest reply".into()))?,
        );
        Ok(Verdict::Custom {
            tag: DIGEST_WIRE_TAG,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_round_trips_over_a_channel() {
        use pretzel_transport::memory_pair;
        use rand::SeedableRng;
        let (mut provider_end, mut client_end) = memory_pair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let handle = std::thread::spawn(move || {
            let mut provider = DigestProvider;
            let mut prng = rand::rngs::StdRng::seed_from_u64(2);
            provider
                .process_round(&mut provider_end, &mut prng)
                .unwrap();
        });
        let mut client = DigestClient;
        let verdict = client
            .process_round(
                &mut client_end,
                &EmailPayload::Opaque(b"foobar".to_vec()),
                &mut rng,
            )
            .unwrap();
        handle.join().unwrap();
        assert_eq!(
            verdict,
            Verdict::Custom {
                tag: DIGEST_WIRE_TAG,
                value: 0x85944171f73967e8,
            }
        );
    }
}
