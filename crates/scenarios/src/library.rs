//! The named scenarios.
//!
//! Each scenario is a pure `(params, seed) → ScenarioPlan` compiler modeled
//! on an operational failure mode of a multi-tenant provider:
//!
//! | name | gadget |
//! |------|--------|
//! | `steady` | uniform arrivals, uniform sizes — the control group |
//! | `bursty-arrivals` | synchronized waves hammer the intake queue |
//! | `heavy-tail-email-sizes` | Pareto-sized emails starve short ones |
//! | `session-churn` | clients vanish mid-protocol with no goodbye |
//! | `slow-loris` | stalling clients pin workers between frames |
//! | `pool-exhaustion-storm` | batch storms outrun the precompute budget |
//! | `prefilled-bank-storm` | the same storm absorbed by a prefilled fleet bank |
//! | `mixed-fleet-skew` | all four built-ins + a custom module, skewed, v1/v2 interleaved |
//!
//! The per-session RNG streams are split from the scenario seed with the
//! same golden-ratio multiply the mailroom uses for its provider streams,
//! so no two sessions share a stream and every draw is reproducible.

use std::collections::BTreeMap;
use std::time::Duration;

use pretzel_classifiers::SparseVector;
use pretzel_core::bank::KIND_GARBLINGS;
use pretzel_core::session::EmailPayload;
use pretzel_core::topic::CandidateMode;
use pretzel_core::PretzelConfig;
use pretzel_server::{BankConfig, ClientSpec, ClientSpecBuilder, MailroomConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::custom::DigestFunction;
use crate::plan::{RoundOp, ScenarioPlan, SessionEnd, SessionPlan};
use crate::{Scenario, ScenarioConfig, SCENARIO_NUM_FEATURES};

/// Splits one per-session seed out of the scenario seed (same golden-ratio
/// constant as the mailroom's per-session provider streams).
fn session_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A spam/topic email: `tokens` draws over the scenario vocabulary,
/// deduplicated into a sparse count vector.
fn token_email(rng: &mut StdRng, tokens: usize) -> EmailPayload {
    let mut counts: BTreeMap<usize, u32> = BTreeMap::new();
    for _ in 0..tokens {
        let feature = rng.gen_range(0..SCENARIO_NUM_FEATURES);
        *counts.entry(feature).or_insert(0) += 1;
    }
    EmailPayload::Tokens(SparseVector::from_pairs(counts.into_iter().collect()))
}

/// A virus-scan attachment of `len` bytes; even draws get a malware-like
/// magic prefix so both verdict branches appear in transcripts.
fn attachment_email(rng: &mut StdRng, len: usize) -> EmailPayload {
    let mut bytes = if rng.gen_bool(0.5) {
        vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad]
    } else {
        b"meeting notes ".to_vec()
    };
    while bytes.len() < len {
        bytes.push(rng.gen_range(0..=255u32) as u8);
    }
    bytes.truncate(len.max(1));
    EmailPayload::Attachment(bytes)
}

/// Draws an integer from a truncated Pareto: `x_min * u^(-1/alpha)` capped
/// at `x_max`. With `alpha` slightly above 1, most draws hug `x_min` while
/// a fat tail reaches the cap — the canonical heavy-tail size model.
fn pareto(rng: &mut StdRng, x_min: usize, x_max: usize, alpha: f64) -> usize {
    // Uniform in (0, 1]; avoids 0 so the power is finite.
    let u = rng.gen_range(1..=1_000_000) as f64 / 1_000_000.0;
    let x = x_min as f64 * u.powf(-1.0 / alpha);
    (x as usize).clamp(x_min, x_max)
}

/// Search scripts: index a few documents, then query terms that alternate
/// between indexed and absent words.
fn search_payloads(rng: &mut StdRng, rounds: usize, doc_base: u64) -> Vec<EmailPayload> {
    const WORDS: [&str; 8] = [
        "budget",
        "invoice",
        "quarterly",
        "offsite",
        "roadmap",
        "payroll",
        "audit",
        "launch",
    ];
    let mut payloads = Vec::with_capacity(rounds);
    for round in 0..rounds {
        if round % 2 == 0 {
            let a = WORDS[rng.gen_range(0..WORDS.len())];
            let b = WORDS[rng.gen_range(0..WORDS.len())];
            payloads.push(EmailPayload::SearchIndex {
                doc_id: doc_base + round as u64,
                body: format!("{a} {b} attachment"),
            });
        } else {
            let term = if rng.gen_bool(0.75) {
                WORDS[rng.gen_range(0..WORDS.len())].to_string()
            } else {
                "absent".to_string()
            };
            payloads.push(EmailPayload::SearchQuery(term));
        }
    }
    payloads
}

/// Opaque payloads for the custom digest module.
fn digest_payloads(rng: &mut StdRng, rounds: usize) -> Vec<EmailPayload> {
    (0..rounds)
        .map(|_| {
            let len = rng.gen_range(8..64usize);
            let bytes = (0..len)
                .map(|_| rng.gen_range(0..=255u32) as u8)
                .collect::<Vec<u8>>();
            EmailPayload::Opaque(bytes)
        })
        .collect()
}

fn spam_spec(legacy: bool) -> ClientSpec {
    let builder = ClientSpecBuilder::spam(PretzelConfig::test());
    if legacy {
        builder.legacy_v1().build()
    } else {
        builder.build()
    }
}

fn spec_for_kind(kind: &'static str, legacy: bool) -> ClientSpec {
    let config = PretzelConfig::test();
    let builder = match kind {
        "spam" => ClientSpecBuilder::spam(config),
        "topic" => ClientSpecBuilder::topic(config).topic_mode(CandidateMode::Full),
        "virus" => ClientSpecBuilder::virus(config),
        "search" => ClientSpecBuilder::search(config),
        "digest" => ClientSpecBuilder::for_module(std::sync::Arc::new(DigestFunction), config),
        other => panic!("unknown scenario kind {other}"),
    };
    if legacy {
        builder.legacy_v1().build()
    } else {
        builder.build()
    }
}

fn fleet_mailroom(seed: u64, sessions: usize) -> MailroomConfig {
    MailroomConfig::builder()
        .workers(sessions.clamp(1, 4))
        .queue_capacity(sessions.max(1))
        .rng_seed(seed)
        .build()
}

/// Uniform arrivals, uniform email sizes: the control group every other
/// scenario is compared against.
pub struct Steady(pub ScenarioConfig);

impl Scenario for Steady {
    fn name(&self) -> &'static str {
        "steady"
    }
    fn summary(&self) -> &'static str {
        "uniform spam fleet, no arrival skew (control group)"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let sessions = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                SessionPlan {
                    label: "spam",
                    spec: spam_spec(false),
                    client_seed,
                    arrival_delay: Duration::ZERO,
                    frame_pace: Duration::ZERO,
                    rounds: (0..self.0.rounds)
                        .map(|_| RoundOp::One(token_email(&mut rng, 16)))
                        .collect(),
                    end: SessionEnd::Finish,
                }
            })
            .collect();
        ScenarioPlan {
            mailroom: fleet_mailroom(seed, self.0.sessions),
            sessions,
        }
    }
}

/// Synchronized arrival waves: the whole fleet lands on the intake queue in
/// a few bursts instead of trickling in.
pub struct BurstyArrivals(pub ScenarioConfig);

impl BurstyArrivals {
    const BURSTS: usize = 3;
    const BURST_GAP: Duration = Duration::from_millis(20);
}

impl Scenario for BurstyArrivals {
    fn name(&self) -> &'static str {
        "bursty-arrivals"
    }
    fn summary(&self) -> &'static str {
        "fleet arrives in synchronized waves that hammer the intake queue"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
            ("bursts", Self::BURSTS as u64),
            ("burst_gap_ms", Self::BURST_GAP.as_millis() as u64),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let per_burst = self.0.sessions.div_ceil(Self::BURSTS);
        let sessions = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                let payloads = (0..self.0.rounds)
                    .map(|_| token_email(&mut rng, 16))
                    .collect();
                SessionPlan {
                    label: "spam",
                    spec: spam_spec(false),
                    client_seed,
                    arrival_delay: Self::BURST_GAP * (i / per_burst) as u32,
                    frame_pace: Duration::ZERO,
                    rounds: vec![RoundOp::Batch(payloads)],
                    end: SessionEnd::Finish,
                }
            })
            .collect();
        ScenarioPlan {
            // Two workers so each wave genuinely queues.
            mailroom: MailroomConfig::builder()
                .workers(2)
                .queue_capacity(self.0.sessions.max(1))
                .rng_seed(seed)
                .build(),
            sessions,
        }
    }
}

/// Email sizes drawn from a truncated Pareto — alternating token-heavy spam
/// emails and byte-heavy virus attachments, so a few giants dominate the
/// work while most emails are small.
pub struct HeavyTailSizes(pub ScenarioConfig);

impl HeavyTailSizes {
    const MAX_TOKENS: usize = 400;
    const MAX_ATTACHMENT: usize = 4096;
    const ALPHA: f64 = 1.15;
}

impl Scenario for HeavyTailSizes {
    fn name(&self) -> &'static str {
        "heavy-tail-email-sizes"
    }
    fn summary(&self) -> &'static str {
        "Pareto-sized emails: a fat tail of giants among mostly-small mail"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
            ("max_tokens", Self::MAX_TOKENS as u64),
            ("max_attachment", Self::MAX_ATTACHMENT as u64),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let sessions = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                let spammy = i % 2 == 0;
                let rounds = (0..self.0.rounds)
                    .map(|_| {
                        if spammy {
                            let tokens = pareto(&mut rng, 8, Self::MAX_TOKENS, Self::ALPHA);
                            RoundOp::One(token_email(&mut rng, tokens))
                        } else {
                            let len = pareto(&mut rng, 16, Self::MAX_ATTACHMENT, Self::ALPHA);
                            RoundOp::One(attachment_email(&mut rng, len))
                        }
                    })
                    .collect();
                SessionPlan {
                    label: if spammy { "spam" } else { "virus" },
                    spec: spec_for_kind(if spammy { "spam" } else { "virus" }, false),
                    client_seed,
                    arrival_delay: Duration::ZERO,
                    frame_pace: Duration::ZERO,
                    rounds,
                    end: SessionEnd::Finish,
                }
            })
            .collect();
        ScenarioPlan {
            mailroom: fleet_mailroom(seed, self.0.sessions),
            sessions,
        }
    }
}

/// Connect/teardown churn: every other session vanishes mid-protocol with
/// no goodbye frame, and one session abandons immediately after its
/// handshake — the provider must fail those sessions without poisoning the
/// rest of the fleet.
pub struct SessionChurn(pub ScenarioConfig);

impl Scenario for SessionChurn {
    fn name(&self) -> &'static str {
        "session-churn"
    }
    fn summary(&self) -> &'static str {
        "clients vanish mid-protocol; orderly peers must be unaffected"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let mut sessions: Vec<SessionPlan> = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                let abandons = i % 2 == 1;
                let rounds = if abandons {
                    self.0.rounds.div_ceil(2)
                } else {
                    self.0.rounds
                };
                SessionPlan {
                    label: "spam",
                    spec: spam_spec(false),
                    client_seed,
                    arrival_delay: Duration::ZERO,
                    frame_pace: Duration::ZERO,
                    rounds: (0..rounds)
                        .map(|_| RoundOp::One(token_email(&mut rng, 16)))
                        .collect(),
                    end: if abandons {
                        SessionEnd::Abandon
                    } else {
                        SessionEnd::Finish
                    },
                }
            })
            .collect();
        // One client that handshakes and vanishes before any round.
        sessions.push(SessionPlan {
            label: "spam",
            spec: spam_spec(false),
            client_seed: session_seed(seed, self.0.sessions),
            arrival_delay: Duration::ZERO,
            frame_pace: Duration::ZERO,
            rounds: Vec::new(),
            end: SessionEnd::Abandon,
        });
        ScenarioPlan {
            mailroom: fleet_mailroom(seed, self.0.sessions + 1),
            sessions,
        }
    }
}

/// Stalling clients: a quarter of the fleet sleeps between every frame,
/// pinning a worker for the whole stretch of a near-idle session while the
/// well-behaved majority competes for what remains.
pub struct SlowLoris(pub ScenarioConfig);

impl SlowLoris {
    const PACE: Duration = Duration::from_millis(2);
}

impl Scenario for SlowLoris {
    fn name(&self) -> &'static str {
        "slow-loris"
    }
    fn summary(&self) -> &'static str {
        "stalling clients pin workers between frames"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
            ("pace_us", Self::PACE.as_micros() as u64),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let loris = (self.0.sessions / 4).max(1);
        let sessions = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                SessionPlan {
                    label: "spam",
                    spec: spam_spec(false),
                    client_seed,
                    arrival_delay: Duration::ZERO,
                    frame_pace: if i < loris {
                        Self::PACE
                    } else {
                        Duration::ZERO
                    },
                    rounds: (0..self.0.rounds)
                        .map(|_| RoundOp::One(token_email(&mut rng, 16)))
                        .collect(),
                    end: SessionEnd::Finish,
                }
            })
            .collect();
        ScenarioPlan {
            // Few workers relative to the fleet so a pinned worker hurts.
            mailroom: MailroomConfig::builder()
                .workers((self.0.sessions / 2).max(2))
                .queue_capacity(self.0.sessions.max(1))
                .rng_seed(seed)
                .build(),
            sessions,
        }
    }
}

/// Batch storms against a starved precompute pool: every session submits
/// all its emails as one coalesced batch while the provider's offline
/// budget is pinned to a single precomputed round, forcing online
/// (pool-miss) serving under burst pressure.
pub struct PoolExhaustionStorm(pub ScenarioConfig);

impl PoolExhaustionStorm {
    const BUDGET: usize = 1;
}

impl Scenario for PoolExhaustionStorm {
    fn name(&self) -> &'static str {
        "pool-exhaustion-storm"
    }
    fn summary(&self) -> &'static str {
        "batch storms outrun a single-round precompute budget"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
            ("budget", Self::BUDGET as u64),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let sessions = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                let searchy = i % 2 == 1;
                let (label, payloads) = if searchy {
                    (
                        "search",
                        search_payloads(&mut rng, self.0.rounds * 2, i as u64 * 100),
                    )
                } else {
                    (
                        "spam",
                        (0..self.0.rounds * 2)
                            .map(|_| token_email(&mut rng, 16))
                            .collect(),
                    )
                };
                let rounds = vec![RoundOp::Batch(payloads)];
                SessionPlan {
                    label,
                    spec: spec_for_kind(label, false),
                    client_seed,
                    arrival_delay: Duration::ZERO,
                    frame_pace: Duration::ZERO,
                    rounds,
                    end: SessionEnd::Finish,
                }
            })
            .collect();
        // This scenario deliberately pins the deprecated inline shim: its
        // whole point is pool-miss pressure on the per-session budget.
        // [`PrefilledBankStorm`] is the bank-mode counterpart.
        #[allow(deprecated)]
        let mailroom = MailroomConfig::builder()
            .workers(2)
            .queue_capacity(self.0.sessions.max(1))
            .rng_seed(seed)
            .precompute_budget(Self::BUDGET)
            .build();
        ScenarioPlan { mailroom, sessions }
    }
}

/// The bank-mode answer to [`PoolExhaustionStorm`]: the same one-batch
/// storm, but the mailroom fronts a fleet-wide precompute bank whose
/// garbling reservoirs are prefilled past the entire storm's demand
/// before any session is admitted. Spam and virus sessions share circuit
/// fingerprints, so the storm drains one stock from both sides — and with
/// targets at least the total draw count, no round ever garbles inline
/// and every fallback counter pins to zero deterministically.
pub struct PrefilledBankStorm(pub ScenarioConfig);

impl Scenario for PrefilledBankStorm {
    fn name(&self) -> &'static str {
        "prefilled-bank-storm"
    }
    fn summary(&self) -> &'static str {
        "the fleet bank absorbs the batch storm the inline budget cannot"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
            ("target", (self.0.sessions * self.0.rounds * 2) as u64),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let sessions = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                let scan = i % 2 == 1;
                let (label, payloads): (_, Vec<EmailPayload>) = if scan {
                    (
                        "virus",
                        (0..self.0.rounds * 2)
                            .map(|_| attachment_email(&mut rng, 32))
                            .collect(),
                    )
                } else {
                    (
                        "spam",
                        (0..self.0.rounds * 2)
                            .map(|_| token_email(&mut rng, 16))
                            .collect(),
                    )
                };
                let rounds = vec![RoundOp::Batch(payloads)];
                SessionPlan {
                    label,
                    spec: spec_for_kind(label, false),
                    client_seed,
                    arrival_delay: Duration::ZERO,
                    frame_pace: Duration::ZERO,
                    rounds,
                    end: SessionEnd::Finish,
                }
            })
            .collect();
        // Every garbling reservoir is prefilled to the storm's entire
        // demand, so even if the producers never refill mid-run the last
        // draw still finds stock.
        let demand = self.0.sessions * self.0.rounds * 2;
        ScenarioPlan {
            mailroom: MailroomConfig::builder()
                .workers(2)
                .queue_capacity(self.0.sessions.max(1))
                .rng_seed(seed)
                .bank(BankConfig::default().rng_seed(seed ^ 0xBA9C))
                .bank_producers(1)
                .reservoir_target(KIND_GARBLINGS, demand)
                .build(),
            sessions,
        }
    }
}

/// The full zoo: all four built-in kinds plus the custom digest module at
/// skewed ratios, alternating legacy-v1 and capability-negotiating v2
/// peers on the same mailroom. Everything submits through `process_batch`,
/// so v2 sessions batch and v1 sessions transparently degrade.
pub struct MixedFleetSkew(pub ScenarioConfig);

impl MixedFleetSkew {
    /// Skewed kind ratio over a 10-session cycle: spam-heavy, with every
    /// kind (including the custom module) inside the first five slots so
    /// even tiny configs cover the whole registry.
    const PATTERN: [&'static str; 10] = [
        "spam", "search", "digest", "virus", "topic", "spam", "spam", "topic", "virus", "spam",
    ];
}

impl Scenario for MixedFleetSkew {
    fn name(&self) -> &'static str {
        "mixed-fleet-skew"
    }
    fn summary(&self) -> &'static str {
        "all built-ins + custom module at skewed ratios, v1/v2 interleaved"
    }
    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions", self.0.sessions as u64),
            ("rounds", self.0.rounds as u64),
            ("kinds", 5),
        ]
    }
    fn plan(&self, seed: u64) -> ScenarioPlan {
        let sessions = (0..self.0.sessions)
            .map(|i| {
                let client_seed = session_seed(seed, i);
                let mut rng = StdRng::seed_from_u64(client_seed);
                let kind = Self::PATTERN[i % Self::PATTERN.len()];
                let legacy = i % 2 == 1;
                let payloads = match kind {
                    "search" => search_payloads(&mut rng, self.0.rounds, i as u64 * 100),
                    "digest" => digest_payloads(&mut rng, self.0.rounds),
                    "virus" => (0..self.0.rounds)
                        .map(|_| attachment_email(&mut rng, 32))
                        .collect(),
                    _ => (0..self.0.rounds)
                        .map(|_| token_email(&mut rng, 16))
                        .collect(),
                };
                let rounds = vec![RoundOp::Batch(payloads)];
                SessionPlan {
                    label: kind,
                    spec: spec_for_kind(kind, legacy),
                    client_seed,
                    arrival_delay: Duration::ZERO,
                    frame_pace: Duration::ZERO,
                    rounds,
                    end: SessionEnd::Finish,
                }
            })
            .collect();
        ScenarioPlan {
            mailroom: fleet_mailroom(seed, self.0.sessions),
            sessions,
        }
    }
}
