//! The deterministic intermediate representation of a scenario run.
//!
//! A [`Scenario`](crate::Scenario) compiles its parameters plus a seed into
//! a [`ScenarioPlan`]: a mailroom configuration and one [`SessionPlan`] per
//! client, fully materialized — every payload, every arrival delay, every
//! teardown decision is decided *before* anything runs. The runner then
//! merely executes the plan. This split is what makes the reproducibility
//! guarantee checkable: the plan is a pure function of `(params, seed)`, so
//! any nondeterminism observed downstream must live in the serving stack,
//! which is exactly what `tests/scenario_determinism.rs` pins.

use std::time::Duration;

use pretzel_core::session::EmailPayload;
use pretzel_server::{ClientSpec, MailroomConfig};

/// One client-side submission step.
pub enum RoundOp {
    /// A single email round ([`MailroomClient::process`]).
    ///
    /// [`MailroomClient::process`]: pretzel_server::MailroomClient::process
    One(EmailPayload),
    /// A coalesced batch ([`MailroomClient::process_batch`]) — batched on
    /// v2 sessions, transparently sequential on v1.
    ///
    /// [`MailroomClient::process_batch`]: pretzel_server::MailroomClient::process_batch
    Batch(Vec<EmailPayload>),
}

impl RoundOp {
    /// Number of emails this op submits.
    pub fn email_count(&self) -> u64 {
        match self {
            RoundOp::One(_) => 1,
            RoundOp::Batch(payloads) => payloads.len() as u64,
        }
    }
}

/// How a session ends after its rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// Orderly goodbye ([`MailroomClient::finish`]); the provider records
    /// the session as completed.
    ///
    /// [`MailroomClient::finish`]: pretzel_server::MailroomClient::finish
    Finish,
    /// The channel is dropped mid-protocol with no goodbye frame
    /// ([`MailroomClient::abandon`]); the provider records the session as
    /// failed. Used by churn scenarios.
    ///
    /// [`MailroomClient::abandon`]: pretzel_server::MailroomClient::abandon
    Abandon,
}

/// Everything one client will do, decided up front.
pub struct SessionPlan {
    /// Human-readable kind label, prefixed onto each verdict transcript
    /// line (`"spam/Spam(false)"`).
    pub label: &'static str,
    /// The client's protocol spec (function module, version bounds,
    /// capabilities, batching preference).
    pub spec: ClientSpec,
    /// Seed of this client's private RNG stream.
    pub client_seed: u64,
    /// How long after scenario start this client connects.
    pub arrival_delay: Duration,
    /// Per-frame send stall injected via
    /// [`PacedChannel`](pretzel_transport::PacedChannel); zero for
    /// well-behaved clients.
    pub frame_pace: Duration,
    /// The submission script.
    pub rounds: Vec<RoundOp>,
    /// Orderly or abusive teardown.
    pub end: SessionEnd,
}

impl SessionPlan {
    /// Total emails this session submits.
    pub fn email_count(&self) -> u64 {
        self.rounds.iter().map(RoundOp::email_count).sum()
    }
}

/// A compiled scenario: mailroom tuning plus the full fleet script.
pub struct ScenarioPlan {
    /// Provider-side configuration (workers, queue depth, precompute
    /// budget, RNG seed).
    pub mailroom: MailroomConfig,
    /// One entry per client, in submission order.
    pub sessions: Vec<SessionPlan>,
}

impl ScenarioPlan {
    /// Sessions that end with an orderly goodbye.
    pub fn expected_completed(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.end == SessionEnd::Finish)
            .count()
    }

    /// Sessions that abandon mid-protocol (recorded as failed by the
    /// provider).
    pub fn expected_failed(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.end == SessionEnd::Abandon)
            .count()
    }

    /// Total emails across the fleet.
    pub fn total_emails(&self) -> u64 {
        self.sessions.iter().map(SessionPlan::email_count).sum()
    }
}
