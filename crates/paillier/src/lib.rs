//! The Paillier additively homomorphic cryptosystem.
//!
//! Paillier is the AHE used by Pretzel's **Baseline** protocol (paper §3.3)
//! and by the prior Yao+GLLM works the paper cites. Pretzel replaces it with a
//! Ring-LWE scheme (§4.1, `pretzel-rlwe`); both are benchmarked side by side
//! in Figure 6 and drive the Baseline-vs-Pretzel comparisons in Figures 7–12.
//!
//! We implement the standard scheme with the `g = n + 1` generator
//! simplification:
//!
//! * KeyGen: `n = p·q` for random primes `p, q`; `λ = lcm(p−1, q−1)`;
//!   `μ = L(g^λ mod n²)⁻¹ mod n` where `L(u) = (u − 1)/n`.
//! * `Enc(m) = (1 + n·m) · rⁿ mod n²` for random `r ∈ Z*_n`.
//! * `Dec(c) = L(c^λ mod n²) · μ mod n`.
//! * Homomorphic addition is ciphertext multiplication mod `n²`; multiplying
//!   a plaintext by a constant is ciphertext exponentiation.
//!
//! # Offline/online split
//!
//! Pretzel's staging (§3.3) moves the expensive public-key work out of the
//! per-email path, and this crate supports both halves of that split:
//!
//! * **Decryption** runs CRT-style: two half-size exponentiations mod `p²`
//!   and `q²` over precomputed [`pretzel_bignum::AutoMontgomery`] contexts
//!   (fixed-limb engines when the width is supported), recombined with
//!   Garner's formula. The one-exponentiation reference path is kept as
//!   [`SecretKey::decrypt_inline`] for cross-checking and benchmarks.
//! * **Encryption** can draw its randomizer `rⁿ mod n²` from a
//!   [`RandomnessPool`] filled offline ([`PublicKey::encrypt_pooled`]), which
//!   turns the online cost into a single modular multiplication. An empty
//!   pool falls back to the inline exponentiation, so correctness never
//!   depends on pool depth.

use std::collections::VecDeque;

use rand::Rng;

use pretzel_bignum::{crt_combine, gen_prime, mod_inv, AutoMontgomery, BigUint};

/// Errors from Paillier operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaillierError {
    /// The plaintext is not in `[0, n)`.
    PlaintextOutOfRange,
    /// Keys of different key pairs were mixed, or a ciphertext is malformed.
    InvalidCiphertext,
}

impl std::fmt::Display for PaillierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaillierError::PlaintextOutOfRange => write!(f, "plaintext out of range"),
            PaillierError::InvalidCiphertext => write!(f, "invalid ciphertext"),
        }
    }
}

impl std::error::Error for PaillierError {}

/// Paillier public key.
#[derive(Clone, Debug)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
    mont_n2: AutoMontgomery,
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
    }
}

impl Eq for PublicKey {}

/// Per-prime half of the CRT decryption context: everything needed to map a
/// ciphertext to its plaintext residue modulo one prime factor.
#[derive(Clone, Debug)]
struct CrtPrime {
    /// The prime factor (`p` or `q`).
    prime: BigUint,
    /// Montgomery context mod `prime²` (precomputed once at key generation;
    /// fixed-limb whenever the prime size hits a supported width).
    mont_sq: AutoMontgomery,
    /// The half-size exponent `prime - 1`.
    exp: BigUint,
    /// `L_prime(g^(prime-1) mod prime²)⁻¹ mod prime`, with
    /// `L_prime(x) = (x-1)/prime`.
    h: BigUint,
}

impl CrtPrime {
    fn new(prime: &BigUint, n: &BigUint) -> Option<Self> {
        let sq = prime.clone() * prime.clone();
        let exp = prime.clone() - BigUint::one();
        // g = n + 1, so g^(prime-1) mod prime² = 1 + (prime-1)·n mod prime²
        // and L_prime of it is (prime-1)·(n/prime) mod prime.
        let l_val = (exp.clone() * (n.clone() / prime.clone())) % prime.clone();
        let h = mod_inv(&l_val, prime).ok()?;
        Some(CrtPrime {
            prime: prime.clone(),
            mont_sq: AutoMontgomery::new(&sq),
            exp,
            h,
        })
    }

    fn force_dynamic(&self) -> CrtPrime {
        CrtPrime {
            prime: self.prime.clone(),
            mont_sq: self.mont_sq.to_dynamic(),
            exp: self.exp.clone(),
            h: self.h.clone(),
        }
    }

    /// The plaintext residue of `c` modulo this prime.
    fn residue(&self, c: &BigUint) -> Result<BigUint, PaillierError> {
        let x = self.mont_sq.pow(c, &self.exp);
        let minus_one = x
            .checked_sub(&BigUint::one())
            .ok_or(PaillierError::InvalidCiphertext)?;
        let (l, r) = minus_one.div_rem(&self.prime);
        if !r.is_zero() {
            // Happens iff gcd(c, prime) != 1 — not a valid ciphertext.
            return Err(PaillierError::InvalidCiphertext);
        }
        Ok((l * self.h.clone()) % self.prime.clone())
    }
}

/// Paillier secret key.
#[derive(Clone, Debug)]
pub struct SecretKey {
    lambda: BigUint,
    mu: BigUint,
    /// CRT contexts for the two prime factors and `p⁻¹ mod q`.
    crt_p: CrtPrime,
    crt_q: CrtPrime,
    p_inv_q: BigUint,
    public: PublicKey,
}

/// A Paillier ciphertext (an element of `Z*_{n²}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext {
    value: BigUint,
}

impl Ciphertext {
    /// Serialized size in bytes for a key with modulus bit-length `n_bits`
    /// (ciphertexts live mod `n²`, hence twice the modulus size).
    pub fn serialized_len(n_bits: usize) -> usize {
        2 * n_bits.div_ceil(8)
    }

    /// Serializes the ciphertext as fixed-width big-endian bytes.
    pub fn to_bytes(&self, pk: &PublicKey) -> Vec<u8> {
        self.value
            .to_bytes_be_padded(Ciphertext::serialized_len(pk.n.bits()))
    }

    /// Deserializes a ciphertext (no validity check beyond range).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Ciphertext {
            value: BigUint::from_bytes_be(bytes),
        }
    }

    /// Raw value accessor (used by tests).
    pub fn value(&self) -> &BigUint {
        &self.value
    }
}

impl PublicKey {
    /// The modulus `n`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// Serializes the public key (the modulus `n`, big-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.n.to_bytes_be()
    }

    /// Reconstructs a public key from serialized bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PaillierError> {
        let n = BigUint::from_bytes_be(bytes);
        if n < BigUint::from(16u64) || n.is_even() {
            return Err(PaillierError::InvalidCiphertext);
        }
        let n_squared = n.clone() * n.clone();
        let mont_n2 = AutoMontgomery::new(&n_squared);
        Ok(PublicKey {
            n,
            n_squared,
            mont_n2,
        })
    }

    /// Which Montgomery engine backs the `n²` arithmetic: `"fixed:<limbs>"`
    /// for the allocation-free fixed-limb path, `"dynamic"` for the
    /// `Vec`-backed fallback. Exposed for benches and inspection tests.
    pub fn mont_backend(&self) -> &'static str {
        self.mont_n2.backend()
    }

    /// A copy of this key with every Montgomery context forced onto the
    /// dynamic reference path — the A/B comparator for `bench_bignum`.
    /// Produces byte-identical ciphertexts/plaintexts, just slower.
    pub fn force_dynamic(&self) -> PublicKey {
        PublicKey {
            n: self.n.clone(),
            n_squared: self.n_squared.clone(),
            mont_n2: self.mont_n2.to_dynamic(),
        }
    }

    /// Bit length of the modulus.
    pub fn n_bits(&self) -> usize {
        self.n.bits()
    }

    /// Number of plaintext bits that can be packed into one ciphertext
    /// (the paper's packing capacity `p = ⌊G/b⌋` uses `G =` this value).
    pub fn plaintext_bits(&self) -> usize {
        // Keep a one-bit headroom below n to avoid wrap-around on packed sums.
        self.n.bits() - 1
    }

    /// Encrypts `m ∈ [0, n)`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        // Reject before sampling: an invalid plaintext must not cost an
        // n-bit exponentiation or advance the RNG stream.
        if m >= &self.n {
            return Err(PaillierError::PlaintextOutOfRange);
        }
        let rn = self.sample_randomizer(rng);
        self.encrypt_with_randomizer(m, &rn)
    }

    /// Samples a fresh encryption randomizer `rⁿ mod n²` — the expensive,
    /// message-independent half of [`PublicKey::encrypt`]. This is the unit
    /// of work a [`RandomnessPool`] precomputes offline.
    pub fn sample_randomizer<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        // r uniform in [1, n) and coprime to n (overwhelmingly likely).
        let r = loop {
            let candidate = BigUint::random_below(rng, &self.n);
            if !candidate.is_zero() && candidate.gcd(&self.n).is_one() {
                break candidate;
            }
        };
        self.mont_n2.pow(&r, &self.n)
    }

    /// Encrypts `m` with a caller-supplied randomizer `rn = rⁿ mod n²`: one
    /// Montgomery multiplication, the cheap online half of the split.
    pub fn encrypt_with_randomizer(
        &self,
        m: &BigUint,
        rn: &BigUint,
    ) -> Result<Ciphertext, PaillierError> {
        if m >= &self.n {
            return Err(PaillierError::PlaintextOutOfRange);
        }
        // (1 + n*m) mod n^2
        let gm = (BigUint::one() + self.n.clone() * m.clone()) % self.n_squared.clone();
        Ok(Ciphertext {
            value: self.mont_n2.mul(&gm, rn),
        })
    }

    /// Encrypts `m` drawing the randomizer from `pool`; falls back to the
    /// inline exponentiation when the pool is empty (or was filled for a
    /// different key). Pooled and inline ciphertexts are interchangeable —
    /// they decrypt identically and have identical wire size.
    pub fn encrypt_pooled<R: Rng + ?Sized>(
        &self,
        m: &BigUint,
        pool: &mut RandomnessPool,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        // Reject before drawing: an invalid plaintext must not burn a
        // precomputed randomizer (or an inline exponentiation).
        if m >= &self.n {
            return Err(PaillierError::PlaintextOutOfRange);
        }
        let rn = pool
            .take_for(self)
            .unwrap_or_else(|| self.sample_randomizer(rng));
        self.encrypt_with_randomizer(m, &rn)
    }

    /// Pooled counterpart of [`PublicKey::encrypt_zero`].
    pub fn encrypt_zero_pooled<R: Rng + ?Sized>(
        &self,
        pool: &mut RandomnessPool,
        rng: &mut R,
    ) -> Ciphertext {
        self.encrypt_pooled(&BigUint::zero(), pool, rng)
            .expect("zero is always in range")
    }

    /// Encrypts a `u64` plaintext.
    pub fn encrypt_u64<R: Rng + ?Sized>(
        &self,
        m: u64,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        self.encrypt(&BigUint::from(m), rng)
    }

    /// Homomorphic addition: `Enc(a) ⊞ Enc(b) = Enc(a + b mod n)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext {
            value: self.mont_n2.mul(&a.value, &b.value),
        }
    }

    /// Homomorphic addition of a plaintext constant: `Enc(a) ⊞ k = Enc(a + k)`.
    pub fn add_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        let gm = (BigUint::one() + self.n.clone() * (k.clone() % self.n.clone()))
            % self.n_squared.clone();
        Ciphertext {
            value: self.mont_n2.mul(&a.value, &gm),
        }
    }

    /// Homomorphic scalar multiplication: `Enc(a) ⊠ k = Enc(a · k mod n)`.
    pub fn mul_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext {
            value: self.mont_n2.pow(&a.value, k),
        }
    }

    /// Scalar multiplication by a `u64`.
    pub fn mul_plain_u64(&self, a: &Ciphertext, k: u64) -> Ciphertext {
        self.mul_plain(a, &BigUint::from(k))
    }

    /// Fresh encryption of zero, useful for re-randomizing sums.
    pub fn encrypt_zero<R: Rng + ?Sized>(&self, rng: &mut R) -> Ciphertext {
        self.encrypt(&BigUint::zero(), rng)
            .expect("zero is always in range")
    }
}

impl SecretKey {
    /// The corresponding public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Engine labels for the CRT `p²`/`q²` contexts (see
    /// [`PublicKey::mont_backend`]).
    pub fn crt_backends(&self) -> (&'static str, &'static str) {
        (self.crt_p.mont_sq.backend(), self.crt_q.mont_sq.backend())
    }

    /// A copy of this key with every Montgomery context (public `n²` and
    /// both CRT squares) forced onto the dynamic reference path — the A/B
    /// comparator for `bench_bignum`. Decrypts identically, just slower.
    pub fn force_dynamic(&self) -> SecretKey {
        SecretKey {
            lambda: self.lambda.clone(),
            mu: self.mu.clone(),
            crt_p: self.crt_p.force_dynamic(),
            crt_q: self.crt_q.force_dynamic(),
            p_inv_q: self.p_inv_q.clone(),
            public: self.public.force_dynamic(),
        }
    }

    /// Decrypts a ciphertext to its plaintext in `[0, n)`.
    ///
    /// Runs the CRT fast path: one half-size exponentiation mod `p²` and one
    /// mod `q²` (contexts precomputed at key generation), recombined with
    /// Garner's formula — several times faster than the single `λ`-power
    /// reference path, which is kept as [`SecretKey::decrypt_inline`].
    pub fn decrypt(&self, c: &Ciphertext) -> Result<BigUint, PaillierError> {
        self.check_ciphertext_range(c)?;
        let mp = self.crt_p.residue(&c.value)?;
        let mq = self.crt_q.residue(&c.value)?;
        Ok(crt_combine(
            &mp,
            &mq,
            &self.crt_p.prime,
            &self.crt_q.prime,
            &self.p_inv_q,
        ))
    }

    /// Reference decryption via the textbook `L(c^λ mod n²)·μ mod n` formula.
    ///
    /// Kept alongside [`SecretKey::decrypt`] so tests can pin the CRT path
    /// against it and `bench_phase_split` can measure the speedup.
    pub fn decrypt_inline(&self, c: &Ciphertext) -> Result<BigUint, PaillierError> {
        self.check_ciphertext_range(c)?;
        let u = self.public.mont_n2.pow(&c.value, &self.lambda);
        let l = self.l_function(&u)?;
        Ok((l * self.mu.clone()) % self.public.n.clone())
    }

    /// Rejects values outside `Z*_{n²}`'s representative range. Without this
    /// check a ciphertext `>= n²` would be *silently reduced* by the
    /// Montgomery conversion inside the exponentiation, accepting a
    /// non-canonical encoding that decrypts like its reduced twin.
    fn check_ciphertext_range(&self, c: &Ciphertext) -> Result<(), PaillierError> {
        if c.value.is_zero() || c.value >= self.public.n_squared {
            return Err(PaillierError::InvalidCiphertext);
        }
        Ok(())
    }

    /// Decrypts to a `u64`, if it fits.
    pub fn decrypt_u64(&self, c: &Ciphertext) -> Result<u64, PaillierError> {
        self.decrypt(c)?
            .to_u64()
            .ok_or(PaillierError::InvalidCiphertext)
    }

    /// `L(u) = (u - 1) / n`; the division must be exact for valid inputs.
    fn l_function(&self, u: &BigUint) -> Result<BigUint, PaillierError> {
        let minus_one = u
            .checked_sub(&BigUint::one())
            .ok_or(PaillierError::InvalidCiphertext)?;
        let (q, r) = minus_one.div_rem(&self.public.n);
        if !r.is_zero() {
            return Err(PaillierError::InvalidCiphertext);
        }
        Ok(q)
    }
}

/// FIFO pool of precomputed encryption randomizers `rⁿ mod n²` for one
/// public key — the offline half of the paper's per-email staging (§3.3).
///
/// Filling the pool ([`RandomnessPool::refill`]) costs one full
/// exponentiation per entry and can run whenever the CPU is idle; drawing
/// from it ([`PublicKey::encrypt_pooled`]) makes the online encryption a
/// single modular multiplication. The pool is bound to the key that filled
/// it: refilling for a different key clears stale entries, and
/// `encrypt_pooled` with a mismatched pool simply falls back inline.
#[derive(Clone, Debug, Default)]
pub struct RandomnessPool {
    /// Modulus of the key the pooled randomizers were computed for.
    n: Option<BigUint>,
    factors: VecDeque<BigUint>,
    fallback_draws: u64,
}

impl RandomnessPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled randomizers (= online encryptions covered).
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Tops the pool up to `target` randomizers for `pk`, returning how many
    /// were added. A pool previously filled for a different key is cleared
    /// first.
    pub fn refill<R: Rng + ?Sized>(&mut self, pk: &PublicKey, target: usize, rng: &mut R) -> usize {
        if self.n.as_ref() != Some(&pk.n) {
            self.factors.clear();
            self.n = Some(pk.n.clone());
        }
        let mut added = 0;
        while self.factors.len() < target {
            self.factors.push_back(pk.sample_randomizer(rng));
            added += 1;
        }
        added
    }

    /// Accepts one randomizer produced elsewhere (a fleet-wide precompute
    /// bank) for `pk`. Like [`RandomnessPool::refill`], a pool previously
    /// bound to a different key is cleared and rebound first.
    pub fn push(&mut self, pk: &PublicKey, rn: BigUint) {
        if self.n.as_ref() != Some(&pk.n) {
            self.factors.clear();
            self.n = Some(pk.n.clone());
        }
        self.factors.push_back(rn);
    }

    /// Draws that found the pool dry (or bound to a different key) and fell
    /// back to an inline exponentiation in [`PublicKey::encrypt_pooled`].
    pub fn fallback_draws(&self) -> u64 {
        self.fallback_draws
    }

    /// Pops one randomizer if the pool belongs to `pk` and is non-empty;
    /// counts the dry draw otherwise.
    fn take_for(&mut self, pk: &PublicKey) -> Option<BigUint> {
        if self.n.as_ref() != Some(&pk.n) {
            self.fallback_draws += 1;
            return None;
        }
        match self.factors.pop_front() {
            Some(rn) => Some(rn),
            None => {
                self.fallback_draws += 1;
                None
            }
        }
    }
}

/// Generates a Paillier key pair with an `n_bits`-bit modulus.
///
/// The paper's deployment parameter is 2048 bits; tests and scaled-down
/// benchmark runs use 1024 (or smaller) for speed — the Figure 6 row for
/// Paillier is measured at whatever size the harness requests and recorded in
/// EXPERIMENTS.md.
pub fn keygen<R: Rng + ?Sized>(n_bits: usize, rng: &mut R) -> SecretKey {
    assert!(n_bits >= 64, "modulus too small to be meaningful");
    loop {
        let p = gen_prime(n_bits / 2, rng);
        let q = gen_prime(n_bits - n_bits / 2, rng);
        if p == q {
            continue;
        }
        let n = p.clone() * q.clone();
        if n.bits() != n_bits {
            continue;
        }
        let n_squared = n.clone() * n.clone();
        let p1 = p.clone() - BigUint::one();
        let q1 = q.clone() - BigUint::one();
        let lambda = p1.lcm(&q1);
        let mont_n2 = AutoMontgomery::new(&n_squared);

        // mu = (L(g^lambda mod n^2))^{-1} mod n, with g = n + 1:
        // g^lambda mod n^2 = 1 + n*lambda mod n^2, so L(..) = lambda mod n.
        let g_lambda = (BigUint::one() + n.clone() * lambda.clone()) % n_squared.clone();
        let l_val = (g_lambda - BigUint::one()) / n.clone();
        let mu = match mod_inv(&l_val, &n) {
            Ok(mu) => mu,
            Err(_) => continue,
        };
        let (Some(crt_p), Some(crt_q)) = (CrtPrime::new(&p, &n), CrtPrime::new(&q, &n)) else {
            continue;
        };
        let Ok(p_inv_q) = mod_inv(&p, &q) else {
            continue;
        };

        let public = PublicKey {
            n,
            n_squared,
            mont_n2,
        };
        return SecretKey {
            lambda,
            mu,
            crt_p,
            crt_q,
            p_inv_q,
            public,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> SecretKey {
        // 256-bit keys keep unit tests fast; correctness is size-independent.
        keygen(256, &mut rand::thread_rng())
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        for m in [0u64, 1, 42, 1 << 20, u32::MAX as u64] {
            let c = pk.encrypt_u64(m, &mut rng).unwrap();
            assert_eq!(sk.decrypt_u64(&c).unwrap(), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let c1 = pk.encrypt_u64(7, &mut rng).unwrap();
        let c2 = pk.encrypt_u64(7, &mut rng).unwrap();
        assert_ne!(c1, c2, "two encryptions of the same value must differ");
        assert_eq!(sk.decrypt_u64(&c1).unwrap(), 7);
        assert_eq!(sk.decrypt_u64(&c2).unwrap(), 7);
    }

    #[test]
    fn homomorphic_addition() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let ca = pk.encrypt_u64(1234, &mut rng).unwrap();
        let cb = pk.encrypt_u64(4321, &mut rng).unwrap();
        let sum = pk.add(&ca, &cb);
        assert_eq!(sk.decrypt_u64(&sum).unwrap(), 5555);
    }

    #[test]
    fn homomorphic_add_plain_and_mul_plain() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let c = pk.encrypt_u64(100, &mut rng).unwrap();
        let c2 = pk.add_plain(&c, &BigUint::from(23u64));
        assert_eq!(sk.decrypt_u64(&c2).unwrap(), 123);
        let c3 = pk.mul_plain_u64(&c, 7);
        assert_eq!(sk.decrypt_u64(&c3).unwrap(), 700);
    }

    #[test]
    fn dot_product_in_cipherspace() {
        // The exact pattern GLLM uses: sum_i x_i * Enc(v_i).
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let v = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let x = [2u64, 7, 1, 8, 2, 8, 1, 8];
        let encrypted: Vec<_> = v
            .iter()
            .map(|&vi| pk.encrypt_u64(vi, &mut rng).unwrap())
            .collect();
        let mut acc = pk.encrypt_zero(&mut rng);
        for (ci, &xi) in encrypted.iter().zip(x.iter()) {
            acc = pk.add(&acc, &pk.mul_plain_u64(ci, xi));
        }
        let expected: u64 = v.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        assert_eq!(sk.decrypt_u64(&acc).unwrap(), expected);
    }

    #[test]
    fn addition_wraps_modulo_n() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let near_n = pk.n().clone() - BigUint::one();
        let c = pk.encrypt(&near_n, &mut rng).unwrap();
        let c2 = pk.add_plain(&c, &BigUint::from(5u64));
        assert_eq!(sk.decrypt(&c2).unwrap(), BigUint::from(4u64));
    }

    #[test]
    fn out_of_range_plaintext_rejected() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        assert_eq!(
            pk.encrypt(&pk.n().clone(), &mut rng).unwrap_err(),
            PaillierError::PlaintextOutOfRange
        );
    }

    #[test]
    fn ciphertext_serialization_roundtrip() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let c = pk.encrypt_u64(999, &mut rng).unwrap();
        let bytes = c.to_bytes(pk);
        assert_eq!(bytes.len(), Ciphertext::serialized_len(pk.n_bits()));
        let restored = Ciphertext::from_bytes(&bytes);
        assert_eq!(sk.decrypt_u64(&restored).unwrap(), 999);
    }

    #[test]
    fn invalid_ciphertext_rejected() {
        let sk = test_key();
        let zero_ct = Ciphertext {
            value: BigUint::zero(),
        };
        assert!(sk.decrypt(&zero_ct).is_err());
    }

    #[test]
    fn plaintext_bits_is_close_to_modulus_size() {
        let sk = test_key();
        assert_eq!(sk.public().plaintext_bits(), sk.public().n_bits() - 1);
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let restored = PublicKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(&restored, pk);
        let c = restored.encrypt_u64(321, &mut rng).unwrap();
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 321);
        assert!(PublicKey::from_bytes(&[2]).is_err());
    }

    #[test]
    fn distinct_keys_have_distinct_moduli() {
        let mut rng = rand::thread_rng();
        let a = keygen(128, &mut rng);
        let b = keygen(128, &mut rng);
        assert_ne!(a.public().n(), b.public().n());
    }

    #[test]
    fn crt_decrypt_matches_inline_reference() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let m = BigUint::random_below(&mut rng, pk.n());
            let c = pk.encrypt(&m, &mut rng).unwrap();
            assert_eq!(sk.decrypt(&c).unwrap(), m);
            assert_eq!(sk.decrypt_inline(&c).unwrap(), m);
        }
    }

    /// Regression test: a ciphertext `>= n²` must be rejected, not silently
    /// reduced by the Montgomery conversion inside the exponentiation. Both
    /// decryption paths must agree on the rejection.
    #[test]
    fn ciphertext_at_or_above_n_squared_rejected() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let c = pk.encrypt_u64(77, &mut rng).unwrap();
        // c + n² encodes the same residue but is a non-canonical wire value.
        let shifted = Ciphertext {
            value: c.value().clone() + pk.n().clone() * pk.n().clone(),
        };
        assert_eq!(
            sk.decrypt(&shifted).unwrap_err(),
            PaillierError::InvalidCiphertext
        );
        assert_eq!(
            sk.decrypt_inline(&shifted).unwrap_err(),
            PaillierError::InvalidCiphertext
        );
        // Exactly n² is also out of range.
        let at_bound = Ciphertext {
            value: pk.n().clone() * pk.n().clone(),
        };
        assert!(sk.decrypt(&at_bound).is_err());
        // The canonical ciphertext still decrypts.
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 77);
    }

    /// Regression test for the fixed-limb rewrite: at 256-bit keys every
    /// Montgomery context sits on the fixed path, and the `>= n²` range
    /// guard (PR 3) must still reject non-canonical ciphertexts there —
    /// with the forced-dynamic twin agreeing on every verdict.
    #[test]
    fn n_squared_guard_holds_on_fixed_limb_path() {
        let sk = test_key();
        let pk = sk.public();
        // 256-bit n → 512-bit n² (8 limbs); 128-bit primes → 4-limb squares.
        assert_eq!(pk.mont_backend(), "fixed:8");
        assert_eq!(sk.crt_backends(), ("fixed:4", "fixed:4"));

        let mut rng = rand::thread_rng();
        let c = pk.encrypt_u64(77, &mut rng).unwrap();
        let shifted = Ciphertext {
            value: c.value().clone() + pk.n().clone() * pk.n().clone(),
        };
        assert_eq!(
            sk.decrypt(&shifted).unwrap_err(),
            PaillierError::InvalidCiphertext
        );

        let dyn_sk = sk.force_dynamic();
        assert_eq!(dyn_sk.public().mont_backend(), "dynamic");
        assert_eq!(dyn_sk.crt_backends(), ("dynamic", "dynamic"));
        assert!(dyn_sk.decrypt(&shifted).is_err());
        // Canonical ciphertexts decrypt identically on both engines.
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 77);
        assert_eq!(dyn_sk.decrypt_u64(&c).unwrap(), 77);
    }

    /// Pooled and inline encryption must produce ciphertexts that decrypt to
    /// the same plaintexts when driven by the same seed (the randomizers come
    /// from the same stream, just computed at different times).
    #[test]
    fn pooled_encryption_decrypts_like_inline_under_same_seed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let sk = keygen(256, &mut StdRng::seed_from_u64(99));
        let pk = sk.public();
        let plaintexts = [0u64, 1, 12345, u32::MAX as u64];

        let mut inline_rng = StdRng::seed_from_u64(7);
        let inline: Vec<_> = plaintexts
            .iter()
            .map(|&m| pk.encrypt_u64(m, &mut inline_rng).unwrap())
            .collect();

        let mut pooled_rng = StdRng::seed_from_u64(7);
        let mut pool = RandomnessPool::new();
        assert_eq!(pool.refill(pk, plaintexts.len(), &mut pooled_rng), 4);
        assert_eq!(pool.len(), 4);
        let pooled: Vec<_> = plaintexts
            .iter()
            .map(|&m| {
                pk.encrypt_pooled(&BigUint::from(m), &mut pool, &mut pooled_rng)
                    .unwrap()
            })
            .collect();
        assert!(pool.is_empty());

        for ((&m, ci), cp) in plaintexts.iter().zip(&inline).zip(&pooled) {
            // Same seed, same randomizer stream: the ciphertexts are even
            // byte-identical, and both decrypt to the plaintext.
            assert_eq!(ci, cp);
            assert_eq!(sk.decrypt_u64(ci).unwrap(), m);
            assert_eq!(sk.decrypt_u64(cp).unwrap(), m);
        }
    }

    #[test]
    fn empty_or_mismatched_pool_falls_back_inline() {
        let sk = test_key();
        let pk = sk.public();
        let other = keygen(256, &mut rand::thread_rng());
        let mut rng = rand::thread_rng();
        let mut pool = RandomnessPool::new();
        // Empty pool: falls back.
        let c = pk
            .encrypt_pooled(&BigUint::from(5u64), &mut pool, &mut rng)
            .unwrap();
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 5);
        // Pool filled for another key: not consumed, still decrypts.
        pool.refill(other.public(), 2, &mut rng);
        let c = pk
            .encrypt_pooled(&BigUint::from(6u64), &mut pool, &mut rng)
            .unwrap();
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 6);
        assert_eq!(pool.len(), 2, "mismatched pool must not be drained");
        // Refilling for this key clears the stale entries first.
        pool.refill(pk, 3, &mut rng);
        assert_eq!(pool.len(), 3);
        let c = pk.encrypt_zero_pooled(&mut pool, &mut rng);
        assert_eq!(pool.len(), 2);
        assert_eq!(sk.decrypt_u64(&c).unwrap(), 0);
    }

    #[test]
    fn pooled_randomizer_out_of_range_plaintext_rejected() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let rn = pk.sample_randomizer(&mut rng);
        assert_eq!(
            pk.encrypt_with_randomizer(&pk.n().clone(), &rn)
                .unwrap_err(),
            PaillierError::PlaintextOutOfRange
        );
    }

    #[test]
    fn rejected_plaintext_does_not_burn_a_pooled_randomizer() {
        let sk = test_key();
        let pk = sk.public();
        let mut rng = rand::thread_rng();
        let mut pool = RandomnessPool::new();
        pool.refill(pk, 1, &mut rng);
        assert_eq!(
            pk.encrypt_pooled(&pk.n().clone(), &mut pool, &mut rng)
                .unwrap_err(),
            PaillierError::PlaintextOutOfRange
        );
        assert_eq!(pool.len(), 1, "the precomputed randomizer must survive");
    }
}
