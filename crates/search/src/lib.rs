//! Client-side keyword search (paper §5, Figure 15).
//!
//! Pretzel's keyword-search module is an existence proof that the provider's
//! servers are not essential for search: the client maintains a local
//! inverted index over its decrypted emails and answers queries from it. The
//! paper implements this over SQLite FTS4; we implement an in-memory inverted
//! index with the same externally visible behaviour — index size, query
//! latency and update latency are what Figure 15 reports.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use pretzel_classifiers::Tokenizer;

/// Identifier assigned to an indexed email.
pub type DocId = u64;

/// A client-side inverted index over email bodies.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SearchIndex {
    /// term → sorted list of document ids containing the term.
    postings: BTreeMap<String, Vec<DocId>>,
    /// document id → number of distinct terms (for stats / deletion support).
    doc_terms: HashMap<DocId, usize>,
    next_id: DocId,
}

/// Summary statistics of an index (the columns of Figure 15).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of indexed documents.
    pub documents: usize,
    /// Number of distinct terms.
    pub terms: usize,
    /// Total postings entries.
    pub postings: usize,
    /// Estimated serialized size in bytes.
    pub size_bytes: usize,
}

impl SearchIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes an email body, returning its document id. This is the
    /// "update time" operation of Figure 15.
    pub fn add_document(&mut self, body: &str) -> DocId {
        let id = self.next_id;
        self.next_id += 1;
        let tokenizer = Tokenizer::new();
        let mut seen: Vec<String> = tokenizer.tokenize(body);
        seen.sort();
        seen.dedup();
        for term in &seen {
            let list = self.postings.entry(term.clone()).or_default();
            // Doc ids are assigned monotonically, so pushing keeps lists sorted.
            list.push(id);
        }
        self.doc_terms.insert(id, seen.len());
        id
    }

    /// Adds a document with an externally chosen id (used when replaying a
    /// mailbox with stable message ids). Panics if the id was already used.
    pub fn add_document_with_id(&mut self, id: DocId, body: &str) {
        assert!(
            !self.doc_terms.contains_key(&id),
            "document id {id} already indexed"
        );
        let tokenizer = Tokenizer::new();
        let mut seen: Vec<String> = tokenizer.tokenize(body);
        seen.sort();
        seen.dedup();
        for term in &seen {
            let list = self.postings.entry(term.clone()).or_default();
            match list.binary_search(&id) {
                Ok(_) => {}
                Err(pos) => list.insert(pos, id),
            }
        }
        self.doc_terms.insert(id, seen.len());
        self.next_id = self.next_id.max(id + 1);
    }

    /// Removes a document from the index.
    pub fn remove_document(&mut self, id: DocId) -> bool {
        if self.doc_terms.remove(&id).is_none() {
            return false;
        }
        for list in self.postings.values_mut() {
            if let Ok(pos) = list.binary_search(&id) {
                list.remove(pos);
            }
        }
        self.postings.retain(|_, list| !list.is_empty());
        true
    }

    /// Single-keyword query: ids of emails containing `keyword` (the
    /// "query time" operation of Figure 15).
    pub fn query(&self, keyword: &str) -> Vec<DocId> {
        self.postings
            .get(&keyword.to_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Conjunctive query: ids of emails containing *all* keywords.
    pub fn query_all(&self, keywords: &[&str]) -> Vec<DocId> {
        if keywords.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<DocId>> = Vec::with_capacity(keywords.len());
        for kw in keywords {
            match self.postings.get(&kw.to_lowercase()) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        // Intersect starting from the shortest list.
        lists.sort_by_key(|l| l.len());
        let mut result = lists[0].clone();
        for list in &lists[1..] {
            result.retain(|id| list.binary_search(id).is_ok());
        }
        result
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_terms.len()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.doc_terms.is_empty()
    }

    /// Index statistics (Figure 15's size column uses `size_bytes`).
    pub fn stats(&self) -> IndexStats {
        let postings: usize = self.postings.values().map(|v| v.len()).sum();
        let term_bytes: usize = self.postings.keys().map(|k| k.len()).sum();
        IndexStats {
            documents: self.doc_terms.len(),
            terms: self.postings.len(),
            postings,
            // 8 bytes per posting + term strings + per-term overhead.
            size_bytes: postings * 8 + term_bytes + self.postings.len() * 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_index() -> SearchIndex {
        let mut idx = SearchIndex::new();
        idx.add_document("quarterly budget review meeting tomorrow");
        idx.add_document("free pills discount offer budget");
        idx.add_document("meeting notes and budget discussion");
        idx
    }

    #[test]
    fn single_keyword_queries() {
        let idx = demo_index();
        assert_eq!(idx.query("budget"), vec![0, 1, 2]);
        assert_eq!(idx.query("meeting"), vec![0, 2]);
        assert_eq!(idx.query("BUDGET"), vec![0, 1, 2], "case-insensitive");
        assert!(idx.query("nonexistent").is_empty());
    }

    #[test]
    fn conjunctive_queries_intersect() {
        let idx = demo_index();
        assert_eq!(idx.query_all(&["budget", "meeting"]), vec![0, 2]);
        assert_eq!(idx.query_all(&["budget", "pills"]), vec![1]);
        assert!(idx.query_all(&["budget", "nonexistent"]).is_empty());
        assert!(idx.query_all(&[]).is_empty());
    }

    #[test]
    fn duplicate_terms_in_a_document_index_once() {
        let mut idx = SearchIndex::new();
        idx.add_document("spam spam spam eggs");
        assert_eq!(idx.query("spam"), vec![0]);
        assert_eq!(idx.stats().postings, 2);
    }

    #[test]
    fn removal_unindexes_the_document() {
        let mut idx = demo_index();
        assert!(idx.remove_document(1));
        assert_eq!(idx.query("pills"), Vec::<DocId>::new());
        assert_eq!(idx.query("budget"), vec![0, 2]);
        assert!(!idx.remove_document(1), "double remove returns false");
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn explicit_ids_are_respected() {
        let mut idx = SearchIndex::new();
        idx.add_document_with_id(42, "hello world");
        idx.add_document_with_id(7, "hello pretzel");
        assert_eq!(idx.query("hello"), vec![7, 42]);
        // Auto ids continue after the largest explicit id.
        let id = idx.add_document("another hello");
        assert_eq!(id, 43);
    }

    #[test]
    #[should_panic]
    fn duplicate_explicit_id_panics() {
        let mut idx = SearchIndex::new();
        idx.add_document_with_id(1, "a b");
        idx.add_document_with_id(1, "c d");
    }

    #[test]
    fn stats_grow_with_content() {
        let mut idx = SearchIndex::new();
        let s0 = idx.stats();
        assert_eq!(s0.documents, 0);
        idx.add_document("alpha beta gamma");
        let s1 = idx.stats();
        assert_eq!(s1.documents, 1);
        assert_eq!(s1.terms, 3);
        assert!(s1.size_bytes > s0.size_bytes);
    }

    #[test]
    fn cloned_index_preserves_queries() {
        let idx = demo_index();
        let copy = idx.clone();
        assert_eq!(copy.query("budget"), idx.query("budget"));
        assert_eq!(copy.stats(), idx.stats());
    }
}
