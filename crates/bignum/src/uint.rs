//! [`BigUint`]: an arbitrary-precision unsigned integer stored as
//! little-endian `u64` limbs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Rem, Shl, Shr, Sub};

use rand::Rng;

/// Arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` never has trailing zero limbs (the canonical
/// representation of zero is an empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from little-endian limbs, trimming trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Converts a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Converts a `u128`.
    pub fn from_u128(v: u128) -> Self {
        Self::from_limbs(vec![v as u64, (v >> 64) as u64])
    }

    /// Returns the value as a `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns the value as a `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Parses a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let chunk_iter = bytes.rchunks(8);
        for chunk in chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to a minimal big-endian byte string (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most-significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to a fixed-width big-endian byte string, left-padded with
    /// zeros. Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix).
    pub fn from_hex(s: &str) -> Result<Self, crate::BignumError> {
        let s = s.trim();
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut idx = 0;
        // Handle odd-length strings by treating the first nibble alone.
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0]).ok_or_else(|| parse_err(s))?);
            idx = 1;
        }
        while idx + 1 < chars.len() + 1 && idx < chars.len() {
            let hi = hex_val(chars[idx]).ok_or_else(|| parse_err(s))?;
            let lo = hex_val(chars[idx + 1]).ok_or_else(|| parse_err(s))?;
            bytes.push((hi << 4) | lo);
            idx += 2;
        }
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Lower-case hexadecimal rendering ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Uniformly random value with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        if bits == 0 {
            return Self::zero();
        }
        let limbs_needed = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs_needed - 1) * 64;
        let top = &mut limbs[limbs_needed - 1];
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1);
        Self::from_limbs(limbs)
    }

    /// Uniformly random value in `[0, bound)`. Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> Self {
        assert!(!bound.is_zero(), "random_below requires a non-zero bound");
        let bits = bound.bits();
        let limbs_needed = bits.div_ceil(64);
        let top_bits = bits - (limbs_needed - 1) * 64;
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        // Rejection sampling: each iteration succeeds with probability > 1/2.
        loop {
            let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
            *limbs.last_mut().unwrap() &= mask;
            let candidate = Self::from_limbs(limbs);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// `self + other`, allocating.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(other);
        out
    }

    fn add_assign_ref(&mut self, other: &BigUint) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let o = *other.limbs.get(i).unwrap_or(&0);
            let (s1, c1) = self.limbs[i].overflowing_add(o);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self - other`; panics if `other > self`.
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let o = *other.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = limb.overflowing_sub(o);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(limbs))
    }

    /// Schoolbook multiplication.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Multiplies by a single `u64` limb.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (m as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        Self::from_limbs(out)
    }

    /// Squares the value (delegates to [`BigUint::mul_ref`]).
    pub fn square(&self) -> BigUint {
        self.mul_ref(self)
    }

    /// Quotient and remainder: `(self / divisor, self % divisor)`.
    ///
    /// Uses single-limb short division when the divisor fits a limb and Knuth
    /// Algorithm D otherwise. Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, Self::from_u64(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Short division by a single limb.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (Self::from_limbs(quotient), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let d = divisor.clone() << shift;
        let mut u = (self.clone() << shift).limbs;
        let n = d.limbs.len();
        let m = u.len() - n;
        u.push(0); // u has m + n + 1 limbs
        let v = &d.limbs;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of the current remainder.
            let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut q_hat = num / v[n - 1] as u128;
            let mut r_hat = num % v[n - 1] as u128;
            while q_hat >> 64 != 0
                || q_hat * v[n - 2] as u128 > ((r_hat << 64) | u[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v[n - 1] as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract: u[j..j+n+1] -= q_hat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;

            q[j] = q_hat as u64;
            if borrow < 0 {
                // q_hat was one too large: add the divisor back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let sum = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }
        let remainder = Self::from_limbs(u[..n].to_vec()) >> shift;
        (Self::from_limbs(q), remainder)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a >> 1;
            b = b >> 1;
            shift += 1;
        }
        while a.is_even() {
            a = a >> 1;
        }
        loop {
            while b.is_even() {
                b = b >> 1;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub_ref(&a);
            if b.is_zero() {
                break;
            }
        }
        a << shift
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let g = self.gcd(other);
        (self.clone() / g) * other.clone()
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

fn parse_err(s: &str) -> crate::BignumError {
    crate::BignumError::Parse(format!("invalid hex string: {s:?}"))
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_ref(&rhs)
    }
}

impl Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self.sub_ref(&rhs)
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.sub_ref(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl std::ops::Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}

impl Rem<&BigUint> for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self;
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        Self::from_limbs(limbs)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self;
        }
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = shift % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        Self::from_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(1u64);
        let sum = a + b;
        assert_eq!(sum.limbs(), &[0, 1]);
        assert_eq!(sum.bits(), 65);
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 1]);
        let b = BigUint::from(1u64);
        assert_eq!(a - b, BigUint::from(u64::MAX));
    }

    #[test]
    fn checked_sub_detects_underflow() {
        let a = BigUint::from(3u64);
        let b = BigUint::from(5u64);
        assert!(a.checked_sub(&b).is_none());
        assert_eq!(b.checked_sub(&a), Some(BigUint::from(2u64)));
    }

    #[test]
    fn mul_known_values() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(u64::MAX);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expected =
            BigUint::from_u128(u128::MAX - 2 * (u64::MAX as u128) - 1 + (u64::MAX as u128));
        // Compute expected directly instead: (2^64-1)^2 = 0xFFFFFFFFFFFFFFFE0000000000000001
        let expected2 = BigUint::from_hex("fffffffffffffffe0000000000000001").unwrap();
        assert_eq!(a.clone() * b, expected2);
        let _ = expected;
    }

    #[test]
    fn div_rem_single_limb() {
        let a = BigUint::from(1_000_000_007u64);
        let (q, r) = a.div_rem(&BigUint::from(13u64));
        assert_eq!(q, BigUint::from(76923077u64));
        assert_eq!(r, BigUint::from(6u64));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = BigUint::from_hex("1fffffffffffffffffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_hex("ffffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.clone() * b.clone() + r.clone(), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_requires_nonzero_divisor() {
        let a = BigUint::from(7u64);
        let result = std::panic::catch_unwind(|| a.div_rem(&BigUint::zero()));
        assert!(result.is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let v = BigUint::from_hex("deadbeef0123456789abcdef").unwrap();
        assert_eq!(v.to_hex(), "deadbeef0123456789abcdef");
        assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
    }

    #[test]
    fn hex_rejects_invalid() {
        assert!(BigUint::from_hex("xyz").is_err());
    }

    #[test]
    fn bytes_be_roundtrip_and_padding() {
        let v = BigUint::from(0x0102030405u64);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3, 4, 5]);
        assert_eq!(v.to_bytes_be_padded(8), vec![0, 0, 0, 1, 2, 3, 4, 5]);
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn shifts_match_mul_div_by_powers_of_two() {
        let v = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        assert_eq!(v.clone() << 3, v.clone() * BigUint::from(8u64));
        assert_eq!(v.clone() >> 5, v.clone() / BigUint::from(32u64));
        assert_eq!(v.clone() >> 1000, BigUint::zero());
    }

    #[test]
    fn bit_access() {
        let v = BigUint::from(0b1010u64);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(200));
    }

    #[test]
    fn gcd_and_lcm() {
        let a = BigUint::from(48u64);
        let b = BigUint::from(36u64);
        assert_eq!(a.gcd(&b), BigUint::from(12u64));
        assert_eq!(a.lcm(&b), BigUint::from(144u64));
        assert_eq!(BigUint::zero().gcd(&b), b);
        assert_eq!(a.gcd(&BigUint::zero()), a);
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = rand::thread_rng();
        let bound = BigUint::from(1000u64);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_sets_top_bit() {
        let mut rng = rand::thread_rng();
        for bits in [1usize, 7, 64, 65, 130] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        let a = BigUint::from_hex("ffffffffffffffff").unwrap();
        let b = BigUint::from_hex("10000000000000000").unwrap();
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn mul_u64_matches_full_mul() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(a.mul_u64(12345), a.clone() * BigUint::from(12345u64));
        assert_eq!(a.mul_u64(0), BigUint::zero());
    }
}
