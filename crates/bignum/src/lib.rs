//! Arbitrary-precision unsigned integer arithmetic for Pretzel's
//! number-theoretic cryptosystems (Paillier, Diffie–Hellman, Schnorr, base OT).
//!
//! The crate provides [`BigUint`], a little-endian `u64`-limb unsigned integer
//! with schoolbook multiplication, Knuth division, Montgomery modular
//! exponentiation, binary extended GCD, Miller–Rabin primality testing and
//! random (safe-)prime generation.
//!
//! Two Montgomery engines share one radix and produce identical results:
//! the `Vec`-backed [`Montgomery`] reference implementation, and the
//! allocation-free fixed-limb engine in [`fixed`] ([`FixedUint`],
//! [`MontgomeryCtx`]) that the hot path selects through [`AutoMontgomery`]
//! when the modulus width is supported. The dynamic path favours clarity
//! and auditability and remains the equivalence oracle for the fixed path's
//! proptests; the paper's Baseline cryptosystem (Paillier) is intentionally
//! the slow comparator in every experiment, so keeping both preserves the
//! measured shape of Figure 6.

pub mod fixed;
mod modular;
mod prime;
mod uint;

pub use fixed::{AutoMontgomery, FixedUint, MontgomeryCtx};
pub use modular::{crt_combine, mod_add, mod_inv, mod_mul, mod_pow, mod_sub, Montgomery};
pub use prime::{gen_prime, gen_safe_prime, is_probable_prime};
pub use uint::BigUint;

/// Errors produced by bignum operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BignumError {
    /// Division (or modular reduction) by zero.
    DivisionByZero,
    /// A modular inverse was requested for a non-invertible element.
    NotInvertible,
    /// A byte/hex string could not be parsed.
    Parse(String),
}

impl std::fmt::Display for BignumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BignumError::DivisionByZero => write!(f, "division by zero"),
            BignumError::NotInvertible => write!(f, "element is not invertible"),
            BignumError::Parse(s) => write!(f, "parse error: {s}"),
        }
    }
}

impl std::error::Error for BignumError {}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn add_commutative(a in arb_biguint(6), b in arb_biguint(6)) {
            prop_assert_eq!(a.clone() + b.clone(), b + a);
        }

        #[test]
        fn add_then_sub_roundtrips(a in arb_biguint(6), b in arb_biguint(6)) {
            let sum = a.clone() + b.clone();
            prop_assert_eq!(sum.clone() - b.clone(), a.clone());
            prop_assert_eq!(sum - a, b);
        }

        #[test]
        fn mul_commutative(a in arb_biguint(5), b in arb_biguint(5)) {
            prop_assert_eq!(a.clone() * b.clone(), b * a);
        }

        #[test]
        fn mul_distributes_over_add(a in arb_biguint(4), b in arb_biguint(4), c in arb_biguint(4)) {
            let lhs = a.clone() * (b.clone() + c.clone());
            let rhs = a.clone() * b + a * c;
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn div_rem_reconstructs(a in arb_biguint(6), b in arb_biguint(3)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(q * b + r, a);
        }

        #[test]
        fn bytes_roundtrip(a in arb_biguint(6)) {
            let bytes = a.to_bytes_be();
            prop_assert_eq!(BigUint::from_bytes_be(&bytes), a);
        }

        #[test]
        fn shift_roundtrip(a in arb_biguint(5), s in 0usize..200) {
            prop_assert_eq!((a.clone() << s) >> s, a);
        }

        #[test]
        fn mod_pow_matches_naive(base in arb_biguint(2), exp in 0u64..40, modulus in arb_biguint(2)) {
            prop_assume!(modulus > BigUint::from(1u64));
            let expected = {
                let mut acc = BigUint::from(1u64) % modulus.clone();
                for _ in 0..exp {
                    acc = (acc * base.clone()) % modulus.clone();
                }
                acc
            };
            let got = mod_pow(&base, &BigUint::from(exp), &modulus);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn mod_inv_is_inverse(a in arb_biguint(3), m in arb_biguint(3)) {
            prop_assume!(m > BigUint::from(1u64));
            if let Ok(inv) = mod_inv(&a, &m) {
                let prod = mod_mul(&a, &inv, &m);
                prop_assert_eq!(prod, BigUint::from(1u64) % m);
            }
        }
    }
}
