//! Modular arithmetic: Montgomery multiplication/exponentiation, modular
//! inverse via the binary extended GCD, and convenience helpers.

use crate::{BigUint, BignumError};

/// `(a + b) mod m`.
pub fn mod_add(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    (a.clone() % m.clone() + b.clone() % m.clone()) % m.clone()
}

/// `(a - b) mod m`.
pub fn mod_sub(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    let a = a.clone() % m.clone();
    let b = b.clone() % m.clone();
    if a >= b {
        a - b
    } else {
        a + m.clone() - b
    }
}

/// `(a * b) mod m`.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    (a.clone() % m.clone()) * (b.clone() % m.clone()) % m.clone()
}

/// `base^exp mod modulus`.
///
/// Dispatches to Montgomery exponentiation for odd moduli (the common case
/// for RSA/Paillier/DH moduli) — through the fixed-limb engine when the
/// modulus width is supported (see [`crate::AutoMontgomery`]) — and to
/// square-and-multiply with explicit reductions otherwise.
pub fn mod_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "mod_pow: zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if modulus.is_odd() {
        return crate::AutoMontgomery::new(modulus).pow(base, exp);
    }
    // Generic square-and-multiply for even moduli (rare in this codebase).
    let mut result = BigUint::one();
    let mut acc = base.clone() % modulus.clone();
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = mod_mul(&result, &acc, modulus);
        }
        acc = mod_mul(&acc, &acc, modulus);
    }
    result
}

/// Modular inverse of `a` modulo `m` using the binary extended GCD
/// (no divisions). Returns [`BignumError::NotInvertible`] when
/// `gcd(a, m) != 1`.
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Result<BigUint, BignumError> {
    if m.is_zero() {
        return Err(BignumError::DivisionByZero);
    }
    if m.is_one() {
        return Ok(BigUint::zero());
    }
    let a = a.clone() % m.clone();
    if a.is_zero() {
        return Err(BignumError::NotInvertible);
    }

    // Signed values are represented as (value, negative?) pairs over BigUint.
    // We run the classic iterative extended Euclid using div_rem; the numbers
    // shrink quickly so the cost is acceptable for setup-time key generation.
    let mut r0 = m.clone();
    let mut r1 = a.clone();
    let mut s0 = (BigUint::zero(), false);
    let mut s1 = (BigUint::one(), false);

    while !r1.is_zero() {
        let (q, r) = r0.div_rem(&r1);
        r0 = r1;
        r1 = r;
        let qs1 = signed_mul(&q, &s1);
        let next = signed_sub(&s0, &qs1);
        s0 = s1;
        s1 = next;
    }
    if !r0.is_one() {
        return Err(BignumError::NotInvertible);
    }
    // s0 now holds the Bezout coefficient of `a`; normalize into [0, m).
    let (mag, neg) = s0;
    let mag = mag % m.clone();
    Ok(if neg && !mag.is_zero() {
        m.clone() - mag
    } else {
        mag
    })
}

fn signed_mul(q: &BigUint, s: &(BigUint, bool)) -> (BigUint, bool) {
    (q.clone() * s.0.clone(), s.1)
}

fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.clone() - b.0.clone(), false)
            } else {
                (b.0.clone() - a.0.clone(), true)
            }
        }
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.clone() - a.0.clone(), false)
            } else {
                (a.0.clone() - b.0.clone(), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.clone() + b.0.clone(), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.clone() + b.0.clone(), true),
    }
}

/// Chinese-remainder recombination for a two-prime modulus (Garner's
/// formula).
///
/// Given residues `a = x mod p` and `b = x mod q` for coprime `p`, `q` and the
/// precomputed inverse `p_inv_q = p⁻¹ mod q`, returns the unique
/// `x ∈ [0, p·q)`. This is the recombination step of CRT-based Paillier/RSA
/// decryption, where the two half-size exponentiations happen mod `p²` and
/// `q²` and only the final answer lives mod `n`.
pub fn crt_combine(
    a: &BigUint,
    b: &BigUint,
    p: &BigUint,
    q: &BigUint,
    p_inv_q: &BigUint,
) -> BigUint {
    // x = a + p * ((b - a) * p^{-1} mod q)
    let t = mod_mul(&mod_sub(b, a, q), p_inv_q, q);
    a.clone() % p.clone() + p.clone() * t
}

/// Montgomery arithmetic context for a fixed odd modulus.
///
/// Montgomery form represents `x` as `x * R mod n` where `R = 2^(64 * limbs)`.
/// Multiplication in Montgomery form avoids per-step long division, which is
/// the difference between milliseconds and seconds for 2048-bit Paillier
/// exponentiations.
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: BigUint,
    /// Number of 64-bit limbs in the modulus; R = 2^(64 * limbs).
    limbs: usize,
    /// -n^{-1} mod 2^64.
    n_prime: u64,
    /// R mod n — the Montgomery form of 1 (exponentiation accumulator seed).
    r1: BigUint,
    /// R^2 mod n, used to convert into Montgomery form.
    r2: BigUint,
}

impl Montgomery {
    /// Creates a context. Panics if `modulus` is even or < 3.
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus.is_odd(), "Montgomery requires an odd modulus");
        assert!(modulus > BigUint::from(2u64), "modulus too small");
        let limbs = modulus.limbs().len();
        let n0 = modulus.limbs()[0];
        let n_prime = inv64(n0).wrapping_neg();
        // R mod n and R² mod n by direct division — setup-time only, and far
        // cheaper than the former 64·limbs doubling loop.
        let r1 = (BigUint::one() << (64 * limbs)) % &modulus;
        let r2 = (BigUint::one() << (128 * limbs)) % &modulus;
        Montgomery {
            n: modulus,
            limbs,
            n_prime,
            r1,
            r2,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Converts `x` into Montgomery form (`x * R mod n`).
    pub fn to_mont(&self, x: &BigUint) -> BigUint {
        if *x < self.n {
            self.mont_mul(x, &self.r2)
        } else {
            self.mont_mul(&x.div_rem(&self.n).1, &self.r2)
        }
    }

    /// Converts a Montgomery-form value back to the ordinary representation.
    pub fn from_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &BigUint::one())
    }

    /// Montgomery product: `a * b * R^{-1} mod n` (CIOS method).
    ///
    /// Operands may be shorter than the modulus (missing high limbs are
    /// zero); the length normalization happens once up front, not per limb
    /// in the inner loop.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let s = self.limbs;
        let n = self.n.limbs();
        let a_limbs = a.limbs();
        let b_limbs = b.limbs();
        let b_len = b_limbs.len().min(s);
        let b_limbs = &b_limbs[..b_len];
        let mut t = vec![0u64; s + 2];

        for i in 0..s {
            // Multiply phase: t += ai * b over b's significant limbs only.
            // Skipped entirely for ai = 0 (including a's implicit zero high
            // limbs); the reduction phase below still runs every iteration
            // because each one divides t by 2^64.
            let ai = a_limbs.get(i).copied().unwrap_or(0);
            if ai != 0 {
                let mut carry = 0u128;
                for (tj, &bj) in t.iter_mut().zip(b_limbs.iter()) {
                    let cur = *tj as u128 + (ai as u128) * (bj as u128) + carry;
                    *tj = cur as u64;
                    carry = cur >> 64;
                }
                let mut j = b_len;
                while carry != 0 {
                    let cur = t[j] as u128 + carry;
                    t[j] = cur as u64;
                    carry = cur >> 64;
                    j += 1;
                }
            }

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let cur = t[0] as u128 + (m as u128) * (n[0] as u128);
            let mut carry = cur >> 64;
            for j in 1..s {
                let cur = t[j] as u128 + (m as u128) * (n[j] as u128) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s - 1] = cur as u64;
            carry = cur >> 64;
            let cur = t[s + 1] as u128 + carry;
            t[s] = cur as u64;
            t[s + 1] = (cur >> 64) as u64;
        }
        debug_assert_eq!(t[s + 1], 0);
        let mut result = BigUint::from_limbs(t[..=s].to_vec());
        if result >= self.n {
            result = result - self.n.clone();
        }
        result
    }

    /// `base^exp mod n` with left-to-right square-and-multiply in Montgomery
    /// form.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            // n > 2 is a construction invariant, so 1 mod n = 1.
            return BigUint::one();
        }
        let base_m = self.to_mont(base);
        let mut acc = self.r1.clone();
        for i in (0..exp.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }

    /// Modular multiplication `a * b mod n` through Montgomery form.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }
}

/// Inverse of an odd `u64` modulo 2^64 (Newton iteration).
pub(crate) fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn inv64_small_values() {
        for x in [1u64, 3, 5, 7, 0xdeadbeefu64 | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv64(x)), 1);
        }
    }

    #[test]
    fn mod_add_sub_mul_small() {
        let m = big(97);
        assert_eq!(mod_add(&big(90), &big(20), &m), big(13));
        assert_eq!(mod_sub(&big(5), &big(20), &m), big(82));
        assert_eq!(mod_mul(&big(90), &big(90), &m), big(8100 % 97));
    }

    #[test]
    fn mod_pow_small_odd_modulus() {
        // 5^117 mod 19 = 1 (Fermat: 5^18 = 1, 117 = 6*18 + 9; 5^9 mod 19)
        let expected = {
            let mut acc = 1u64;
            for _ in 0..117 {
                acc = acc * 5 % 19;
            }
            acc
        };
        assert_eq!(mod_pow(&big(5), &big(117), &big(19)), big(expected));
    }

    #[test]
    fn mod_pow_even_modulus() {
        let expected = {
            let mut acc = 1u64;
            for _ in 0..77 {
                acc = acc * 7 % 100;
            }
            acc
        };
        assert_eq!(mod_pow(&big(7), &big(77), &big(100)), big(expected));
    }

    #[test]
    fn mod_pow_zero_exponent_is_one() {
        assert_eq!(mod_pow(&big(123), &BigUint::zero(), &big(97)), big(1));
        assert_eq!(
            mod_pow(&big(123), &BigUint::zero(), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn mod_pow_fermat_little_theorem_large() {
        // p is a 128-bit prime; a^(p-1) mod p == 1.
        let p = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef").unwrap();
        let exp = p.clone() - BigUint::one();
        assert_eq!(mod_pow(&a, &exp, &p), BigUint::one());
    }

    #[test]
    fn montgomery_roundtrip() {
        let m = Montgomery::new(BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap());
        let x = BigUint::from_hex("abcdef0123456789").unwrap();
        assert_eq!(m.from_mont(&m.to_mont(&x)), x);
    }

    #[test]
    fn montgomery_mul_matches_naive() {
        let modulus = BigUint::from_hex("f123456789abcdef1").unwrap();
        let m = Montgomery::new(modulus.clone());
        let a = BigUint::from_hex("deadbeefcafebabe12").unwrap();
        let b = BigUint::from_hex("9876543210fedcba98").unwrap();
        assert_eq!(m.mul(&a, &b), mod_mul(&a, &b, &modulus));
    }

    #[test]
    fn mod_inv_small() {
        // 3 * 6 = 18 = 1 mod 17
        assert_eq!(mod_inv(&big(3), &big(17)).unwrap(), big(6));
        assert_eq!(mod_inv(&big(10), &big(17)).unwrap(), big(12));
    }

    #[test]
    fn mod_inv_not_invertible() {
        assert_eq!(mod_inv(&big(6), &big(9)), Err(BignumError::NotInvertible));
        assert_eq!(
            mod_inv(&BigUint::zero(), &big(9)),
            Err(BignumError::NotInvertible)
        );
    }

    #[test]
    fn mod_inv_large_prime() {
        let p = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let a = BigUint::from_hex("deadbeefdeadbeefdeadbeef").unwrap();
        let inv = mod_inv(&a, &p).unwrap();
        assert_eq!(mod_mul(&a, &inv, &p), BigUint::one());
    }

    #[test]
    fn mod_inv_modulus_one() {
        assert_eq!(mod_inv(&big(5), &BigUint::one()).unwrap(), BigUint::zero());
    }

    #[test]
    fn crt_combine_small() {
        // x = 29, p = 7, q = 11: a = 1, b = 7.
        let p = big(7);
        let q = big(11);
        let p_inv_q = mod_inv(&p, &q).unwrap();
        let x = crt_combine(&big(1), &big(7), &p, &q, &p_inv_q);
        assert_eq!(x, big(29));
    }

    #[test]
    fn crt_combine_roundtrips_random_residues() {
        let p = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let q = BigUint::from_hex("f123456789abcdef1").unwrap();
        let p_inv_q = mod_inv(&(p.clone() % q.clone()), &q).unwrap();
        let x = BigUint::from_hex("deadbeefcafebabe0123456789abcdef0011223344").unwrap();
        let a = x.clone() % p.clone();
        let b = x.clone() % q.clone();
        assert_eq!(crt_combine(&a, &b, &p, &q, &p_inv_q), x);
    }
}
