//! Probabilistic primality testing and random prime generation.

use rand::Rng;

use crate::{mod_pow, BigUint};

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// The error probability is at most 4^(-rounds) for composite inputs; 25
/// rounds (the default used by the generators below) is the conventional
/// choice for cryptographic key generation.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n < &BigUint::from(2u64) {
        return false;
    }
    for &p in SMALL_PRIMES {
        let p_big = BigUint::from(p);
        if n == &p_big {
            return true;
        }
        if (n.clone() % p_big).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.clone() - BigUint::one();
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d >> 1;
        s += 1;
    }

    let two = BigUint::from(2u64);
    let n_minus_3 = n.clone() - BigUint::from(3u64);
    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let a = BigUint::random_below(rng, &n_minus_3) + two.clone();
        let mut x = mod_pow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = mod_pow(&x, &two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        // Force odd (except for the 2-bit case where 2 or 3 are both fine).
        if candidate.is_even() {
            candidate = candidate + BigUint::one();
            if candidate.bits() != bits {
                continue;
            }
        }
        if is_probable_prime(&candidate, 25, rng) {
            return candidate;
        }
    }
}

/// Generates a safe prime `p = 2q + 1` (with `q` also prime) of `bits` bits.
///
/// Safe primes give prime-order subgroups for Diffie–Hellman, Schnorr
/// signatures and the base oblivious transfer.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "a safe prime needs at least 3 bits");
    loop {
        let q = gen_prime(bits - 1, rng);
        let p = (q.clone() << 1) + BigUint::one();
        if p.bits() == bits && is_probable_prime(&p, 25, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let mut rng = rand::thread_rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 65537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from(p), 25, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = rand::thread_rng();
        for c in [0u64, 1, 4, 6, 9, 15, 91, 561, 1105, 65535, 1_000_000_000] {
            assert!(
                !is_probable_prime(&BigUint::from(c), 25, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        let mut rng = rand::thread_rng();
        for c in [561u64, 41041, 825265, 321197185] {
            assert!(!is_probable_prime(&BigUint::from(c), 25, &mut rng));
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = rand::thread_rng();
        let p = (BigUint::one() << 127) - BigUint::one();
        assert!(is_probable_prime(&p, 15, &mut rng));
        // 2^128 - 1 is composite.
        let c = (BigUint::one() << 128) - BigUint::one();
        assert!(!is_probable_prime(&c, 15, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_size_and_is_odd() {
        let mut rng = rand::thread_rng();
        for bits in [32usize, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd() || p == BigUint::from(2u64));
            assert!(is_probable_prime(&p, 25, &mut rng));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut rng = rand::thread_rng();
        let p = gen_safe_prime(64, &mut rng);
        assert_eq!(p.bits(), 64);
        let q = (p.clone() - BigUint::one()) >> 1;
        assert!(is_probable_prime(&q, 25, &mut rng));
        assert!(is_probable_prime(&p, 25, &mut rng));
    }
}
