//! Fixed-width limb arithmetic: the allocation-free engine behind the
//! crypto hot path.
//!
//! [`BigUint`] stores its limbs in a `Vec<u64>`, so every Montgomery
//! multiplication on the dynamic path allocates a temporary, branches on
//! limb length and trims trailing zeros. For the moduli that actually occur
//! in the served pipeline — Paillier `n²`, the CRT squares `p²`/`q²`, the
//! DH/OT safe primes — the limb count is fixed the moment the key is
//! generated. This module exploits that: [`FixedUint<N>`] is a `[u64; N]`
//! value type with carry-chain (`adc`/`sbb`) addition and subtraction, and
//! [`MontgomeryCtx<N>`] runs CIOS Montgomery multiplication entirely on the
//! stack with per-width monomorphized loops — no heap allocation, no
//! per-limb bounds checks, no length branches in the inner loop.
//!
//! [`AutoMontgomery`] is the deployment wrapper: it inspects the modulus
//! width at setup, selects the matching fixed engine from a macro-generated
//! family of widths, and falls back to the dynamic [`Montgomery`] for
//! unsupported (odd-ball) limb counts. Both engines use the same Montgomery
//! radix `R = 2^(64·limbs)`, so their intermediate *and* final values are
//! byte-identical — a property the equivalence proptests in
//! `tests/fixed_vs_dynamic.rs` pin across all supported widths.
//!
//! # Constant-time notes
//!
//! The fixed-path multiply and reduction are branch-free: the CIOS loop has
//! no data-dependent branches, and the final reduction always computes
//! `t - n` and picks the result by mask (always-subtract conditional
//! select) instead of comparing first. Exponentiation still branches on
//! exponent bits (square-and-multiply), so exponent-dependent timing
//! remains; see `docs/ARCHITECTURE.md` for the current status.

use std::cmp::Ordering;

use crate::{BigUint, Montgomery};

/// `a + b + carry`, returning `(sum, carry_out)` with `carry_out ∈ {0, 1}`.
#[inline(always)]
const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a - b - borrow`, returning `(diff, borrow_out)` with
/// `borrow_out ∈ {0, 1}`.
#[inline(always)]
const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `a + b·c + carry`, returning `(low, high)`. The sum cannot overflow:
/// `(2⁶⁴−1) + (2⁶⁴−1)² + (2⁶⁴−1) = 2¹²⁸ − 1`.
#[inline(always)]
const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// A fixed-width unsigned integer over exactly `N` little-endian `u64`
/// limbs (`N ≥ 1`).
///
/// Unlike [`BigUint`] there is no canonical-trim invariant: high limbs may
/// be zero. Values are plain `Copy` stack data, so arithmetic never touches
/// the heap.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FixedUint<const N: usize> {
    limbs: [u64; N],
}

impl<const N: usize> FixedUint<N> {
    /// Number of limbs (the `N` parameter, exposed for generic code).
    pub const LIMBS: usize = N;

    /// The value zero.
    pub const fn zero() -> Self {
        FixedUint { limbs: [0; N] }
    }

    /// The value one.
    pub fn one() -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = 1;
        FixedUint { limbs }
    }

    /// Wraps raw little-endian limbs.
    pub const fn from_limbs(limbs: [u64; N]) -> Self {
        FixedUint { limbs }
    }

    /// Read-only view of the limbs.
    pub const fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Converts from a [`BigUint`], or `None` if the value needs more than
    /// `N` limbs.
    pub fn from_biguint(x: &BigUint) -> Option<Self> {
        let src = x.limbs();
        if src.len() > N {
            return None;
        }
        let mut limbs = [0u64; N];
        limbs[..src.len()].copy_from_slice(src);
        Some(FixedUint { limbs })
    }

    /// Converts to a (trimmed, canonical) [`BigUint`].
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_limbs(self.limbs.to_vec())
    }

    /// True if every limb is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// In-place carry-chain addition; returns the carry out of the top limb.
    #[inline]
    pub fn adc_assign(&mut self, other: &Self) -> u64 {
        let mut carry = 0u64;
        for (s, &o) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            let (sum, c) = adc(*s, o, carry);
            *s = sum;
            carry = c;
        }
        carry
    }

    /// In-place borrow-chain subtraction; returns the borrow out of the top
    /// limb (1 when `other > self`, in which case the limbs hold the
    /// wrapped difference mod `2^(64N)`).
    #[inline]
    pub fn sbb_assign(&mut self, other: &Self) -> u64 {
        let mut borrow = 0u64;
        for (s, &o) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            let (diff, b) = sbb(*s, o, borrow);
            *s = diff;
            borrow = b;
        }
        borrow
    }

    /// `self + other` with the carry out of the top limb.
    pub fn add_carry(&self, other: &Self) -> (Self, u64) {
        let mut out = *self;
        let carry = out.adc_assign(other);
        (out, carry)
    }

    /// `self - other` with the borrow out of the top limb.
    pub fn sub_borrow(&self, other: &Self) -> (Self, u64) {
        let mut out = *self;
        let borrow = out.sbb_assign(other);
        (out, borrow)
    }

    /// Full schoolbook product, returned as `(low N limbs, high N limbs)`.
    pub fn widening_mul(&self, other: &Self) -> (Self, Self) {
        let mut out = [0u64; N];
        let mut hi = [0u64; N];
        for i in 0..N {
            let ai = self.limbs[i];
            let mut carry = 0u64;
            for j in 0..N {
                let k = i + j;
                let dst = if k < N { &mut out[k] } else { &mut hi[k - N] };
                let (lo_word, c) = mac(*dst, ai, other.limbs[j], carry);
                *dst = lo_word;
                carry = c;
            }
            // Propagate the tail carry; positions above i + N may already be
            // populated by earlier rounds.
            let mut k = i + N;
            while carry != 0 && k < 2 * N {
                let dst = if k < N { &mut out[k] } else { &mut hi[k - N] };
                let (sum, c) = adc(*dst, carry, 0);
                *dst = sum;
                carry = c;
                k += 1;
            }
        }
        (FixedUint { limbs: out }, FixedUint { limbs: hi })
    }
}

impl<const N: usize> Default for FixedUint<N> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const N: usize> PartialOrd for FixedUint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for FixedUint<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..N).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

/// Montgomery context over a fixed `N`-limb odd modulus.
///
/// The radix is `R = 2^(64·N)` — the same radix the dynamic [`Montgomery`]
/// uses for a modulus of `N` significant limbs, so the two engines produce
/// identical Montgomery-form values. All hot-path state (`n`, `n0_inv`,
/// `R mod n`, `R² mod n`) is precomputed at construction; the only
/// allocations afterwards are the final `BigUint` results of the
/// `BigUint`-facing wrappers.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx<const N: usize> {
    /// The modulus as fixed limbs.
    n: FixedUint<N>,
    /// The modulus as a `BigUint`, for reduction of oversized inputs.
    n_big: BigUint,
    /// `-n⁻¹ mod 2⁶⁴` (the CIOS `n0_inv`).
    n0_inv: u64,
    /// `R mod n` — the Montgomery form of 1.
    r1: FixedUint<N>,
    /// `R² mod n` — multiplier for conversion into Montgomery form.
    r2: FixedUint<N>,
}

impl<const N: usize> MontgomeryCtx<N> {
    /// Builds a context, or `None` when the modulus does not have exactly
    /// `N` significant limbs, is even, or is < 3.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.limbs().len() != N || !modulus.is_odd() || *modulus <= BigUint::from(2u64) {
            return None;
        }
        let n = FixedUint::from_biguint(modulus)?;
        let n0_inv = crate::modular::inv64(modulus.limbs()[0]).wrapping_neg();
        let r1 = FixedUint::from_biguint(&((BigUint::one() << (64 * N)) % modulus))?;
        let r2 = FixedUint::from_biguint(&((BigUint::one() << (128 * N)) % modulus))?;
        Some(MontgomeryCtx {
            n,
            n_big: modulus.clone(),
            n0_inv,
            r1,
            r2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n_big
    }

    /// The limb width `N`.
    pub const fn width(&self) -> usize {
        N
    }

    /// Montgomery product `a · b · R⁻¹ mod n` (CIOS), entirely on the
    /// stack. Operands must be `< n`.
    ///
    /// Branch-free: the loop structure depends only on `N`, and the final
    /// reduction always computes `t - n` and selects by mask.
    #[inline]
    pub fn mont_mul(&self, a: &FixedUint<N>, b: &FixedUint<N>) -> FixedUint<N> {
        let n = &self.n.limbs;
        let mut t = [0u64; N];
        // The CIOS accumulator needs two limbs above t[N-1]: t_hi, plus the
        // per-iteration bit t_top ∈ {0, 1}.
        let mut t_hi = 0u64;

        for i in 0..N {
            let ai = a.limbs[i];
            // t += ai * b
            let mut carry = 0u64;
            for (tj, &bj) in t.iter_mut().zip(&b.limbs) {
                let (lo, c) = mac(*tj, ai, bj, carry);
                *tj = lo;
                carry = c;
            }
            let (sum, t_top) = adc(t_hi, carry, 0);
            t_hi = sum;

            // m = t[0]·n' mod 2⁶⁴; t = (t + m·n) / 2⁶⁴
            let m = t[0].wrapping_mul(self.n0_inv);
            let (_, mut carry) = mac(t[0], m, n[0], 0);
            for j in 1..N {
                let (lo, c) = mac(t[j], m, n[j], carry);
                t[j - 1] = lo;
                carry = c;
            }
            let (sum, c) = adc(t_hi, carry, 0);
            t[N - 1] = sum;
            t_hi = t_top + c;
        }
        debug_assert!(t_hi <= 1, "CIOS accumulator exceeded N+1 limbs");
        self.reduce_once(&t, t_hi)
    }

    /// Folds a value `t + t_hi·R < 2n` into `[0, n)`: always computes
    /// `t - n` and selects the result by mask. The subtraction result is
    /// correct iff `t_hi` is set (the borrow cancels the R bit) or the
    /// subtraction did not borrow.
    #[inline]
    fn reduce_once(&self, t: &[u64; N], t_hi: u64) -> FixedUint<N> {
        let n = &self.n.limbs;
        let mut sub = [0u64; N];
        let mut borrow = 0u64;
        for j in 0..N {
            let (d, b) = sbb(t[j], n[j], borrow);
            sub[j] = d;
            borrow = b;
        }
        let select_sub = t_hi | (borrow ^ 1);
        let mask = 0u64.wrapping_sub(select_sub);
        let mut out = [0u64; N];
        for j in 0..N {
            out[j] = (sub[j] & mask) | (t[j] & !mask);
        }
        FixedUint { limbs: out }
    }

    /// Montgomery square `a² · R⁻¹ mod n`, for `a < n`.
    ///
    /// Fused CIOS squaring: round `i` adds the diagonal `a_i²` plus the
    /// doubled cross products `a_i · 2a_j` (j > i) — N(N+1)/2 limb products
    /// instead of the N² a general multiply pays — then runs the ordinary
    /// CIOS reduction step, all in one pass over the accumulator. The
    /// doubled rows let the accumulator reach `3n` (instead of `2n` for
    /// the multiply), so the final fold does two masked subtractions.
    /// Below 8 limbs the triangle bookkeeping costs more than the saved
    /// products, so small widths delegate to [`MontgomeryCtx::mont_mul`].
    #[inline]
    pub fn mont_sq(&self, a: &FixedUint<N>) -> FixedUint<N> {
        if N < 8 {
            return self.mont_mul(a, a);
        }
        let n = &self.n.limbs;
        // a2 = 2a, with the shifted-out top bit kept as a mask.
        let mut a2 = [0u64; N];
        let mut top = 0u64;
        for (a2j, &aj) in a2.iter_mut().zip(&a.limbs) {
            *a2j = (aj << 1) | top;
            top = aj >> 63;
        }
        let a2_top_mask = 0u64.wrapping_sub(top);

        let mut t = [0u64; N];
        let mut t_hi = 0u64;
        let mut t_hi2 = 0u64;
        for i in 0..N {
            let ai = a.limbs[i];
            // Triangle multiply: diagonal at window position i, doubled
            // cross products at i+1..N-1, the top bit's term at N.
            let p = (ai as u128) * (ai as u128);
            let (v, c) = adc(t[i], p as u64, 0);
            t[i] = v;
            // p_hi ≤ 2⁶⁴ − 2, so this cannot overflow.
            let mut carry = (p >> 64) as u64 + c;
            let mut extra = 0u64;
            if i + 1 < N {
                // a2[i+1]'s low bit is carried in from a[i], which is not
                // part of the j > i cross set — mask it off.
                let (v, c) = mac(t[i + 1], ai, a2[i + 1] & !1u64, carry);
                t[i + 1] = v;
                carry = c;
                for j in (i + 2)..N {
                    let (v, c) = mac(t[j], ai, a2[j], carry);
                    t[j] = v;
                    carry = c;
                }
                extra = a2_top_mask & ai;
            }
            let s = t_hi as u128 + carry as u128 + extra as u128;
            t_hi = s as u64;
            t_hi2 += (s >> 64) as u64;

            // Reduction round, as in mont_mul.
            let m = t[0].wrapping_mul(self.n0_inv);
            let (_, mut carry) = mac(t[0], m, n[0], 0);
            for j in 1..N {
                let (v, c) = mac(t[j], m, n[j], carry);
                t[j - 1] = v;
                carry = c;
            }
            let (v, c) = adc(t_hi, carry, 0);
            t[N - 1] = v;
            t_hi = t_hi2 + c;
            t_hi2 = 0;
        }
        debug_assert!(t_hi <= 2, "fused squaring accumulator exceeded 3n");

        // T < 3n: first masked subtract brings it under 2n, then the
        // shared single-subtract fold finishes.
        let mut sub = [0u64; N];
        let mut borrow = 0u64;
        for j in 0..N {
            let (d, b) = sbb(t[j], n[j], borrow);
            sub[j] = d;
            borrow = b;
        }
        let sel = ((t_hi != 0) as u64) | (borrow ^ 1);
        let mask = 0u64.wrapping_sub(sel);
        for j in 0..N {
            t[j] = (sub[j] & mask) | (t[j] & !mask);
        }
        t_hi = t_hi.wrapping_sub(borrow & sel);
        self.reduce_once(&t, t_hi)
    }

    /// Converts `x < n` into Montgomery form (`x · R mod n`).
    pub fn to_mont(&self, x: &FixedUint<N>) -> FixedUint<N> {
        self.mont_mul(x, &self.r2)
    }

    /// Converts a Montgomery-form value back to the ordinary domain.
    pub fn from_mont(&self, x: &FixedUint<N>) -> FixedUint<N> {
        self.mont_mul(x, &FixedUint::one())
    }

    /// Reduces an arbitrary [`BigUint`] into `[0, n)` as fixed limbs. Only
    /// divides when the input is actually out of range.
    pub fn reduce(&self, x: &BigUint) -> FixedUint<N> {
        if *x < self.n_big {
            FixedUint::from_biguint(x).expect("x < n fits in N limbs")
        } else {
            FixedUint::from_biguint(&x.div_rem(&self.n_big).1).expect("remainder fits in N limbs")
        }
    }

    /// `base^exp mod n` over fixed limbs (`base` must be `< n`).
    ///
    /// Left-to-right exponentiation in Montgomery form with a 4-bit window
    /// for crypto-sized exponents (a 16-entry stack table, four
    /// [`MontgomeryCtx::mont_sq`] calls plus at most one
    /// [`MontgomeryCtx::mont_mul`] per window) and plain square-and-multiply
    /// below the size where the table pays for itself. No heap allocation
    /// in either ladder.
    pub fn pow_fixed(&self, base: &FixedUint<N>, exp: &BigUint) -> FixedUint<N> {
        if exp.is_zero() {
            // n > 2, so 1 mod n = 1.
            return FixedUint::one();
        }
        let base_m = self.to_mont(base);
        let bits = exp.bits();
        if bits < 64 {
            let mut acc = self.r1;
            for i in (0..bits).rev() {
                acc = self.mont_sq(&acc);
                if exp.bit(i) {
                    acc = self.mont_mul(&acc, &base_m);
                }
            }
            return self.from_mont(&acc);
        }

        // 4-bit window: table[k] = base^k in Montgomery form. 64 is a
        // multiple of the window width, so a window never straddles a limb.
        let mut table = [self.r1; 16];
        for k in 1..16 {
            table[k] = self.mont_mul(&table[k - 1], &base_m);
        }
        let limbs = exp.limbs();
        let windows = bits.div_ceil(4);
        // The top window is non-zero because `bits` is exact, so the
        // accumulator starts from the table instead of squaring R mod n.
        let top = (windows - 1) * 4;
        let mut acc = table[((limbs[top / 64] >> (top % 64)) & 0xF) as usize];
        for w in (0..windows - 1).rev() {
            acc = self.mont_sq(&acc);
            acc = self.mont_sq(&acc);
            acc = self.mont_sq(&acc);
            acc = self.mont_sq(&acc);
            let chunk = ((limbs[w * 4 / 64] >> (w * 4 % 64)) & 0xF) as usize;
            if chunk != 0 {
                acc = self.mont_mul(&acc, &table[chunk]);
            }
        }
        self.from_mont(&acc)
    }

    /// `base^exp mod n` with [`BigUint`] endpoints (reduces the base
    /// first), mirroring [`Montgomery::pow`].
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.pow_fixed(&self.reduce(base), exp).to_biguint()
    }

    /// `a · b mod n` through Montgomery form, mirroring [`Montgomery::mul`].
    ///
    /// Two Montgomery products instead of the reference path's four: the
    /// first lifts `a` to `a·R`, the second folds in `b` and removes the
    /// `R` factor in the same step — `(a·R)·b·R⁻¹ = a·b mod n`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let a_r = self.mont_mul(&self.reduce(a), &self.r2);
        self.mont_mul(&a_r, &self.reduce(b)).to_biguint()
    }
}

macro_rules! auto_montgomery {
    ($(($variant:ident, $n:literal)),+ $(,)?) => {
        /// Montgomery context that picks a fixed-limb engine by modulus
        /// width at setup, falling back to the dynamic [`Montgomery`].
        ///
        /// This is the type the crypto hot path holds: Paillier `mont_n2`
        /// and the CRT `p²`/`q²` contexts, the DH/OT groups, and
        /// [`crate::mod_pow`] all build one of these from the modulus at
        /// setup. Key sizes whose moduli hit a supported width (every
        /// power-of-two Paillier size and the standard DH groups) run the
        /// allocation-free fixed path; anything else transparently uses the
        /// `Vec`-backed reference implementation with identical results.
        /// The contexts are boxed so the enum stays pointer-sized no
        /// matter the width (a `MontgomeryCtx<64>` is ~1.5 KiB inline) —
        /// keys embedding this stay cheap to move and clone, and the hot
        /// path only pays one deref per public operation, not per limb.
        #[derive(Clone, Debug)]
        pub enum AutoMontgomery {
            $(
                #[doc = concat!("Fixed ", stringify!($n), "-limb engine (",
                                stringify!($n), " × 64-bit moduli).")]
                $variant(Box<MontgomeryCtx<$n>>),
            )+
            /// Dynamic-width fallback for unsupported limb counts.
            Dynamic(Montgomery),
        }

        impl AutoMontgomery {
            /// Builds a context for an odd modulus ≥ 3, selecting the limb
            /// width from the modulus size. Panics (like
            /// [`Montgomery::new`]) if the modulus is even or < 3.
            pub fn new(modulus: &BigUint) -> Self {
                match modulus.limbs().len() {
                    $(
                        $n => match MontgomeryCtx::<$n>::new(modulus) {
                            Some(ctx) => AutoMontgomery::$variant(Box::new(ctx)),
                            None => AutoMontgomery::Dynamic(Montgomery::new(modulus.clone())),
                        },
                    )+
                    _ => AutoMontgomery::Dynamic(Montgomery::new(modulus.clone())),
                }
            }

            /// The modulus this context reduces by.
            pub fn modulus(&self) -> &BigUint {
                match self {
                    $(AutoMontgomery::$variant(ctx) => ctx.modulus(),)+
                    AutoMontgomery::Dynamic(m) => m.modulus(),
                }
            }

            /// `base^exp mod n`.
            pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
                match self {
                    $(AutoMontgomery::$variant(ctx) => ctx.pow(base, exp),)+
                    AutoMontgomery::Dynamic(m) => m.pow(base, exp),
                }
            }

            /// `a · b mod n` through Montgomery form.
            pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
                match self {
                    $(AutoMontgomery::$variant(ctx) => ctx.mul(a, b),)+
                    AutoMontgomery::Dynamic(m) => m.mul(a, b),
                }
            }

            /// The fixed limb width, or `None` on the dynamic fallback.
            pub fn width(&self) -> Option<usize> {
                match self {
                    $(AutoMontgomery::$variant(_) => Some($n),)+
                    AutoMontgomery::Dynamic(_) => None,
                }
            }

            /// Engine label for logs, benches and inspection tests:
            /// `"fixed:<limbs>"` or `"dynamic"`.
            pub fn backend(&self) -> &'static str {
                match self {
                    $(AutoMontgomery::$variant(_) =>
                        concat!("fixed:", stringify!($n)),)+
                    AutoMontgomery::Dynamic(_) => "dynamic",
                }
            }

            /// A context for the same modulus forced onto the dynamic
            /// reference path — the A/B comparator used by
            /// `bench_bignum` and the equivalence tests.
            pub fn to_dynamic(&self) -> AutoMontgomery {
                AutoMontgomery::Dynamic(Montgomery::new(self.modulus().clone()))
            }
        }
    };
}

// The width family. Paillier keys of 128·2^k bits produce n² at 4·2^k limbs
// and p²/q² at 2·2^k limbs; 192/384/768-bit keys hit the ×3 widths; 24 limbs
// is the RFC 3526 1536-bit DH/OT group. Unlisted widths (e.g. a 320-bit
// modulus at 5 limbs) take the dynamic fallback.
auto_montgomery!(
    (W2, 2),
    (W3, 3),
    (W4, 4),
    (W6, 6),
    (W8, 8),
    (W12, 12),
    (W16, 16),
    (W24, 24),
    (W32, 32),
    (W64, 64),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn fixed_uint_conversion_roundtrip() {
        let x = big("deadbeefcafebabe0123456789abcdef");
        let f = FixedUint::<2>::from_biguint(&x).unwrap();
        assert_eq!(f.to_biguint(), x);
        // Too wide for one limb.
        assert!(FixedUint::<1>::from_biguint(&x).is_none());
        // Zero-padding of high limbs.
        let one = FixedUint::<4>::from_biguint(&BigUint::one()).unwrap();
        assert_eq!(one, FixedUint::<4>::one());
        assert_eq!(FixedUint::<4>::zero().to_biguint(), BigUint::zero());
    }

    #[test]
    fn add_sub_carry_chains() {
        let max = FixedUint::<2>::from_limbs([u64::MAX, u64::MAX]);
        let one = FixedUint::<2>::one();
        let (sum, carry) = max.add_carry(&one);
        assert_eq!(sum, FixedUint::zero());
        assert_eq!(carry, 1);
        let (diff, borrow) = FixedUint::<2>::zero().sub_borrow(&one);
        assert_eq!(diff, max);
        assert_eq!(borrow, 1);
        let (back, borrow) = sum.sub_borrow(&one);
        assert_eq!(borrow, 1, "wraps back below zero");
        assert_eq!(back, max);
    }

    #[test]
    fn widening_mul_matches_biguint() {
        let a = big("ffffffffffffffffffffffffffffffff");
        let b = big("fedcba9876543210fedcba9876543210");
        let fa = FixedUint::<2>::from_biguint(&a).unwrap();
        let fb = FixedUint::<2>::from_biguint(&b).unwrap();
        let (lo, hi) = fa.widening_mul(&fb);
        let full = hi.to_biguint() << 128;
        assert_eq!(full + lo.to_biguint(), a * b);
    }

    #[test]
    fn auto_montgomery_selects_fixed_width() {
        // 2-limb odd modulus.
        let m = big("f0000000000000000000000000000001");
        let auto = AutoMontgomery::new(&m);
        assert_eq!(auto.backend(), "fixed:2");
        assert_eq!(auto.width(), Some(2));
        // 5 limbs is not in the family → dynamic fallback.
        let odd_width = (BigUint::one() << 300) + BigUint::from(7u64);
        let auto = AutoMontgomery::new(&odd_width);
        assert_eq!(auto.backend(), "dynamic");
        assert_eq!(auto.width(), None);
        assert_eq!(auto.to_dynamic().backend(), "dynamic");
    }

    #[test]
    fn fixed_pow_and_mul_match_dynamic() {
        let m = big("f123456789abcdef1123456789abcdef1");
        let auto = AutoMontgomery::new(&m);
        assert_eq!(auto.backend(), "fixed:3");
        let dynamic = Montgomery::new(m.clone());
        let a = big("deadbeefcafebabe12345678901234567");
        let b = big("98765432100123456789abcdeffedcba9");
        let e = big("1fffffffffffffffffffffffffffffff3");
        assert_eq!(auto.mul(&a, &b), dynamic.mul(&a, &b));
        assert_eq!(auto.pow(&a, &e), dynamic.pow(&a, &e));
        // Oversized base is reduced first, like the dynamic path.
        let oversized = a.clone() + m.clone() + m.clone();
        assert_eq!(auto.pow(&oversized, &e), dynamic.pow(&oversized, &e));
        assert_eq!(auto.pow(&a, &BigUint::zero()), BigUint::one());
    }

    #[test]
    fn mont_sq_matches_mont_mul() {
        // Width 3 delegates to mont_mul; width 8 runs the fused triangle
        // squaring. Both must agree with the general product.
        let m3 = big("f123456789abcdef1123456789abcdef1");
        let ctx = MontgomeryCtx::<3>::new(&m3).unwrap();
        let mut x = ctx.reduce(&big("deadbeefcafebabe12345678901234567"));
        for _ in 0..50 {
            assert_eq!(ctx.mont_sq(&x), ctx.mont_mul(&x, &x));
            x = ctx.mont_sq(&x);
        }

        let mut limbs = vec![0u64; 8];
        for (i, l) in limbs.iter_mut().enumerate() {
            *l = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 0x5151);
        }
        limbs[0] |= 1;
        limbs[7] |= 1 << 63;
        let m8 = BigUint::from_limbs(limbs);
        let ctx = MontgomeryCtx::<8>::new(&m8).unwrap();
        let mut x = ctx.reduce(&(BigUint::one() << 450));
        for _ in 0..200 {
            assert_eq!(ctx.mont_sq(&x), ctx.mont_mul(&x, &x));
            x = ctx.mont_sq(&x);
        }
        // Top-bit-heavy operand exercises the doubled-operand overflow path.
        let y = ctx.reduce(&(m8.clone() - BigUint::one()));
        assert_eq!(ctx.mont_sq(&y), ctx.mont_mul(&y, &y));
        assert_eq!(
            ctx.mont_sq(&FixedUint::zero()),
            ctx.mont_mul(&FixedUint::zero(), &FixedUint::zero())
        );
    }

    #[test]
    fn windowed_pow_agrees_with_plain_ladder() {
        // Exponents straddling the 64-bit window threshold must agree with
        // the dynamic reference (which always runs square-and-multiply).
        let m = big("f123456789abcdef1123456789abcdef1");
        let ctx = MontgomeryCtx::<3>::new(&m).unwrap();
        let dynamic = Montgomery::new(m.clone());
        let base = big("deadbeefcafebabe12345678901234567");
        for exp in [
            BigUint::from(1u64),
            BigUint::from(u64::MAX),
            BigUint::one() << 64,
            (BigUint::one() << 64) + BigUint::one(),
            big("1fffffffffffffffffffffffffffffff3"),
            m.clone() - BigUint::one(),
        ] {
            assert_eq!(ctx.pow(&base, &exp), dynamic.pow(&base, &exp));
        }
    }

    #[test]
    fn mont_roundtrip_fixed_domain() {
        let m = big("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryCtx::<2>::new(&m).unwrap();
        let x = ctx.reduce(&big("abcdef0123456789"));
        assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        assert_eq!(ctx.width(), 2);
    }

    #[test]
    fn ctx_rejects_wrong_width_and_even_moduli() {
        let m = big("ffffffffffffffffffffffffffffff61");
        assert!(MontgomeryCtx::<3>::new(&m).is_none());
        assert!(MontgomeryCtx::<2>::new(&(m.clone() + BigUint::one())).is_none());
        assert!(MontgomeryCtx::<1>::new(&BigUint::one()).is_none());
    }
}
