//! Equivalence suite: the fixed-limb engine must be byte-identical to the
//! dynamic `BigUint`/`Montgomery` reference across random operands at every
//! supported width, plus the edge cases (0, 1, n-1, R-boundary values).
//!
//! Both engines share the Montgomery radix `R = 2^(64·limbs)`, so not just
//! the normal-domain results but the Montgomery-form intermediates must
//! agree — `mont_mul` is compared directly, not only through `pow`/`mul`.

use proptest::prelude::*;

use pretzel_bignum::{AutoMontgomery, BigUint, FixedUint, Montgomery, MontgomeryCtx};

/// A random odd modulus with exactly `limbs` significant limbs (top limb
/// forced non-zero so the width is exact).
fn arb_modulus(limbs: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), limbs).prop_map(move |mut v| {
        v[0] |= 1; // odd
        let last = v.len() - 1;
        v[last] |= 1 << 63; // full width
        BigUint::from_limbs(v)
    })
}

/// A random value reduced below `n`.
fn below(n: &BigUint, raw: &[u64]) -> BigUint {
    BigUint::from_limbs(raw.to_vec()) % n
}

macro_rules! equivalence_suite {
    ($mod_name:ident, $n:literal) => {
        mod $mod_name {
            use super::*;

            const N: usize = $n;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]

                #[test]
                fn add_sub_match_biguint(
                    a in proptest::collection::vec(any::<u64>(), N),
                    b in proptest::collection::vec(any::<u64>(), N),
                ) {
                    let fa = FixedUint::<N>::from_limbs(a.clone().try_into().unwrap());
                    let fb = FixedUint::<N>::from_limbs(b.clone().try_into().unwrap());
                    let ba = fa.to_biguint();
                    let bb = fb.to_biguint();

                    let (sum, carry) = fa.add_carry(&fb);
                    let full = ba.clone() + bb.clone();
                    prop_assert_eq!(
                        sum.to_biguint() + (BigUint::from(carry) << (64 * N)),
                        full
                    );

                    let (diff, borrow) = fa.sub_borrow(&fb);
                    if borrow == 0 {
                        prop_assert_eq!(diff.to_biguint(), ba - bb);
                    } else {
                        // Wrapped: diff = a - b + 2^(64N).
                        prop_assert_eq!(
                            diff.to_biguint() + bb,
                            ba + (BigUint::one() << (64 * N))
                        );
                    }
                }

                #[test]
                fn widening_mul_matches_biguint(
                    a in proptest::collection::vec(any::<u64>(), N),
                    b in proptest::collection::vec(any::<u64>(), N),
                ) {
                    let fa = FixedUint::<N>::from_limbs(a.try_into().unwrap());
                    let fb = FixedUint::<N>::from_limbs(b.try_into().unwrap());
                    let (lo, hi) = fa.widening_mul(&fb);
                    prop_assert_eq!(
                        (hi.to_biguint() << (64 * N)) + lo.to_biguint(),
                        fa.to_biguint() * fb.to_biguint()
                    );
                }

                #[test]
                fn mont_mul_matches_dynamic(
                    n in arb_modulus(N),
                    a_raw in proptest::collection::vec(any::<u64>(), N),
                    b_raw in proptest::collection::vec(any::<u64>(), N),
                ) {
                    let ctx = MontgomeryCtx::<N>::new(&n).unwrap();
                    let dynamic = Montgomery::new(n.clone());
                    let a = below(&n, &a_raw);
                    let b = below(&n, &b_raw);
                    let fa = FixedUint::<N>::from_biguint(&a).unwrap();
                    let fb = FixedUint::<N>::from_biguint(&b).unwrap();
                    // Same radix → identical Montgomery products, limb for limb.
                    prop_assert_eq!(
                        ctx.mont_mul(&fa, &fb).to_biguint(),
                        dynamic.mont_mul(&a, &b)
                    );
                    // The dedicated squaring must agree with the general
                    // product of a value with itself.
                    prop_assert_eq!(ctx.mont_sq(&fa), ctx.mont_mul(&fa, &fa));
                    prop_assert_eq!(ctx.mul(&a, &b), dynamic.mul(&a, &b));
                }

                #[test]
                fn pow_matches_dynamic(
                    n in arb_modulus(N),
                    base_raw in proptest::collection::vec(any::<u64>(), N),
                    exp_raw in proptest::collection::vec(any::<u64>(), 2),
                ) {
                    let auto = AutoMontgomery::new(&n);
                    prop_assert_eq!(auto.backend(), concat!("fixed:", stringify!($n)));
                    let dynamic = Montgomery::new(n.clone());
                    let base = below(&n, &base_raw);
                    let exp = BigUint::from_limbs(exp_raw);
                    prop_assert_eq!(auto.pow(&base, &exp), dynamic.pow(&base, &exp));
                }
            }

            /// Deterministic edge cases: 0, 1, n-1, and the R-boundary
            /// values (R mod n is the Montgomery form of 1; R-1 exercises
            /// the top of the operand range after reduction).
            #[test]
            fn edge_cases_match_dynamic() {
                // A fixed "random-looking" full-width odd modulus.
                let mut limbs = vec![0u64; N];
                for (i, l) in limbs.iter_mut().enumerate() {
                    *l = 0x9e3779b97f4a7c15u64
                        .wrapping_mul(i as u64 + 1)
                        .wrapping_add(0x2545f4914f6cdd1d);
                }
                limbs[0] |= 1;
                limbs[N - 1] |= 1 << 63;
                let n = BigUint::from_limbs(limbs);
                let ctx = MontgomeryCtx::<N>::new(&n).unwrap();
                let dynamic = Montgomery::new(n.clone());

                let r_mod_n = (BigUint::one() << (64 * N)) % &n;
                let r_minus_1 = (BigUint::one() << (64 * N)) - BigUint::one();
                let cases = [
                    BigUint::zero(),
                    BigUint::one(),
                    n.clone() - BigUint::one(),
                    r_mod_n,
                    r_minus_1 % &n,
                ];
                let exps = [
                    BigUint::zero(),
                    BigUint::one(),
                    BigUint::from(2u64),
                    n.clone() - BigUint::one(),
                ];
                for a in &cases {
                    for b in &cases {
                        let fa = FixedUint::<N>::from_biguint(a).unwrap();
                        let fb = FixedUint::<N>::from_biguint(b).unwrap();
                        assert_eq!(
                            ctx.mont_mul(&fa, &fb).to_biguint(),
                            dynamic.mont_mul(a, b),
                            "mont_mul mismatch at width {N}"
                        );
                        assert_eq!(ctx.mul(a, b), dynamic.mul(a, b));
                    }
                    for e in &exps {
                        assert_eq!(
                            ctx.pow(a, e),
                            dynamic.pow(a, e),
                            "pow mismatch at width {N}"
                        );
                    }
                }
            }
        }
    };
}

equivalence_suite!(width_2, 2);
equivalence_suite!(width_3, 3);
equivalence_suite!(width_4, 4);
equivalence_suite!(width_6, 6);
equivalence_suite!(width_8, 8);
equivalence_suite!(width_12, 12);
equivalence_suite!(width_16, 16);
equivalence_suite!(width_24, 24);
equivalence_suite!(width_32, 32);
equivalence_suite!(width_64, 64);

/// Unsupported widths must take the dynamic fallback and still agree with
/// `mod_pow` semantics.
#[test]
fn unsupported_width_falls_back_dynamic() {
    // 5 limbs (320 bits) is deliberately not in the family.
    let n = (BigUint::one() << 300) + BigUint::from(0x1234567u64 * 2 + 1);
    let auto = AutoMontgomery::new(&n);
    assert_eq!(auto.backend(), "dynamic");
    let dynamic = Montgomery::new(n.clone());
    let base = BigUint::from(0xdeadbeefu64);
    let exp = BigUint::from(65537u64);
    assert_eq!(auto.pow(&base, &exp), dynamic.pow(&base, &exp));
}

/// `AutoMontgomery::pow` must reduce oversized bases exactly like the
/// dynamic path (both reduce mod n before converting to Montgomery form).
#[test]
fn oversized_operands_reduce_identically() {
    let n = arb_fixed_modulus_4();
    let auto = AutoMontgomery::new(&n);
    assert_eq!(auto.backend(), "fixed:4");
    let dynamic = Montgomery::new(n.clone());
    let big_base = (BigUint::one() << 400) + BigUint::from(12345u64);
    let exp = BigUint::from(1000003u64);
    assert_eq!(auto.pow(&big_base, &exp), dynamic.pow(&big_base, &exp));
    assert_eq!(
        auto.mul(&big_base, &big_base),
        dynamic.mul(&big_base, &big_base)
    );
}

fn arb_fixed_modulus_4() -> BigUint {
    let mut limbs = vec![0xabcdef0123456789u64; 4];
    limbs[0] |= 1;
    limbs[3] |= 1 << 63;
    BigUint::from_limbs(limbs)
}
