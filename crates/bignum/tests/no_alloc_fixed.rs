//! Verifies the fixed-limb hot path's headline property: zero heap
//! allocation inside `mont_mul`, and only the final result allocation in
//! the `BigUint`-facing `pow`.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this lives
//! in its own integration-test binary so the counter doesn't interfere with
//! other suites. The dynamic path is measured alongside as a sanity check
//! that the counter actually observes Montgomery work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pretzel_bignum::{BigUint, FixedUint, Montgomery, MontgomeryCtx};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before, result)
}

fn test_modulus() -> BigUint {
    // Full-width 8-limb (512-bit) odd modulus — the n² width of a 256-bit
    // Paillier key.
    let mut limbs = vec![0u64; 8];
    for (i, l) in limbs.iter_mut().enumerate() {
        *l = 0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 0x1234_5678);
    }
    limbs[0] |= 1;
    limbs[7] |= 1 << 63;
    BigUint::from_limbs(limbs)
}

#[test]
fn fixed_mont_mul_does_not_allocate() {
    let n = test_modulus();
    let ctx = MontgomeryCtx::<8>::new(&n).unwrap();
    let a = ctx.reduce(&(BigUint::one() << 300));
    let b = ctx.reduce(&((BigUint::one() << 299) + BigUint::from(777u64)));

    // Warm up once (lazy init inside the allocator/test harness, if any).
    let _ = ctx.mont_mul(&a, &b);

    let (allocs, product) = count_allocs(|| {
        let mut acc = a;
        for _ in 0..64 {
            acc = ctx.mont_mul(&acc, &b);
        }
        acc
    });
    assert!(!product.is_zero());
    assert_eq!(allocs, 0, "fixed mont_mul must be allocation-free");
}

#[test]
fn fixed_pow_inner_loop_does_not_allocate() {
    let n = test_modulus();
    let ctx = MontgomeryCtx::<8>::new(&n).unwrap();
    let base = ctx.reduce(&(BigUint::one() << 300));
    let exp = n.clone() - BigUint::one();

    let _ = ctx.pow_fixed(&base, &exp);
    let (allocs, result) = count_allocs(|| ctx.pow_fixed(&base, &exp));
    assert!(!result.is_zero());
    // A 511-bit exponent drives ~511 squarings + multiplies; if the inner
    // loop allocated at all, this count would be in the hundreds.
    assert_eq!(allocs, 0, "fixed pow_fixed must be allocation-free");

    // The BigUint-facing wrapper allocates only for the returned value.
    let base_big = base.to_biguint();
    let (allocs, _) = count_allocs(|| ctx.pow(&base_big, &exp));
    assert!(
        allocs <= 2,
        "BigUint-facing pow should allocate only the result, saw {allocs}"
    );
}

/// Sanity check: the same workload on the dynamic path *does* allocate —
/// proving the counter observes Montgomery work and the comparison above
/// is meaningful.
#[test]
fn dynamic_path_allocates_as_expected() {
    let n = test_modulus();
    let mont = Montgomery::new(n.clone());
    let a = (BigUint::one() << 300) % &n;
    let b = ((BigUint::one() << 299) + BigUint::from(777u64)) % &n;

    let (allocs, _) = count_allocs(|| {
        let mut acc = a.clone();
        for _ in 0..64 {
            acc = mont.mont_mul(&acc, &b);
        }
        acc
    });
    assert!(
        allocs >= 64,
        "dynamic mont_mul allocates per call, saw only {allocs}"
    );
}

/// The fixed value type itself is pure stack data.
#[test]
fn fixed_uint_arithmetic_does_not_allocate() {
    let a = FixedUint::<8>::from_limbs([u64::MAX; 8]);
    let b = FixedUint::<8>::from_limbs([0x1234_5678_9abc_def0; 8]);
    let (allocs, _) = count_allocs(|| {
        let (sum, _) = a.add_carry(&b);
        let (diff, _) = sum.sub_borrow(&b);
        let (lo, hi) = diff.widening_mul(&b);
        (lo, hi)
    });
    assert_eq!(allocs, 0);
}
