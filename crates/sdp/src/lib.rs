//! GLLM secure dot products with packing (paper §3.2, §4.2).
//!
//! The provider's classifier model is a matrix whose columns are categories
//! and whose rows are features (plus one bias row). The client holds a sparse
//! feature vector extracted from an email. GLLM \[55\] computes the
//! vector–matrix product under additively homomorphic encryption: the
//! provider encrypts the matrix once (setup phase), the client computes the
//! encrypted dot products and blinds them (per email), and the provider
//! decrypts the blinded results, which then feed into Yao (the `gc` crate).
//!
//! Two instantiations are provided, matching the paper's comparison:
//!
//! * [`paillier_pack`] — the **Baseline** (§3.3): Paillier with the legacy
//!   per-row packing of GLLM.
//! * [`rlwe_pack`] — **Pretzel** (§4.1–§4.2): XPIR-BV with either the legacy
//!   per-row packing (`Pretzel-NoOptimPack` in Figure 8) or Pretzel's
//!   across-row packing with cyclic shifts, plus the candidate-topic
//!   extraction step of Figure 5.

pub mod paillier_pack;
pub mod rlwe_pack;

/// Errors from the secure dot-product protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdpError {
    /// A model value does not fit in the configured slot width.
    ValueTooLarge { value: u64, bits: u32 },
    /// A feature index is outside the model.
    FeatureOutOfRange { index: usize, rows: usize },
    /// A candidate column index is outside the model.
    CandidateOutOfRange { index: usize, cols: usize },
    /// The underlying AHE scheme reported an error.
    Ahe(String),
}

impl std::fmt::Display for SdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdpError::ValueTooLarge { value, bits } => {
                write!(f, "model value {value} does not fit in {bits} bits")
            }
            SdpError::FeatureOutOfRange { index, rows } => {
                write!(
                    f,
                    "feature index {index} out of range (model has {rows} rows)"
                )
            }
            SdpError::CandidateOutOfRange { index, cols } => {
                write!(
                    f,
                    "candidate column {index} out of range (model has {cols} columns)"
                )
            }
            SdpError::Ahe(msg) => write!(f, "AHE error: {msg}"),
        }
    }
}

impl std::error::Error for SdpError {}

/// A plaintext model matrix: `rows` features (the last row is conventionally
/// the bias/prior row) by `cols` categories, stored row-major as quantized
/// non-negative integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl ModelMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        ModelMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data. Panics if the length mismatches.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        ModelMatrix { rows, cols, data }
    }

    /// Number of feature rows (including the bias row if the caller added one).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of category columns (the paper's B).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, row: usize, col: usize, value: u64) {
        self.data[row * self.cols + col] = value;
    }

    /// A full row as a slice.
    pub fn row(&self, row: usize) -> &[u64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Largest value in the matrix (used to validate slot widths).
    pub fn max_value(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Plaintext (non-encrypted) size in bytes, assuming each value is stored
    /// in `value_bits` bits — the "Non-encrypted" rows of Figures 8 and 12.
    pub fn plaintext_size_bytes(&self, value_bits: u32) -> usize {
        (self.rows * self.cols * value_bits as usize).div_ceil(8)
    }

    /// Reference dot product against a sparse feature vector: returns one
    /// value per column. Test oracle for every secure variant.
    pub fn dot_sparse(&self, features: &[(usize, u64)]) -> Vec<u64> {
        let mut out = vec![0u64; self.cols];
        for &(row, freq) in features {
            for (j, o) in out.iter_mut().enumerate() {
                *o = o.wrapping_add(self.get(row, j).wrapping_mul(freq));
            }
        }
        out
    }
}

/// A sparse feature vector: (feature row index, frequency) pairs. The paper's
/// `L` is `features.len()`.
pub type SparseFeatures = Vec<(usize, u64)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_accessors() {
        let mut m = ModelMatrix::zeros(3, 2);
        m.set(0, 0, 5);
        m.set(2, 1, 9);
        assert_eq!(m.get(0, 0), 5);
        assert_eq!(m.get(2, 1), 9);
        assert_eq!(m.row(2), &[0, 9]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.max_value(), 9);
    }

    #[test]
    fn from_rows_and_dot_sparse() {
        let m = ModelMatrix::from_rows(3, 2, vec![1, 2, 3, 4, 5, 6]);
        // features: row 0 with freq 2, row 2 with freq 1
        let d = m.dot_sparse(&[(0, 2), (2, 1)]);
        assert_eq!(d, vec![2 + 5, 2 * 2 + 6]);
    }

    #[test]
    fn plaintext_size_matches_bit_accounting() {
        let m = ModelMatrix::zeros(1000, 2);
        // 2000 values at 17 bits = 4250 bytes
        assert_eq!(m.plaintext_size_bytes(17), 4250);
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_bad_length() {
        let _ = ModelMatrix::from_rows(2, 2, vec![1, 2, 3]);
    }
}
