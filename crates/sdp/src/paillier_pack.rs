//! The Baseline secure dot product (paper §3.3): Paillier with GLLM's legacy
//! per-row packing.
//!
//! Packing layout: each matrix row is split into groups of
//! `p = ⌊plaintext_bits / slot_bits⌋` column values; a group is encoded as the
//! big integer `v_1 + v_2·2^b + v_3·2^{2b} + …` and encrypted as one Paillier
//! ciphertext. Homomorphic addition adds slot-wise and multiplying the
//! ciphertext by a feature frequency multiplies every slot, provided no slot
//! ever exceeds `b` bits — the caller guarantees this through the paper's
//! `b = log L + b_in + f_in` accounting (§4.2).

use rand::Rng;

use pretzel_bignum::BigUint;
use pretzel_paillier::{Ciphertext, PublicKey, RandomnessPool, SecretKey};

use crate::{ModelMatrix, SdpError, SparseFeatures};

/// The Baseline's packing/protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct PaillierPackParams {
    /// Bits per packed slot (the paper's `b`).
    pub slot_bits: u32,
}

impl PaillierPackParams {
    /// Number of slots that fit in one ciphertext of `pk` (the paper's
    /// `p_pail`).
    pub fn slots_per_ct(&self, pk: &PublicKey) -> usize {
        (pk.plaintext_bits() / self.slot_bits as usize).max(1)
    }
}

/// The provider's Paillier-encrypted model (setup phase of the Baseline).
pub struct PaillierEncryptedModel {
    params: PaillierPackParams,
    /// `cts[row * cts_per_row + group]`
    cts: Vec<Ciphertext>,
    rows: usize,
    cols: usize,
    cts_per_row: usize,
    slots: usize,
}

impl PaillierEncryptedModel {
    /// Reassembles an encrypted model from transmitted ciphertexts and layout
    /// metadata (the client side of the Baseline setup phase).
    pub fn from_parts(
        params: PaillierPackParams,
        cts: Vec<Ciphertext>,
        rows: usize,
        cols: usize,
        slots_per_ct: usize,
    ) -> Self {
        PaillierEncryptedModel {
            params,
            cts,
            rows,
            cols,
            cts_per_row: cols.div_ceil(slots_per_ct),
            slots: slots_per_ct,
        }
    }

    /// The raw ciphertexts (setup-phase transmission).
    pub fn ciphertexts(&self) -> &[Ciphertext] {
        &self.cts
    }

    /// Total ciphertext count (`N · ⌈B/p⌉`).
    pub fn ciphertext_count(&self) -> usize {
        self.cts.len()
    }

    /// Client-side storage in bytes (Figure 8 / Figure 12 "Baseline" rows).
    pub fn size_bytes(&self, pk: &PublicKey) -> usize {
        self.cts.len() * Ciphertext::serialized_len(pk.n_bits())
    }

    /// Result ciphertexts per email (β_pail = ⌈B/p⌉).
    pub fn result_ciphertexts(&self) -> usize {
        self.cts_per_row
    }

    /// Number of category columns (the paper's B).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Packing slots per ciphertext (the paper's p_pail).
    pub fn slots_per_ct(&self) -> usize {
        self.slots
    }

    /// Slot width in bits (the paper's b).
    pub fn slot_bits(&self) -> u32 {
        self.params.slot_bits
    }
}

/// Number of ciphertexts the Baseline model occupies, without encrypting
/// (used for paper-scale size accounting).
pub fn model_ciphertext_count(rows: usize, cols: usize, slots_per_ct: usize) -> usize {
    rows * cols.div_ceil(slots_per_ct)
}

/// Packs up to `slots` values of `slot_bits` bits each into one big integer.
fn pack_values(values: &[u64], slot_bits: u32) -> BigUint {
    let mut acc = BigUint::zero();
    for (i, &v) in values.iter().enumerate() {
        acc += &(BigUint::from(v) << (slot_bits as usize * i));
    }
    acc
}

/// Extracts `count` slot values from a packed big integer.
fn unpack_values(packed: &BigUint, slot_bits: u32, count: usize) -> Vec<u64> {
    let mask = if slot_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << slot_bits) - 1
    };
    (0..count)
        .map(|i| {
            let shifted = packed.clone() >> (slot_bits as usize * i);
            shifted.limbs().first().copied().unwrap_or(0) & mask
        })
        .collect()
}

/// Setup phase: the provider encrypts its model under its own Paillier key.
pub fn encrypt_model<R: Rng + ?Sized>(
    pk: &PublicKey,
    model: &ModelMatrix,
    params: PaillierPackParams,
    rng: &mut R,
) -> Result<PaillierEncryptedModel, SdpError> {
    let max = model.max_value();
    if params.slot_bits < 64 && max >= (1u64 << params.slot_bits) {
        return Err(SdpError::ValueTooLarge {
            value: max,
            bits: params.slot_bits,
        });
    }
    let slots = params.slots_per_ct(pk);
    let cols = model.cols();
    let rows = model.rows();
    let cts_per_row = cols.div_ceil(slots);
    let mut cts = Vec::with_capacity(rows * cts_per_row);
    for r in 0..rows {
        for chunk in model.row(r).chunks(slots) {
            let packed = pack_values(chunk, params.slot_bits);
            let ct = pk
                .encrypt(&packed, rng)
                .map_err(|e| SdpError::Ahe(e.to_string()))?;
            cts.push(ct);
        }
    }
    Ok(PaillierEncryptedModel {
        params,
        cts,
        rows,
        cols,
        cts_per_row,
        slots,
    })
}

/// Per-email phase, client side: encrypted dot products, one ciphertext per
/// column group.
pub fn client_dot_product<R: Rng + ?Sized>(
    pk: &PublicKey,
    model: &PaillierEncryptedModel,
    features: &SparseFeatures,
    rng: &mut R,
) -> Result<Vec<Ciphertext>, SdpError> {
    dot_product_with(pk, model, features, || pk.encrypt_zero(rng))
}

/// [`client_dot_product`] with the fresh zero-accumulators drawn from a
/// [`RandomnessPool`] filled offline — the only full exponentiations on the
/// client's online path become pool pops. An empty (or mismatched) pool
/// falls back to inline encryption; the results are interchangeable.
pub fn client_dot_product_pooled<R: Rng + ?Sized>(
    pk: &PublicKey,
    model: &PaillierEncryptedModel,
    features: &SparseFeatures,
    pool: &mut RandomnessPool,
    rng: &mut R,
) -> Result<Vec<Ciphertext>, SdpError> {
    dot_product_with(pk, model, features, || pk.encrypt_zero_pooled(pool, rng))
}

fn dot_product_with(
    pk: &PublicKey,
    model: &PaillierEncryptedModel,
    features: &SparseFeatures,
    mut fresh_zero: impl FnMut() -> Ciphertext,
) -> Result<Vec<Ciphertext>, SdpError> {
    for &(row, _) in features {
        if row >= model.rows {
            return Err(SdpError::FeatureOutOfRange {
                index: row,
                rows: model.rows,
            });
        }
    }
    let mut accs: Vec<Ciphertext> = (0..model.cts_per_row).map(|_| fresh_zero()).collect();
    for &(row, freq) in features {
        if freq == 0 {
            continue;
        }
        for (g, acc) in accs.iter_mut().enumerate() {
            let ct = &model.cts[row * model.cts_per_row + g];
            let scaled = pk.mul_plain_u64(ct, freq);
            *acc = pk.add(acc, &scaled);
        }
    }
    Ok(accs)
}

/// Per-email phase, client side: blinds each slot of a result ciphertext with
/// noise of `slot_bits - 1` bits (keeping headroom so no carry crosses slot
/// boundaries), returning the blinded ciphertext and the noise values of the
/// first `count` slots.
pub fn blind<R: Rng + ?Sized>(
    pk: &PublicKey,
    model: &PaillierEncryptedModel,
    ct: &Ciphertext,
    count: usize,
    rng: &mut R,
) -> (Ciphertext, Vec<u64>) {
    let slot_bits = model.params.slot_bits;
    let noise_bits = slot_bits - 1;
    let noise: Vec<u64> = (0..model.slots)
        .map(|_| rng.gen_range(0..(1u64 << noise_bits)))
        .collect();
    let packed_noise = pack_values(&noise, slot_bits);
    let blinded = pk.add_plain(ct, &packed_noise);
    (blinded, noise[..count.min(model.slots)].to_vec())
}

/// Per-email phase, provider side: decrypts the blinded results and returns
/// all B slot values, in column order.
pub fn provider_decrypt(
    sk: &SecretKey,
    model_cols: usize,
    slot_bits: u32,
    slots_per_ct: usize,
    cts: &[Ciphertext],
) -> Result<Vec<u64>, SdpError> {
    let mut out = Vec::with_capacity(model_cols);
    for ct in cts {
        let packed = sk.decrypt(ct).map_err(|e| SdpError::Ahe(e.to_string()))?;
        let remaining = model_cols - out.len();
        out.extend(unpack_values(
            &packed,
            slot_bits,
            remaining.min(slots_per_ct),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_paillier::keygen;

    fn test_key() -> SecretKey {
        keygen(256, &mut rand::thread_rng())
    }

    fn demo_model(rows: usize, cols: usize) -> ModelMatrix {
        let data: Vec<u64> = (0..rows * cols)
            .map(|i| ((i * 31 + 5) % 900) as u64)
            .collect();
        ModelMatrix::from_rows(rows, cols, data)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let values = vec![5u64, 0, 1023, 77, 1];
        let packed = pack_values(&values, 20);
        assert_eq!(unpack_values(&packed, 20, 5), values);
    }

    #[test]
    fn baseline_dot_product_matches_reference() {
        let sk = test_key();
        let pk = sk.public();
        let params = PaillierPackParams { slot_bits: 24 };
        let model = demo_model(30, 2);
        let features: SparseFeatures = (0..12).map(|i| (i * 2 % 30, (i % 3 + 1) as u64)).collect();
        let enc = encrypt_model(pk, &model, params, &mut rand::thread_rng()).unwrap();
        // B = 2 fits one ciphertext per row.
        assert_eq!(enc.ciphertext_count(), 30);
        let result = client_dot_product(pk, &enc, &features, &mut rand::thread_rng()).unwrap();
        assert_eq!(result.len(), 1);
        let decrypted =
            provider_decrypt(&sk, 2, params.slot_bits, params.slots_per_ct(pk), &result).unwrap();
        assert_eq!(decrypted, model.dot_sparse(&features));
    }

    #[test]
    fn baseline_multi_group_columns() {
        let sk = test_key();
        let pk = sk.public();
        let params = PaillierPackParams { slot_bits: 24 };
        let slots = params.slots_per_ct(pk);
        let cols = slots * 2 + 3; // force 3 column groups
        let model = demo_model(10, cols);
        let features: SparseFeatures = vec![(0, 2), (4, 1), (9, 3)];
        let enc = encrypt_model(pk, &model, params, &mut rand::thread_rng()).unwrap();
        assert_eq!(enc.ciphertext_count(), 10 * 3);
        assert_eq!(enc.result_ciphertexts(), 3);
        let result = client_dot_product(pk, &enc, &features, &mut rand::thread_rng()).unwrap();
        let decrypted = provider_decrypt(&sk, cols, params.slot_bits, slots, &result).unwrap();
        assert_eq!(decrypted, model.dot_sparse(&features));
    }

    #[test]
    fn pooled_dot_product_matches_reference() {
        let sk = test_key();
        let pk = sk.public();
        let params = PaillierPackParams { slot_bits: 24 };
        let model = demo_model(30, 2);
        let features: SparseFeatures = (0..12).map(|i| (i * 2 % 30, (i % 3 + 1) as u64)).collect();
        let enc = encrypt_model(pk, &model, params, &mut rand::thread_rng()).unwrap();
        let mut pool = RandomnessPool::new();
        // One accumulator group: a pool of 1 covers one round; a second
        // round on the drained pool must fall back inline and still agree.
        pool.refill(pk, 1, &mut rand::thread_rng());
        for _ in 0..2 {
            let result =
                client_dot_product_pooled(pk, &enc, &features, &mut pool, &mut rand::thread_rng())
                    .unwrap();
            let decrypted =
                provider_decrypt(&sk, 2, params.slot_bits, params.slots_per_ct(pk), &result)
                    .unwrap();
            assert_eq!(decrypted, model.dot_sparse(&features));
        }
        assert!(pool.is_empty());
    }

    #[test]
    fn blinding_adds_recoverable_noise() {
        let sk = test_key();
        let pk = sk.public();
        let params = PaillierPackParams { slot_bits: 24 };
        let model = demo_model(20, 2);
        let features: SparseFeatures = vec![(1, 1), (7, 2)];
        let enc = encrypt_model(pk, &model, params, &mut rand::thread_rng()).unwrap();
        let result = client_dot_product(pk, &enc, &features, &mut rand::thread_rng()).unwrap();
        let (blinded, noise) = blind(pk, &enc, &result[0], 2, &mut rand::thread_rng());
        let decrypted = provider_decrypt(
            &sk,
            2,
            params.slot_bits,
            params.slots_per_ct(pk),
            &[blinded],
        )
        .unwrap();
        let expected = model.dot_sparse(&features);
        for j in 0..2 {
            assert_eq!(decrypted[j], expected[j] + noise[j]);
        }
    }

    #[test]
    fn size_accounting_matches_formula() {
        let sk = test_key();
        let pk = sk.public();
        let params = PaillierPackParams { slot_bits: 20 };
        let model = demo_model(25, 7);
        let enc = encrypt_model(pk, &model, params, &mut rand::thread_rng()).unwrap();
        let slots = params.slots_per_ct(pk);
        assert_eq!(enc.ciphertext_count(), model_ciphertext_count(25, 7, slots));
        assert_eq!(
            enc.size_bytes(pk),
            enc.ciphertext_count() * Ciphertext::serialized_len(pk.n_bits())
        );
    }

    #[test]
    fn oversized_values_and_features_rejected() {
        let sk = test_key();
        let pk = sk.public();
        let params = PaillierPackParams { slot_bits: 8 };
        let mut model = ModelMatrix::zeros(4, 2);
        model.set(0, 0, 256);
        assert!(matches!(
            encrypt_model(pk, &model, params, &mut rand::thread_rng()),
            Err(SdpError::ValueTooLarge { .. })
        ));
        let ok_model = demo_model(4, 2);
        let enc = encrypt_model(
            pk,
            &ok_model,
            PaillierPackParams { slot_bits: 24 },
            &mut rand::thread_rng(),
        )
        .unwrap();
        assert!(matches!(
            client_dot_product(pk, &enc, &vec![(4, 1)], &mut rand::thread_rng()),
            Err(SdpError::FeatureOutOfRange { .. })
        ));
    }
}
