//! Secure dot products over the XPIR-BV (RLWE) scheme with Pretzel's packing
//! (paper §4.1–§4.2) and the candidate-topic extraction of Figure 5.
//!
//! Packing layouts
//! ---------------
//! Let `p` be the number of slots per ciphertext (the ring degree, 1024 by
//! default) and `B` the number of categories (matrix columns).
//!
//! * **Legacy (per-row) packing** — GLLM's original technique: each matrix
//!   row is packed into `⌈B/p⌉` ciphertexts; rows never share a ciphertext.
//!   With B = 2 and p = 1024 this wastes a factor of 512 (the
//!   `Pretzel-NoOptimPack` row of Figure 8).
//! * **Across-row packing** — Pretzel's refinement: when `B < p`, `⌊p/B⌋`
//!   consecutive rows share one ciphertext, laid out row-major. During the
//!   per-email dot product the client *rotates* the packed ciphertext so the
//!   relevant row lands in slots `0..B`, multiplies by the feature frequency
//!   and accumulates — the "left shift and add" operation whose
//!   microbenchmark appears in Figure 6.
//!
//! In both layouts the client's result ciphertexts carry the B dot products
//! in their leading slots; the client blinds every slot before sending them
//! to the provider (Figure 2 step 2, bullet 2).

use rand::Rng;

use pretzel_rlwe::{Ciphertext, Plaintext, PublicKey, SecretKey};

use crate::{ModelMatrix, SdpError, SparseFeatures};

/// Which packing layout an encrypted model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Packing {
    /// GLLM's per-row packing (the Figure 8 "Pretzel-NoOptimPack" ablation).
    LegacyPerRow,
    /// Pretzel's across-row packing (§4.2).
    AcrossRow,
}

/// The provider's model, encrypted for a particular client (setup phase).
pub struct EncryptedModel {
    packing: Packing,
    /// Ciphertexts; interpretation depends on the packing (see accessors).
    cts: Vec<Ciphertext>,
    /// Number of feature rows (including bias row).
    rows: usize,
    /// Number of category columns (B).
    cols: usize,
    /// Rows packed per ciphertext (1 for legacy with B ≥ p).
    rows_per_ct: usize,
    /// Ciphertexts per row group along the column axis (⌈B/p⌉).
    cts_per_row: usize,
    /// Slots per ciphertext.
    slots: usize,
}

impl EncryptedModel {
    /// Reassembles an encrypted model from transmitted ciphertexts and layout
    /// metadata (the client side of the setup phase receives exactly this).
    pub fn from_parts(
        packing: Packing,
        cts: Vec<Ciphertext>,
        rows: usize,
        cols: usize,
        slots: usize,
    ) -> Self {
        let (rows_per_ct, cts_per_row) = match packing {
            Packing::LegacyPerRow => (1, cols.div_ceil(slots)),
            Packing::AcrossRow if cols >= slots => (1, cols.div_ceil(slots)),
            Packing::AcrossRow => (slots / cols, 1),
        };
        EncryptedModel {
            packing,
            cts,
            rows,
            cols,
            rows_per_ct,
            cts_per_row,
            slots,
        }
    }

    /// The raw ciphertexts (setup-phase transmission).
    pub fn ciphertexts(&self) -> &[Ciphertext] {
        &self.cts
    }

    /// Total number of ciphertexts.
    pub fn ciphertext_count(&self) -> usize {
        self.cts.len()
    }

    /// Client-side storage in bytes — the quantity reported in Figures 8
    /// and 12.
    pub fn size_bytes(&self, pk: &PublicKey) -> usize {
        self.cts.len() * pk.params().ciphertext_bytes()
    }

    /// The packing layout in use.
    pub fn packing(&self) -> Packing {
        self.packing
    }

    /// Number of category columns (the paper's B).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of feature rows in the model.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Packing slots per ciphertext (the paper's p).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of result ciphertexts a dot product will produce (β in
    /// Figure 3): 1 for across-row packing, ⌈B/p⌉ for legacy packing.
    pub fn result_ciphertexts(&self) -> usize {
        match self.packing {
            Packing::AcrossRow => 1,
            Packing::LegacyPerRow => self.cts_per_row,
        }
    }
}

/// Computes the number of ciphertexts an encrypted model will occupy without
/// encrypting anything (used by the Figure 8 / Figure 12 size harnesses for
/// paper-scale N where actually encrypting 5M rows would be pointless work).
pub fn model_ciphertext_count(rows: usize, cols: usize, slots: usize, packing: Packing) -> usize {
    match packing {
        Packing::LegacyPerRow => rows * cols.div_ceil(slots),
        Packing::AcrossRow => {
            if cols >= slots {
                rows * cols.div_ceil(slots)
            } else {
                let rows_per_ct = slots / cols;
                rows.div_ceil(rows_per_ct)
            }
        }
    }
}

/// Setup phase: the provider encrypts its model matrix column-group-wise
/// under the client's... no — under the *provider's own* key pair is wrong;
/// in GLLM the matrix owner (provider) generates the AHE key pair, encrypts
/// the matrix and ships it to the client, who computes blindly and returns
/// blinded results for the provider to decrypt (Figure 2). This function is
/// therefore run by the provider with its own public key.
pub fn encrypt_model<R: Rng + ?Sized>(
    pk: &PublicKey,
    model: &ModelMatrix,
    packing: Packing,
    rng: &mut R,
) -> Result<EncryptedModel, SdpError> {
    let params = pk.params();
    let slots = params.slots();
    let plain_max = params.t;
    if model.max_value() >= plain_max {
        return Err(SdpError::ValueTooLarge {
            value: model.max_value(),
            bits: params.plain_bits,
        });
    }
    let rows = model.rows();
    let cols = model.cols();
    let mut cts = Vec::new();

    let (rows_per_ct, cts_per_row) = match packing {
        Packing::LegacyPerRow => (1, cols.div_ceil(slots)),
        Packing::AcrossRow if cols >= slots => (1, cols.div_ceil(slots)),
        Packing::AcrossRow => (slots / cols, 1),
    };

    if rows_per_ct == 1 {
        // One row per ciphertext group; split columns across ⌈B/p⌉ cts.
        for r in 0..rows {
            let row = model.row(r);
            for chunk in row.chunks(slots) {
                let ct = pk
                    .encrypt_slots(chunk, rng)
                    .map_err(|e| SdpError::Ahe(e.to_string()))?;
                cts.push(ct);
            }
        }
    } else {
        // Across-row packing: rows_per_ct consecutive rows share a ciphertext,
        // laid out row-major (row r at slot offset (r mod rows_per_ct) * B).
        for group_start in (0..rows).step_by(rows_per_ct) {
            let group_end = (group_start + rows_per_ct).min(rows);
            let mut slots_buf = Vec::with_capacity(slots);
            for r in group_start..group_end {
                slots_buf.extend_from_slice(model.row(r));
            }
            let ct = pk
                .encrypt_slots(&slots_buf, rng)
                .map_err(|e| SdpError::Ahe(e.to_string()))?;
            cts.push(ct);
        }
    }

    Ok(EncryptedModel {
        packing,
        cts,
        rows,
        cols,
        rows_per_ct,
        cts_per_row,
        slots,
    })
}

/// Per-email phase, client side: computes the encrypted dot products
/// `Enc(d_1 || d_2 || … )` from the sparse feature vector.
///
/// Returns `model.result_ciphertexts()` ciphertexts; with across-row packing
/// the B dot products sit in slots `0..B` of the single result.
pub fn client_dot_product(
    pk: &PublicKey,
    model: &EncryptedModel,
    features: &SparseFeatures,
) -> Result<Vec<Ciphertext>, SdpError> {
    for &(row, _) in features {
        if row >= model.rows {
            return Err(SdpError::FeatureOutOfRange {
                index: row,
                rows: model.rows,
            });
        }
    }
    match model.packing {
        Packing::LegacyPerRow => Ok(dot_per_row(pk, model, features)),
        Packing::AcrossRow if model.rows_per_ct == 1 => Ok(dot_per_row(pk, model, features)),
        Packing::AcrossRow => Ok(dot_across_row(pk, model, features)),
    }
}

fn dot_per_row(
    pk: &PublicKey,
    model: &EncryptedModel,
    features: &SparseFeatures,
) -> Vec<Ciphertext> {
    let groups = model.cts_per_row;
    let mut accs: Vec<Ciphertext> = (0..groups).map(|_| pk.zero_accumulator()).collect();
    for &(row, freq) in features {
        if freq == 0 {
            continue;
        }
        for (g, acc) in accs.iter_mut().enumerate() {
            let ct = &model.cts[row * groups + g];
            pk.mul_scalar_accumulate(acc, ct, freq);
        }
    }
    accs
}

fn dot_across_row(
    pk: &PublicKey,
    model: &EncryptedModel,
    features: &SparseFeatures,
) -> Vec<Ciphertext> {
    let mut acc = pk.zero_accumulator();
    for &(row, freq) in features {
        if freq == 0 {
            continue;
        }
        let group = row / model.rows_per_ct;
        let offset_rows = row % model.rows_per_ct;
        // Left-shift so this row's B elements land in slots 0..B, then scale
        // by the feature frequency and accumulate ("left shift and add").
        let aligned = pk.rotate_left(&model.cts[group], offset_rows * model.cols);
        let scaled = pk.mul_scalar(&aligned, freq);
        pk.add_assign(&mut acc, &scaled);
    }
    vec![acc]
}

/// Per-email phase, client side: blinds every slot of a result ciphertext
/// with fresh uniform noise (mod t), returning the blinded ciphertext and the
/// noise values for the slots of interest (`0..count`). The noise later feeds
/// into Yao as the client's private input.
pub fn blind<R: Rng + ?Sized>(
    pk: &PublicKey,
    ct: &Ciphertext,
    count: usize,
    rng: &mut R,
) -> (Ciphertext, Vec<u64>) {
    let params = pk.params();
    let noise: Vec<u64> = (0..params.slots())
        .map(|_| rng.gen_range(0..params.t))
        .collect();
    let pt = Plaintext::encode(params, &noise).expect("noise fits by construction");
    let blinded = pk.add_plain(ct, &pt);
    (blinded, noise[..count].to_vec())
}

/// Figure 5, step 3 (client side): from the per-column-group dot-product
/// accumulators, extract the candidate columns `candidates` (0-based global
/// column indices), shifting each candidate's dot product into slot 0 of a
/// fresh ciphertext copy.
pub fn extract_candidates(
    pk: &PublicKey,
    accumulators: &[Ciphertext],
    cols: usize,
    candidates: &[usize],
) -> Result<Vec<Ciphertext>, SdpError> {
    let slots = pk.params().slots();
    let mut out = Vec::with_capacity(candidates.len());
    for &col in candidates {
        if col >= cols {
            return Err(SdpError::CandidateOutOfRange { index: col, cols });
        }
        let group = col / slots;
        let slot = col % slots;
        let shifted = pk.rotate_left(&accumulators[group], slot);
        out.push(shifted);
    }
    Ok(out)
}

/// Per-email phase, provider side: decrypts result ciphertexts and reads the
/// first `count` slots of each (Figure 2 step 3 / Figure 5 step 4).
pub fn provider_decrypt(sk: &SecretKey, cts: &[Ciphertext], count: usize) -> Vec<Vec<u64>> {
    cts.iter()
        .map(|ct| sk.decrypt_slots(ct)[..count].to_vec())
        .collect()
}

/// Decrypts legacy/per-row result ciphertexts into a flat vector of B dot
/// products (concatenating the slot groups).
pub fn provider_decrypt_columns(sk: &SecretKey, cts: &[Ciphertext], cols: usize) -> Vec<u64> {
    let slots = sk.params().slots();
    let mut out = Vec::with_capacity(cols);
    for ct in cts {
        let dec = sk.decrypt_slots(ct);
        for &v in dec.iter().take(slots) {
            if out.len() == cols {
                break;
            }
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_rlwe::{keygen, Params};

    fn setup(n: usize, bits: u32) -> (SecretKey, PublicKey) {
        let params = Params::new(n, bits);
        keygen(&params, None, &mut rand::thread_rng())
    }

    fn demo_model(rows: usize, cols: usize) -> ModelMatrix {
        let data: Vec<u64> = (0..rows * cols)
            .map(|i| ((i * 37 + 11) % 1000) as u64)
            .collect();
        ModelMatrix::from_rows(rows, cols, data)
    }

    fn demo_features(rows: usize, l: usize) -> SparseFeatures {
        (0..l)
            .map(|i| ((i * 7) % rows, (i % 4 + 1) as u64))
            .collect()
    }

    #[test]
    fn across_row_packing_dot_product_matches_reference_spam_shape() {
        // B = 2 (spam), p = 64 slots -> 32 rows per ciphertext.
        let (sk, pk) = setup(64, 24);
        let model = demo_model(100, 2);
        let features = demo_features(100, 40);
        let enc = encrypt_model(&pk, &model, Packing::AcrossRow, &mut rand::thread_rng()).unwrap();
        assert_eq!(enc.rows_per_ct, 32);
        assert_eq!(enc.ciphertext_count(), 100usize.div_ceil(32));
        let result = client_dot_product(&pk, &enc, &features).unwrap();
        assert_eq!(result.len(), 1);
        let expected = model.dot_sparse(&features);
        let decrypted = provider_decrypt(&sk, &result, 2);
        assert_eq!(decrypted[0], expected);
    }

    #[test]
    fn legacy_packing_dot_product_matches_reference() {
        let (sk, pk) = setup(64, 24);
        let model = demo_model(50, 2);
        let features = demo_features(50, 20);
        let enc =
            encrypt_model(&pk, &model, Packing::LegacyPerRow, &mut rand::thread_rng()).unwrap();
        // Legacy: one ciphertext per row.
        assert_eq!(enc.ciphertext_count(), 50);
        let result = client_dot_product(&pk, &enc, &features).unwrap();
        assert_eq!(result.len(), 1);
        let expected = model.dot_sparse(&features);
        let dec = provider_decrypt_columns(&sk, &result, 2);
        assert_eq!(dec, expected);
    }

    #[test]
    fn wide_matrix_spans_multiple_column_groups() {
        // B = 100 > p = 64: both packings degenerate to ⌈B/p⌉ = 2 cts per row.
        let (sk, pk) = setup(64, 24);
        let model = demo_model(30, 100);
        let features = demo_features(30, 15);
        let enc = encrypt_model(&pk, &model, Packing::AcrossRow, &mut rand::thread_rng()).unwrap();
        assert_eq!(enc.ciphertext_count(), 30 * 2);
        let result = client_dot_product(&pk, &enc, &features).unwrap();
        assert_eq!(result.len(), 2);
        let expected = model.dot_sparse(&features);
        let dec = provider_decrypt_columns(&sk, &result, 100);
        assert_eq!(dec, expected);
    }

    #[test]
    fn blinding_hides_and_subtracts_out() {
        let (sk, pk) = setup(64, 24);
        let model = demo_model(40, 2);
        let features = demo_features(40, 10);
        let enc = encrypt_model(&pk, &model, Packing::AcrossRow, &mut rand::thread_rng()).unwrap();
        let result = client_dot_product(&pk, &enc, &features).unwrap();
        let (blinded, noise) = blind(&pk, &result[0], 2, &mut rand::thread_rng());
        let expected = model.dot_sparse(&features);
        let dec = provider_decrypt(&sk, &[blinded], 2);
        let t = pk.params().t;
        for j in 0..2 {
            assert_eq!(dec[0][j], (expected[j] + noise[j]) % t);
            // Removing the noise mod t recovers the true dot product.
            assert_eq!((dec[0][j] + t - noise[j]) % t, expected[j] % t);
        }
    }

    #[test]
    fn candidate_extraction_pulls_requested_columns_to_slot_zero() {
        let (sk, pk) = setup(64, 24);
        let cols = 150; // spans 3 column groups of 64
        let model = demo_model(20, cols);
        let features = demo_features(20, 10);
        let enc = encrypt_model(&pk, &model, Packing::AcrossRow, &mut rand::thread_rng()).unwrap();
        let accs = client_dot_product(&pk, &enc, &features).unwrap();
        let expected = model.dot_sparse(&features);
        let candidates = vec![0usize, 63, 64, 100, 149];
        let extracted = extract_candidates(&pk, &accs, cols, &candidates).unwrap();
        for (ct, &col) in extracted.iter().zip(&candidates) {
            assert_eq!(sk.decrypt_slots(ct)[0], expected[col], "column {col}");
        }
        assert!(extract_candidates(&pk, &accs, cols, &[cols]).is_err());
    }

    #[test]
    fn ciphertext_count_formula_matches_actual_encryption() {
        let (_, pk) = setup(64, 24);
        for (rows, cols, packing) in [
            (100usize, 2usize, Packing::AcrossRow),
            (100, 2, Packing::LegacyPerRow),
            (30, 100, Packing::AcrossRow),
            (7, 64, Packing::AcrossRow),
        ] {
            let model = demo_model(rows, cols);
            let enc = encrypt_model(&pk, &model, packing, &mut rand::thread_rng()).unwrap();
            assert_eq!(
                enc.ciphertext_count(),
                model_ciphertext_count(rows, cols, 64, packing),
                "rows={rows} cols={cols} {packing:?}"
            );
        }
    }

    /// Runs encrypt → dot-product → blind → decrypt with every RNG pinned to
    /// `seed`, returning the serialized model bytes and the recovered dot
    /// products. Determinism of this whole pipeline is what lets the
    /// integration suite pin transcripts across runs.
    fn fixed_seed_pipeline(seed: u64, packing: Packing) -> (Vec<u8>, Vec<u64>) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let params = Params::new(64, 24);
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = keygen(&params, Some(&[7u8; 32]), &mut rng);
        let model = demo_model(40, 2);
        let features = demo_features(40, 12);
        let enc = encrypt_model(&pk, &model, packing, &mut rng).unwrap();
        let model_bytes: Vec<u8> = enc
            .ciphertexts()
            .iter()
            .flat_map(|c| c.to_bytes())
            .collect();
        let result = client_dot_product(&pk, &enc, &features).unwrap();
        let (blinded, noise) = blind(&pk, &result[0], 2, &mut rng);
        let dec = provider_decrypt(&sk, &[blinded], 2);
        let t = pk.params().t;
        let unblinded: Vec<u64> = dec[0]
            .iter()
            .zip(noise.iter())
            .map(|(&d, &n)| (d + t - n) % t)
            .collect();
        (model_bytes, unblinded)
    }

    #[test]
    fn fixed_seed_roundtrip_is_deterministic_and_correct() {
        for packing in [Packing::AcrossRow, Packing::LegacyPerRow] {
            let (bytes_a, dots_a) = fixed_seed_pipeline(0x5EED, packing);
            let (bytes_b, dots_b) = fixed_seed_pipeline(0x5EED, packing);
            assert_eq!(
                bytes_a, bytes_b,
                "{packing:?}: same seed must give byte-identical encrypted models"
            );
            assert_eq!(dots_a, dots_b);
            // And the recovered values agree with the plaintext reference.
            let expected = demo_model(40, 2).dot_sparse(&demo_features(40, 12));
            assert_eq!(dots_a, expected, "{packing:?}");
        }
    }

    #[test]
    fn different_seeds_change_ciphertexts_but_not_dot_products() {
        let (bytes_a, dots_a) = fixed_seed_pipeline(1, Packing::AcrossRow);
        let (bytes_b, dots_b) = fixed_seed_pipeline(2, Packing::AcrossRow);
        assert_ne!(bytes_a, bytes_b, "encryption must be randomized");
        assert_eq!(dots_a, dots_b, "randomness must not affect results");
    }

    #[test]
    fn oversized_model_values_rejected() {
        let (_, pk) = setup(64, 12);
        let mut model = ModelMatrix::zeros(4, 2);
        model.set(1, 1, 1 << 12);
        assert!(matches!(
            encrypt_model(&pk, &model, Packing::AcrossRow, &mut rand::thread_rng()),
            Err(SdpError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn out_of_range_feature_rejected() {
        let (_, pk) = setup(64, 24);
        let model = demo_model(10, 2);
        let enc = encrypt_model(&pk, &model, Packing::AcrossRow, &mut rand::thread_rng()).unwrap();
        assert!(matches!(
            client_dot_product(&pk, &enc, &vec![(10, 1)]),
            Err(SdpError::FeatureOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_frequency_features_do_not_contribute() {
        let (sk, pk) = setup(64, 24);
        let model = demo_model(20, 2);
        let enc = encrypt_model(&pk, &model, Packing::AcrossRow, &mut rand::thread_rng()).unwrap();
        let features: SparseFeatures = vec![(3, 0), (5, 2)];
        let result = client_dot_product(&pk, &enc, &features).unwrap();
        let dec = provider_decrypt(&sk, &result, 2);
        assert_eq!(dec[0], model.dot_sparse(&[(5, 2)]));
    }
}
