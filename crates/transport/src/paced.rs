//! Frame pacing: a [`Channel`] decorator that stalls before every send.
//!
//! This is the transport half of the *slow-loris* scenario gadget (see the
//! `pretzel_scenarios` crate): a client that trickles its frames out with a
//! fixed delay between them occupies a provider worker for the whole stretch
//! of its session while contributing almost no throughput. Wrapping any
//! [`Channel`] in a [`PacedChannel`] injects exactly that behaviour without
//! touching protocol code — the frames themselves are byte-identical, only
//! their timing changes, so verdicts and meter totals stay reproducible
//! while wall-clock measurements feel the stall.
//!
//! The pacing is deliberately on the *send* side: a stalling client delays
//! its own requests (and therefore the provider worker blocked in `recv`),
//! which is how a real slow client degrades a thread-per-session server.

use std::time::Duration;

use crate::{Channel, Result};

/// A [`Channel`] decorator that sleeps for a fixed delay before each send.
///
/// `PacedChannel::new(inner, Duration::ZERO)` is behaviourally identical to
/// the bare channel (no sleep is issued at all), so callers can apply the
/// wrapper unconditionally and tune the delay per scenario.
pub struct PacedChannel<C: Channel> {
    inner: C,
    delay: Duration,
}

impl<C: Channel> PacedChannel<C> {
    /// Wraps `inner`, stalling `delay` before every outbound frame.
    pub fn new(inner: C, delay: Duration) -> Self {
        PacedChannel { inner, delay }
    }

    /// The configured per-frame stall.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Unwraps the decorator, returning the underlying channel.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Channel> Channel for PacedChannel<C> {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.send(msg)
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        self.inner.recv()
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_pair;
    use std::time::Instant;

    #[test]
    fn frames_are_unchanged_and_delayed() {
        let (a, mut b) = memory_pair();
        let mut paced = PacedChannel::new(a, Duration::from_millis(5));
        let start = Instant::now();
        paced.send(b"slow").unwrap();
        paced.send(b"loris").unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "two sends must stall at least twice the delay"
        );
        assert_eq!(b.recv().unwrap(), b"slow");
        assert_eq!(b.recv().unwrap(), b"loris");
    }

    #[test]
    fn zero_delay_is_transparent() {
        let (a, mut b) = memory_pair();
        let mut paced = PacedChannel::new(a, Duration::ZERO);
        assert_eq!(paced.delay(), Duration::ZERO);
        paced.send(b"fast").unwrap();
        b.send(b"reply").unwrap();
        assert_eq!(paced.recv().unwrap(), b"reply");
        let mut inner = paced.into_inner();
        inner.send(b"bare").unwrap();
        assert_eq!(b.recv().unwrap(), b"fast");
        assert_eq!(b.recv().unwrap(), b"bare");
    }
}
