//! Byte-counting channel decorator.
//!
//! The paper reports "network transfers" per email (Figures 6 and 11, and the
//! §6.1/§6.3 absolute-cost discussion). We reproduce those columns by wrapping
//! the protocol channel in a [`MeteredChannel`] and reading the shared
//! [`Meter`] after the protocol run.
//!
//! # Counting semantics
//!
//! The meter counts **payload bytes and message counts only**, exactly as the
//! paper accounts ciphertext/message sizes:
//!
//! * one successful `send(msg)` adds `msg.len()` to `bytes_sent` and 1 to
//!   `messages_sent`; one successful `recv()` does the same on the receive
//!   side — a zero-length message still counts as one message;
//! * transport framing overhead is **not** counted. In particular, a
//!   [`crate::TcpChannel`] prefixes every frame with 4 length bytes that the
//!   meter never sees (`tcp_meter_counts_payload_bytes_not_frame_bytes` pins
//!   this);
//! * a failed `send` (oversized frame, peer gone) or `recv` (peer closed,
//!   oversized frame) counts nothing: the counters only reflect payload
//!   that actually crossed the channel
//!   (`failed_send_does_not_count` pins this).
//!
//! Because a [`Meter`] is a shared handle (internally `Arc`ed), cloning it
//! never forks the counters: all clones, and every channel wrapped via
//! [`MeteredChannel::with_meter`], observe and update the same totals.
//!
//! Besides the four traffic counters, a meter carries one serving-layer
//! **gauge**: the endpoint's precomputation pool depth
//! ([`Meter::set_pool_depth`]/[`Meter::pool_depth`]). The mailroom updates it
//! after every offline-phase top-up so operators can read session health and
//! traffic from a single handle. [`Meter::reset`] zeroes the gauge along
//! with the counters.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Channel, Result};

/// Per-kind precompute pool gauge: how deep one artifact kind's pool is and
/// how many draws found every pool dry and computed inline. Written by the
/// serving layer via [`Meter::set_pool_gauge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolKindGauge {
    /// Rounds this kind can currently serve without inline work.
    pub depth: u64,
    /// Draws that fell through every pool and computed inline.
    pub fallback_draws: u64,
}

#[derive(Default, Debug)]
struct MeterInner {
    bytes_sent: u64,
    bytes_received: u64,
    messages_sent: u64,
    messages_received: u64,
    pool_depth: u64,
    pool_kinds: BTreeMap<&'static str, PoolKindGauge>,
}

/// Shared counters for one endpoint of a metered channel.
#[derive(Clone, Default, Debug)]
pub struct Meter {
    inner: Arc<Mutex<MeterInner>>,
}

impl Meter {
    /// Creates a meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total payload bytes sent through the wrapped channel. Framing overhead
    /// of the underlying transport (e.g. [`crate::TcpChannel`]'s 4-byte
    /// length prefix) is not counted, matching the paper's accounting of
    /// ciphertext/message sizes; see the module docs for the full semantics.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.lock().bytes_sent
    }

    /// Total payload bytes received (same accounting as
    /// [`Meter::bytes_sent`]).
    pub fn bytes_received(&self) -> u64 {
        self.inner.lock().bytes_received
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        let g = self.inner.lock();
        g.bytes_sent + g.bytes_received
    }

    /// Number of messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.inner.lock().messages_sent
    }

    /// Number of messages received.
    pub fn messages_received(&self) -> u64 {
        self.inner.lock().messages_received
    }

    /// Precomputation pool depth gauge: how many future rounds the metered
    /// endpoint has offline work banked for. When per-kind gauges have been
    /// written ([`Meter::set_pool_gauge`]) this aggregate delegates to their
    /// sum; otherwise it returns the legacy scalar written by
    /// [`Meter::set_pool_depth`] (0 until someone sets either).
    pub fn pool_depth(&self) -> u64 {
        let g = self.inner.lock();
        if g.pool_kinds.is_empty() {
            g.pool_depth
        } else {
            g.pool_kinds.values().map(|k| k.depth).sum()
        }
    }

    /// Updates the aggregate pool depth gauge (a last-write-wins snapshot,
    /// unlike the monotonic traffic counters). Superseded by the per-kind
    /// [`Meter::set_pool_gauge`], which also carries fallback counts; once
    /// any per-kind gauge is set, [`Meter::pool_depth`] ignores this scalar.
    pub fn set_pool_depth(&self, depth: u64) {
        self.inner.lock().pool_depth = depth;
    }

    /// Updates one artifact kind's pool gauge (last-write-wins snapshot,
    /// keyed by the kind names precompute pools report — `"garblings"`,
    /// `"zero_encryptions"`, …).
    pub fn set_pool_gauge(&self, kind: &'static str, depth: u64, fallback_draws: u64) {
        self.inner.lock().pool_kinds.insert(
            kind,
            PoolKindGauge {
                depth,
                fallback_draws,
            },
        );
    }

    /// One kind's pool gauge (zero if never set).
    pub fn pool_gauge(&self, kind: &str) -> PoolKindGauge {
        self.inner
            .lock()
            .pool_kinds
            .get(kind)
            .copied()
            .unwrap_or_default()
    }

    /// Every per-kind pool gauge set so far, sorted by kind name.
    pub fn pool_gauges(&self) -> Vec<(&'static str, PoolKindGauge)> {
        self.inner
            .lock()
            .pool_kinds
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Total pool-dry fallback draws across all kinds.
    pub fn fallback_draws(&self) -> u64 {
        self.inner
            .lock()
            .pool_kinds
            .values()
            .map(|k| k.fallback_draws)
            .sum()
    }

    /// Resets all four counters (bytes and messages, both directions), the
    /// pool depth gauge, and every per-kind pool gauge to zero in one atomic
    /// step — no partially-reset state is ever observable, even when other
    /// channels share this meter. Typical use is zeroing the setup-phase
    /// traffic before measuring the per-email phase.
    pub fn reset(&self) {
        *self.inner.lock() = MeterInner::default();
    }

    fn record_send(&self, n: usize) {
        let mut g = self.inner.lock();
        g.bytes_sent += n as u64;
        g.messages_sent += 1;
    }

    fn record_recv(&self, n: usize) {
        let mut g = self.inner.lock();
        g.bytes_received += n as u64;
        g.messages_received += 1;
    }
}

/// A [`Channel`] decorator that records traffic volume in a shared [`Meter`].
pub struct MeteredChannel<C: Channel> {
    inner: C,
    meter: Meter,
}

impl<C: Channel> MeteredChannel<C> {
    /// Wraps `inner`, recording into a fresh meter.
    pub fn new(inner: C) -> Self {
        Self::with_meter(inner, Meter::new())
    }

    /// Wraps `inner`, recording into the supplied meter (lets several
    /// channels share one set of counters).
    pub fn with_meter(inner: C, meter: Meter) -> Self {
        MeteredChannel { inner, meter }
    }

    /// Handle to the meter.
    pub fn meter(&self) -> Meter {
        self.meter.clone()
    }

    /// Unwraps the inner channel.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Channel> Channel for MeteredChannel<C> {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        self.inner.send(msg)?;
        self.meter.record_send(msg.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let msg = self.inner.recv()?;
        self.meter.record_recv(msg.len());
        Ok(msg)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_pair;

    #[test]
    fn counts_bytes_and_messages_in_both_directions() {
        let (a, mut b) = memory_pair();
        let mut ma = MeteredChannel::new(a);
        let meter = ma.meter();

        ma.send(&[0u8; 100]).unwrap();
        ma.send(&[0u8; 23]).unwrap();
        b.send(&[0u8; 7]).unwrap();
        let _ = ma.recv().unwrap();

        assert_eq!(meter.bytes_sent(), 123);
        assert_eq!(meter.messages_sent(), 2);
        assert_eq!(meter.bytes_received(), 7);
        assert_eq!(meter.messages_received(), 1);
        assert_eq!(meter.total_bytes(), 130);
    }

    #[test]
    fn pool_depth_gauge_is_settable_and_shared() {
        let meter = Meter::new();
        assert_eq!(meter.pool_depth(), 0);
        let clone = meter.clone();
        clone.set_pool_depth(7);
        assert_eq!(meter.pool_depth(), 7, "gauge is shared across clones");
        clone.set_pool_depth(3);
        assert_eq!(meter.pool_depth(), 3, "last write wins");
    }

    #[test]
    fn per_kind_gauges_delegate_the_aggregate_and_count_fallbacks() {
        let meter = Meter::new();
        meter.set_pool_depth(9); // legacy scalar, soon shadowed
        meter.set_pool_gauge("garblings", 4, 1);
        meter.set_pool_gauge("zero_encryptions", 3, 2);
        assert_eq!(
            meter.pool_depth(),
            7,
            "aggregate delegates to the per-kind sum once any kind is set"
        );
        assert_eq!(meter.pool_gauge("garblings").depth, 4);
        assert_eq!(meter.pool_gauge("garblings").fallback_draws, 1);
        assert_eq!(meter.pool_gauge("unset").depth, 0);
        assert_eq!(meter.fallback_draws(), 3);
        let gauges = meter.pool_gauges();
        assert_eq!(gauges.len(), 2);
        assert_eq!(gauges[0].0, "garblings", "sorted by kind name");
        meter.set_pool_gauge("garblings", 0, 5);
        assert_eq!(
            meter.pool_gauge("garblings").fallback_draws,
            5,
            "last write wins"
        );
        meter.reset();
        assert!(
            meter.pool_gauges().is_empty(),
            "reset clears per-kind gauges"
        );
        assert_eq!(meter.pool_depth(), 0);
    }

    #[test]
    fn reset_clears_all_four_counters() {
        let (a, mut b) = memory_pair();
        let mut ma = MeteredChannel::new(a);
        ma.send(&[1, 2, 3]).unwrap();
        b.send(&[9]).unwrap();
        let _ = b.recv().unwrap();
        let _ = ma.recv().unwrap();
        let meter = ma.meter();
        meter.set_pool_depth(5);
        assert_eq!(meter.bytes_sent(), 3);
        assert_eq!(meter.bytes_received(), 1);
        meter.reset();
        assert_eq!(meter.pool_depth(), 0, "reset also zeroes the gauge");
        assert_eq!(meter.bytes_sent(), 0);
        assert_eq!(meter.bytes_received(), 0);
        assert_eq!(meter.messages_sent(), 0);
        assert_eq!(meter.messages_received(), 0);
        assert_eq!(meter.total_bytes(), 0);
    }

    /// Pins the documented counting semantics: payload bytes only, never the
    /// transport's framing overhead. A TCP frame is `4 + len` bytes on the
    /// wire, but the meter must report exactly `len`.
    #[test]
    fn tcp_meter_counts_payload_bytes_not_frame_bytes() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || crate::TcpChannel::connect(addr).unwrap());
        let (server_stream, _) = listener.accept().unwrap();
        let mut server = crate::TcpChannel::new(server_stream);
        let mut client = MeteredChannel::new(client.join().unwrap());
        let meter = client.meter();

        client.send(&[0u8; 1000]).unwrap();
        client.send(&[]).unwrap(); // empty frame: 4 wire bytes, 0 payload
        assert_eq!(server.recv().unwrap().len(), 1000);
        assert_eq!(server.recv().unwrap().len(), 0);
        server.send(&[0u8; 77]).unwrap();
        assert_eq!(client.recv().unwrap().len(), 77);

        // 1000 + 0 payload bytes sent (not 1004 + 4 frame bytes), 77 received
        // (not 81), and the empty message still counts as a message.
        assert_eq!(meter.bytes_sent(), 1000);
        assert_eq!(meter.messages_sent(), 2);
        assert_eq!(meter.bytes_received(), 77);
        assert_eq!(meter.messages_received(), 1);
    }

    /// Pins the failure-accounting semantics: a send that never reaches the
    /// wire (here: the peer is gone) must not inflate the counters.
    #[test]
    fn failed_send_does_not_count() {
        let (a, b) = memory_pair();
        let mut ma = MeteredChannel::new(a);
        drop(b);
        assert!(ma.send(&[0u8; 100]).is_err());
        let meter = ma.meter();
        assert_eq!(meter.bytes_sent(), 0);
        assert_eq!(meter.messages_sent(), 0);
    }

    #[test]
    fn shared_meter_aggregates_multiple_channels() {
        let meter = Meter::new();
        let (a1, mut b1) = memory_pair();
        let (a2, mut b2) = memory_pair();
        let mut m1 = MeteredChannel::with_meter(a1, meter.clone());
        let mut m2 = MeteredChannel::with_meter(a2, meter.clone());
        m1.send(&[0u8; 10]).unwrap();
        m2.send(&[0u8; 5]).unwrap();
        let _ = b1.recv().unwrap();
        let _ = b2.recv().unwrap();
        assert_eq!(meter.bytes_sent(), 15);
    }
}
