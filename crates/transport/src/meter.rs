//! Byte-counting channel decorator.
//!
//! The paper reports "network transfers" per email (Figures 6 and 11, and the
//! §6.1/§6.3 absolute-cost discussion). We reproduce those columns by wrapping
//! the protocol channel in a [`MeteredChannel`] and reading the shared
//! [`Meter`] after the protocol run.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Channel, Result};

#[derive(Default, Debug)]
struct MeterInner {
    bytes_sent: u64,
    bytes_received: u64,
    messages_sent: u64,
    messages_received: u64,
}

/// Shared counters for one endpoint of a metered channel.
#[derive(Clone, Default, Debug)]
pub struct Meter {
    inner: Arc<Mutex<MeterInner>>,
}

impl Meter {
    /// Creates a meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes sent through the wrapped channel (payload bytes; framing
    /// overhead of the underlying transport is not counted, matching the
    /// paper's accounting of ciphertext/message sizes).
    pub fn bytes_sent(&self) -> u64 {
        self.inner.lock().bytes_sent
    }

    /// Total bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.inner.lock().bytes_received
    }

    /// Total traffic in both directions.
    pub fn total_bytes(&self) -> u64 {
        let g = self.inner.lock();
        g.bytes_sent + g.bytes_received
    }

    /// Number of messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.inner.lock().messages_sent
    }

    /// Number of messages received.
    pub fn messages_received(&self) -> u64 {
        self.inner.lock().messages_received
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = MeterInner::default();
    }

    fn record_send(&self, n: usize) {
        let mut g = self.inner.lock();
        g.bytes_sent += n as u64;
        g.messages_sent += 1;
    }

    fn record_recv(&self, n: usize) {
        let mut g = self.inner.lock();
        g.bytes_received += n as u64;
        g.messages_received += 1;
    }
}

/// A [`Channel`] decorator that records traffic volume in a shared [`Meter`].
pub struct MeteredChannel<C: Channel> {
    inner: C,
    meter: Meter,
}

impl<C: Channel> MeteredChannel<C> {
    /// Wraps `inner`, recording into a fresh meter.
    pub fn new(inner: C) -> Self {
        Self::with_meter(inner, Meter::new())
    }

    /// Wraps `inner`, recording into the supplied meter (lets several
    /// channels share one set of counters).
    pub fn with_meter(inner: C, meter: Meter) -> Self {
        MeteredChannel { inner, meter }
    }

    /// Handle to the meter.
    pub fn meter(&self) -> Meter {
        self.meter.clone()
    }

    /// Unwraps the inner channel.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Channel> Channel for MeteredChannel<C> {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        self.meter.record_send(msg.len());
        self.inner.send(msg)
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let msg = self.inner.recv()?;
        self.meter.record_recv(msg.len());
        Ok(msg)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_pair;

    #[test]
    fn counts_bytes_and_messages_in_both_directions() {
        let (a, mut b) = memory_pair();
        let mut ma = MeteredChannel::new(a);
        let meter = ma.meter();

        ma.send(&[0u8; 100]).unwrap();
        ma.send(&[0u8; 23]).unwrap();
        b.send(&[0u8; 7]).unwrap();
        let _ = ma.recv().unwrap();

        assert_eq!(meter.bytes_sent(), 123);
        assert_eq!(meter.messages_sent(), 2);
        assert_eq!(meter.bytes_received(), 7);
        assert_eq!(meter.messages_received(), 1);
        assert_eq!(meter.total_bytes(), 130);
    }

    #[test]
    fn reset_clears_counters() {
        let (a, mut b) = memory_pair();
        let mut ma = MeteredChannel::new(a);
        ma.send(&[1, 2, 3]).unwrap();
        let _ = b.recv().unwrap();
        let meter = ma.meter();
        assert_eq!(meter.bytes_sent(), 3);
        meter.reset();
        assert_eq!(meter.bytes_sent(), 0);
        assert_eq!(meter.total_bytes(), 0);
    }

    #[test]
    fn shared_meter_aggregates_multiple_channels() {
        let meter = Meter::new();
        let (a1, mut b1) = memory_pair();
        let (a2, mut b2) = memory_pair();
        let mut m1 = MeteredChannel::with_meter(a1, meter.clone());
        let mut m2 = MeteredChannel::with_meter(a2, meter.clone());
        m1.send(&[0u8; 10]).unwrap();
        m2.send(&[0u8; 5]).unwrap();
        let _ = b1.recv().unwrap();
        let _ = b2.recv().unwrap();
        assert_eq!(meter.bytes_sent(), 15);
    }
}
