//! Length-prefixed framing over `std::net::TcpStream`.
//!
//! Frames are `u32` big-endian length followed by the payload. The maximum
//! frame size defaults to 256 MiB, comfortably above the largest message in
//! the Pretzel protocols (an encrypted topic-extraction model shard).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use bytes::{Buf, BufMut, BytesMut};

use crate::{Channel, Result, TransportError};

/// Default maximum accepted frame size (256 MiB).
pub const DEFAULT_MAX_FRAME: usize = 256 * 1024 * 1024;

/// A framed TCP channel.
pub struct TcpChannel {
    stream: TcpStream,
    read_buf: BytesMut,
    max_frame: usize,
}

impl TcpChannel {
    /// Wraps an already-connected stream.
    pub fn new(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        TcpChannel {
            stream,
            read_buf: BytesMut::with_capacity(64 * 1024),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Connects to a listening peer.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Ok(Self::new(TcpStream::connect(addr)?))
    }

    /// Accepts a single connection on `addr` (convenience for examples/tests).
    pub fn accept_one<A: ToSocketAddrs>(addr: A) -> Result<(Self, std::net::SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let (stream, peer) = listener.accept()?;
        Ok((Self::new(stream), peer))
    }

    /// Address of the remote peer.
    pub fn peer_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.stream.peer_addr()?)
    }

    /// Overrides the maximum frame size.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Local socket address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.stream.local_addr()?)
    }

    fn read_exact_into_buf(&mut self, needed: usize) -> Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        while self.read_buf.len() < needed {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(TransportError::Closed);
            }
            self.read_buf.put_slice(&chunk[..n]);
        }
        Ok(())
    }
}

/// A listening socket that yields framed [`TcpChannel`]s, one per inbound
/// connection — the transport half of a serving loop (the `pretzel_server`
/// mailroom submits each accepted channel to its worker pool).
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds a listening socket on `addr` (use port 0 for an ephemeral port,
    /// then read it back with [`TcpAcceptor::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Ok(TcpAcceptor {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Blocks until the next connection arrives and wraps it in a framed
    /// channel.
    pub fn accept(&self) -> Result<(TcpChannel, std::net::SocketAddr)> {
        let (stream, peer) = self.listener.accept()?;
        Ok((TcpChannel::new(stream), peer))
    }

    /// An iterator over inbound connections. Per-connection accept errors
    /// (ECONNABORTED, fd exhaustion, …) should not kill a serving loop, so
    /// they are dropped after a short backoff — the backoff keeps a
    /// persistent error (e.g. EMFILE) from busy-spinning the acceptor.
    pub fn incoming(&self) -> impl Iterator<Item = TcpChannel> + '_ {
        self.listener.incoming().filter_map(|stream| match stream {
            Ok(stream) => Some(TcpChannel::new(stream)),
            Err(_) => {
                std::thread::sleep(std::time::Duration::from_millis(10));
                None
            }
        })
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        if msg.len() > self.max_frame {
            return Err(TransportError::FrameTooLarge {
                size: msg.len(),
                max: self.max_frame,
            });
        }
        let len = (msg.len() as u32).to_be_bytes();
        self.stream.write_all(&len)?;
        self.stream.write_all(msg)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        self.read_exact_into_buf(4)?;
        let len = u32::from_be_bytes([
            self.read_buf[0],
            self.read_buf[1],
            self.read_buf[2],
            self.read_buf[3],
        ]) as usize;
        if len > self.max_frame {
            return Err(TransportError::FrameTooLarge {
                size: len,
                max: self.max_frame,
            });
        }
        self.read_exact_into_buf(4 + len)?;
        self.read_buf.advance(4);
        let payload = self.read_buf.split_to(len);
        Ok(payload.to_vec())
    }

    fn flush(&mut self) -> Result<()> {
        self.stream.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn tcp_pair() -> (TcpChannel, TcpChannel) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || TcpChannel::connect(addr).unwrap());
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpChannel::new(server_stream);
        let client = client_thread.join().unwrap();
        (server, client)
    }

    #[test]
    fn roundtrip_small_and_large_frames() {
        let (mut server, mut client) = tcp_pair();
        client.send(b"hello provider").unwrap();
        assert_eq!(server.recv().unwrap(), b"hello provider");

        let big = vec![0x5Au8; 3 * 1024 * 1024 + 17];
        server.send(&big).unwrap();
        assert_eq!(client.recv().unwrap(), big);
    }

    #[test]
    fn multiple_frames_preserve_boundaries() {
        let (mut server, mut client) = tcp_pair();
        client.send(b"one").unwrap();
        client.send(b"").unwrap();
        client.send(b"three").unwrap();
        assert_eq!(server.recv().unwrap(), b"one");
        assert_eq!(server.recv().unwrap(), b"");
        assert_eq!(server.recv().unwrap(), b"three");
    }

    #[test]
    fn oversized_frame_rejected_on_send() {
        let (mut server, _client) = tcp_pair();
        server.set_max_frame(8);
        let err = server.send(&[0u8; 9]).unwrap_err();
        assert!(matches!(
            err,
            TransportError::FrameTooLarge { size: 9, max: 8 }
        ));
    }

    #[test]
    fn acceptor_yields_a_channel_per_connection() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let clients = std::thread::spawn(move || {
            for i in 0..3u8 {
                let mut chan = TcpChannel::connect(addr).unwrap();
                chan.send(&[i]).unwrap();
                assert_eq!(chan.recv().unwrap(), vec![i + 100]);
            }
        });
        for _ in 0..3 {
            let (mut chan, peer) = acceptor.accept().unwrap();
            assert_eq!(chan.peer_addr().unwrap(), peer);
            let id = chan.recv().unwrap()[0];
            chan.send(&[id + 100]).unwrap();
        }
        clients.join().unwrap();
    }

    #[test]
    fn incoming_iterator_serves_connections() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(addr).unwrap();
            chan.send(b"hi").unwrap();
        });
        let mut first = acceptor.incoming().next().unwrap();
        assert_eq!(first.recv().unwrap(), b"hi");
        client.join().unwrap();
    }

    #[test]
    fn peer_close_is_reported() {
        let (server, mut client) = tcp_pair();
        drop(server);
        assert!(client.recv().is_err());
    }
}
