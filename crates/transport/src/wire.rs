//! Versioned wire protocol: explicit protocol versions, capability
//! negotiation, and the codecs that frame every post-handshake message.
//!
//! Until this module existed the frame format was an *implicit* v1 — the
//! session handshake was a bare `[wire_tag, variant]` byte pair and every
//! payload travelled raw, so any codec change was a flag-day for the whole
//! fleet. Following the backward-compatible protocol upgrade discipline of
//! Costa & Schapira (see PAPERS.md), versioning is now first-class:
//!
//! * [`ProtocolVersion`] enumerates the wire protocol generations. **v1** is
//!   frozen forever: its handshake and frames are byte-identical to the
//!   pre-versioning format, pinned by golden-bytes tests
//!   (`tests/wire_compat.rs`). **v2** adds an explicit handshake and a
//!   framed codec.
//! * [`HandshakeOffer`] / [`HandshakeAck`] are the v2 negotiation exchange:
//!   the client offers a version range, its wire tag/variant, and a
//!   [`Capabilities`] bit set; the provider picks one version
//!   ([`negotiate`]) and acks it together with the granted capabilities.
//!   The offer's leading byte is the *reserved* wire tag `0`, which no
//!   module can register, so a provider can always tell an offer from a
//!   legacy 2-byte v1 handshake — one mailroom serves both generations on
//!   the same port.
//! * [`WireCodec`] frames every post-handshake message. [`V1Codec`] is the
//!   identity (raw payloads, exactly the legacy bytes); [`V2Codec`] prefixes
//!   each payload with a header carrying the version byte, a flags byte, the
//!   payload length, and a CRC-32 frame checksum, so corruption surfaces as
//!   a clean [`TransportError::Codec`] instead of a protocol misparse.
//!   [`CodecChannel`] applies the negotiated codec to any [`Channel`].
//!
//! Forward compatibility rules (the part that makes rolling upgrades safe):
//! unknown capability bits in an offer are **ignored, never rejected**;
//! offers longer than the fields this version knows are accepted (trailing
//! bytes ignored); unknown v2 header flags are carried, not refused. Only
//! structurally broken frames (truncation, bad magic, checksum mismatch,
//! inverted version spans) are errors. The full layout of every frame is
//! specified in `docs/WIRE.md`.

use std::fmt;

use crate::{Channel, Result, TransportError};

// ---------------------------------------------------------------------------
// Protocol versions
// ---------------------------------------------------------------------------

/// One generation of the wire protocol.
///
/// Ordered: a higher variant is a newer protocol. [`negotiate`] picks the
/// highest version inside both peers' ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ProtocolVersion {
    /// The frozen legacy protocol: bare `[wire_tag, variant]` handshake,
    /// raw (identity-coded) frames, no capability bits. Byte-identical to
    /// the format that predates versioning.
    V1 = 1,
    /// Explicit handshake ([`HandshakeOffer`]/[`HandshakeAck`]) and framed
    /// [`V2Codec`] payloads with a per-frame checksum; optional features are
    /// gated by negotiated [`Capabilities`].
    V2 = 2,
}

impl ProtocolVersion {
    /// Oldest version this build speaks.
    pub const MIN: ProtocolVersion = ProtocolVersion::V1;
    /// Newest version this build speaks.
    pub const MAX: ProtocolVersion = ProtocolVersion::V2;

    /// The version's wire byte.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Decodes a version byte; `None` for versions this build does not know.
    pub fn from_byte(b: u8) -> Option<ProtocolVersion> {
        match b {
            1 => Some(ProtocolVersion::V1),
            2 => Some(ProtocolVersion::V2),
            _ => None,
        }
    }
}

impl fmt::Display for ProtocolVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", *self as u8)
    }
}

// ---------------------------------------------------------------------------
// Capabilities
// ---------------------------------------------------------------------------

/// A set of optional protocol features, encoded as a 64-bit little-endian
/// mask in [`HandshakeOffer`] / [`HandshakeAck`] frames.
///
/// Capability bits only exist from v2 on (a v1 session always has the empty
/// set). Unknown bits are preserved by [`Capabilities::from_bits`] so a
/// frame round-trips byte-for-byte, but negotiation masks both sides to
/// [`Capabilities::KNOWN`] — a newer peer's future bits are ignored, never
/// rejected. The bit assignments are a registry, documented in
/// `docs/WIRE.md`; bits are append-only and never reused.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Capabilities(u64);

impl Capabilities {
    /// The empty set.
    pub const NONE: Capabilities = Capabilities(0);
    /// Bit 0: the peer can serve coalesced multi-round batches announced by
    /// a `ROUND_BATCH` control frame. v2-only; v1 peers fall back to
    /// sequential rounds.
    pub const ROUND_BATCH: Capabilities = Capabilities(1 << 0);
    /// Every bit this build understands.
    pub const KNOWN: Capabilities = Capabilities::ROUND_BATCH;

    /// Builds a set from a raw mask, preserving unknown bits.
    pub fn from_bits(bits: u64) -> Capabilities {
        Capabilities(bits)
    }

    /// The raw mask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// This set restricted to the bits this build understands.
    pub fn known(self) -> Capabilities {
        Capabilities(self.0 & Capabilities::KNOWN.0)
    }

    /// Whether every bit of `other` is present in `self`.
    pub fn contains(self, other: Capabilities) -> bool {
        self.0 & other.0 == other.0
    }

    /// Bits of `other` that are missing from `self`.
    pub fn missing_from(self, other: Capabilities) -> Capabilities {
        Capabilities(other.0 & !self.0)
    }

    /// Whether no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Capabilities {
    type Output = Capabilities;
    fn bitor(self, rhs: Capabilities) -> Capabilities {
        Capabilities(self.0 | rhs.0)
    }
}

impl std::ops::BitAnd for Capabilities {
    type Output = Capabilities;
    fn bitand(self, rhs: Capabilities) -> Capabilities {
        Capabilities(self.0 & rhs.0)
    }
}

impl fmt::Debug for Capabilities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Capabilities(NONE)");
        }
        let mut parts: Vec<String> = Vec::new();
        if self.contains(Capabilities::ROUND_BATCH) {
            parts.push("ROUND_BATCH".into());
        }
        let unknown = self.0 & !Capabilities::KNOWN.0;
        if unknown != 0 {
            parts.push(format!("unknown:{unknown:#x}"));
        }
        write!(f, "Capabilities({})", parts.join("|"))
    }
}

// ---------------------------------------------------------------------------
// Handshake frames
// ---------------------------------------------------------------------------

/// Leading bytes of every v2 handshake frame: the reserved wire tag `0`
/// (which [`crate`]-level registries can never assign to a module, so a
/// legacy peer's `[wire_tag, variant]` pair can never collide) followed by
/// the ASCII letters `PZ`.
pub const HANDSHAKE_MAGIC: [u8; 3] = [0x00, b'P', b'Z'];

/// Encoded length of a [`HandshakeOffer`] this build emits. Decoders accept
/// longer frames and ignore the trailing bytes (forward compatibility).
pub const OFFER_LEN: usize = 15;

/// Encoded length of a [`HandshakeAck`] this build emits. Decoders accept
/// longer frames and ignore the trailing bytes.
pub const ACK_LEN: usize = 14;

/// The client's opening frame of a v2 session: "I speak versions
/// `min..=max`, I want module `wire_tag` with AHE variant `variant`, and I
/// can use these optional features."
///
/// Layout (`docs/WIRE.md`): `magic[3] ‖ min ‖ max ‖ wire_tag ‖ variant ‖
/// capabilities:u64le`. Version bounds travel as raw bytes — a client may
/// legitimately offer a maximum newer than this build knows, and the
/// provider clamps during [`negotiate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandshakeOffer {
    /// Oldest protocol version the client accepts (raw wire byte).
    pub min_version: u8,
    /// Newest protocol version the client accepts (raw wire byte).
    pub max_version: u8,
    /// The function module's handshake byte (same meaning as the first byte
    /// of a legacy v1 handshake).
    pub wire_tag: u8,
    /// The AHE variant byte (same meaning as the second legacy byte).
    pub variant: u8,
    /// Optional features the client is prepared to use.
    pub capabilities: Capabilities,
}

impl HandshakeOffer {
    /// Serializes the offer to its wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(OFFER_LEN);
        out.extend_from_slice(&HANDSHAKE_MAGIC);
        out.push(self.min_version);
        out.push(self.max_version);
        out.push(self.wire_tag);
        out.push(self.variant);
        out.extend_from_slice(&self.capabilities.bits().to_le_bytes());
        out
    }

    /// Parses an offer frame. Trailing bytes beyond the fields this build
    /// knows are ignored; truncation and a bad magic are
    /// [`HandshakeError::Malformed`].
    pub fn decode(frame: &[u8]) -> std::result::Result<HandshakeOffer, HandshakeError> {
        if frame.len() < HANDSHAKE_MAGIC.len() || frame[..3] != HANDSHAKE_MAGIC {
            return Err(HandshakeError::Malformed(format!(
                "offer does not start with the v2 handshake magic (got {:?})",
                &frame[..frame.len().min(3)]
            )));
        }
        if frame.len() < OFFER_LEN {
            return Err(HandshakeError::Malformed(format!(
                "truncated offer: {} bytes, need {OFFER_LEN}",
                frame.len()
            )));
        }
        let caps = u64::from_le_bytes(frame[7..15].try_into().expect("8-byte slice"));
        Ok(HandshakeOffer {
            min_version: frame[3],
            max_version: frame[4],
            wire_tag: frame[5],
            variant: frame[6],
            capabilities: Capabilities::from_bits(caps),
        })
    }

    /// Whether a first frame is a v2 handshake offer (as opposed to a legacy
    /// 2-byte v1 handshake or garbage).
    pub fn looks_like_offer(frame: &[u8]) -> bool {
        frame.len() >= HANDSHAKE_MAGIC.len() && frame[..3] == HANDSHAKE_MAGIC
    }
}

/// Ack status byte: the offer was accepted.
const ACK_OK: u8 = 0;
/// Ack status byte: no version overlap; payload carries the provider range.
const ACK_VERSION_MISMATCH: u8 = 1;
/// Ack status byte: a required capability was not granted.
const ACK_CAPABILITY_REFUSED: u8 = 2;
/// Ack status byte: the offered wire tag is not registered at the provider.
const ACK_UNKNOWN_TAG: u8 = 3;
/// Ack status byte: the offer was structurally invalid.
const ACK_MALFORMED: u8 = 4;

/// The provider's reply to a [`HandshakeOffer`]: the picked version and
/// granted capabilities, or a structured refusal.
///
/// Layout: `magic[3] ‖ status ‖ a ‖ b ‖ capabilities:u64le`, where the
/// meaning of `a`/`b`/`capabilities` depends on `status` — see
/// `docs/WIRE.md`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandshakeAck {
    /// Offer accepted: every following frame uses `version`'s codec and the
    /// session may use exactly `capabilities`.
    Accept {
        /// The negotiated protocol version.
        version: ProtocolVersion,
        /// The granted capability set (already masked to known bits).
        capabilities: Capabilities,
    },
    /// Offer refused; the payload is the mirrored [`HandshakeError`].
    Refuse(HandshakeError),
}

impl HandshakeAck {
    /// Serializes the ack to its wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ACK_LEN);
        out.extend_from_slice(&HANDSHAKE_MAGIC);
        match self {
            HandshakeAck::Accept {
                version,
                capabilities,
            } => {
                out.push(ACK_OK);
                out.push(version.as_byte());
                out.push(0);
                out.extend_from_slice(&capabilities.bits().to_le_bytes());
            }
            HandshakeAck::Refuse(err) => match err {
                HandshakeError::VersionMismatch {
                    supported_min,
                    supported_max,
                    ..
                } => {
                    out.push(ACK_VERSION_MISMATCH);
                    out.push(*supported_min);
                    out.push(*supported_max);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
                HandshakeError::CapabilityRefused { missing } => {
                    out.push(ACK_CAPABILITY_REFUSED);
                    out.push(0);
                    out.push(0);
                    out.extend_from_slice(&missing.bits().to_le_bytes());
                }
                HandshakeError::UnknownTag { tag } => {
                    out.push(ACK_UNKNOWN_TAG);
                    out.push(*tag);
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
                HandshakeError::Malformed(_) => {
                    out.push(ACK_MALFORMED);
                    out.push(0);
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
            },
        }
        out
    }

    /// Parses an ack frame (the client side of the exchange). Trailing bytes
    /// are ignored; unknown status bytes are [`HandshakeError::Malformed`]
    /// so a *future* refusal reason still fails cleanly.
    pub fn decode(frame: &[u8]) -> std::result::Result<HandshakeAck, HandshakeError> {
        if frame.len() < ACK_LEN || frame[..3] != HANDSHAKE_MAGIC {
            return Err(HandshakeError::Malformed(format!(
                "handshake ack is not a {ACK_LEN}-byte magic-prefixed frame ({} bytes)",
                frame.len()
            )));
        }
        let caps = Capabilities::from_bits(u64::from_le_bytes(
            frame[6..14].try_into().expect("8-byte slice"),
        ));
        match frame[3] {
            ACK_OK => {
                let version = ProtocolVersion::from_byte(frame[4]).ok_or_else(|| {
                    HandshakeError::Malformed(format!(
                        "provider acked unknown protocol version byte {}",
                        frame[4]
                    ))
                })?;
                Ok(HandshakeAck::Accept {
                    version,
                    capabilities: caps.known(),
                })
            }
            ACK_VERSION_MISMATCH => Ok(HandshakeAck::Refuse(HandshakeError::VersionMismatch {
                offered_min: 0,
                offered_max: 0,
                supported_min: frame[4],
                supported_max: frame[5],
            })),
            ACK_CAPABILITY_REFUSED => Ok(HandshakeAck::Refuse(HandshakeError::CapabilityRefused {
                missing: caps,
            })),
            ACK_UNKNOWN_TAG => Ok(HandshakeAck::Refuse(HandshakeError::UnknownTag {
                tag: frame[4],
            })),
            ACK_MALFORMED => Ok(HandshakeAck::Refuse(HandshakeError::Malformed(
                "provider judged the offer malformed".into(),
            ))),
            other => Err(HandshakeError::Malformed(format!(
                "unknown handshake ack status byte {other}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake errors
// ---------------------------------------------------------------------------

/// Structured handshake failure — the one error family for everything that
/// can go wrong between a session's first frame and its negotiated profile
/// (previously smeared across `TransportError` and stringly protocol
/// errors). A provider fails only the offending session on these; the
/// serving loop is untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandshakeError {
    /// The offered wire tag is not registered at the provider.
    UnknownTag {
        /// The tag nobody registered.
        tag: u8,
    },
    /// The peers' version ranges do not overlap.
    VersionMismatch {
        /// Oldest version the client offered (0 when unknown client-side).
        offered_min: u8,
        /// Newest version the client offered (0 when unknown client-side).
        offered_max: u8,
        /// Oldest version the provider speaks.
        supported_min: u8,
        /// Newest version the provider speaks.
        supported_max: u8,
    },
    /// A capability the module requires was not offered/granted.
    CapabilityRefused {
        /// The required bits that are missing.
        missing: Capabilities,
    },
    /// A structurally invalid handshake frame (truncated offer, bad magic,
    /// inverted version span, …).
    Malformed(String),
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::UnknownTag { tag } => {
                write!(f, "unknown function-module wire tag {tag}")
            }
            HandshakeError::VersionMismatch {
                offered_min,
                offered_max,
                supported_min,
                supported_max,
            } => write!(
                f,
                "no protocol version overlap: offered {offered_min}..={offered_max}, \
                 supported {supported_min}..={supported_max}"
            ),
            HandshakeError::CapabilityRefused { missing } => {
                write!(f, "required capabilities refused: {missing:?}")
            }
            HandshakeError::Malformed(why) => write!(f, "malformed handshake: {why}"),
        }
    }
}

impl std::error::Error for HandshakeError {}

// ---------------------------------------------------------------------------
// Negotiation
// ---------------------------------------------------------------------------

/// The provider side's negotiation inputs: which versions it speaks, which
/// capabilities it can grant, and which ones the selected module requires.
#[derive(Clone, Copy, Debug)]
pub struct NegotiationPolicy {
    /// Oldest version the provider serves.
    pub min_version: ProtocolVersion,
    /// Newest version the provider serves.
    pub max_version: ProtocolVersion,
    /// Capabilities the provider is willing to grant for this module.
    pub capabilities: Capabilities,
    /// Capabilities the module cannot run without; negotiation fails with
    /// [`HandshakeError::CapabilityRefused`] when one is not granted.
    pub required: Capabilities,
}

impl Default for NegotiationPolicy {
    fn default() -> Self {
        NegotiationPolicy {
            min_version: ProtocolVersion::MIN,
            max_version: ProtocolVersion::MAX,
            capabilities: Capabilities::KNOWN,
            required: Capabilities::NONE,
        }
    }
}

/// The outcome of a successful handshake: the version framing every later
/// message and the feature set both sides agreed on. Carried by
/// `ProviderSession` / `ClientSession` and surfaced in the serving layer's
/// per-session stats.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NegotiatedProfile {
    /// The protocol version both peers speak for this session.
    pub version: ProtocolVersion,
    /// The optional features both peers agreed to use.
    pub capabilities: Capabilities,
}

impl NegotiatedProfile {
    /// The implicit profile of a legacy session that never negotiated:
    /// protocol v1, no capabilities.
    pub fn legacy_v1() -> NegotiatedProfile {
        NegotiatedProfile {
            version: ProtocolVersion::V1,
            capabilities: Capabilities::NONE,
        }
    }

    /// Whether every bit of `caps` was negotiated.
    pub fn supports(&self, caps: Capabilities) -> bool {
        self.capabilities.contains(caps)
    }

    /// The codec framing this session's post-handshake messages.
    pub fn codec(&self) -> &'static dyn WireCodec {
        codec_for(self.version)
    }
}

impl Default for NegotiatedProfile {
    fn default() -> Self {
        NegotiatedProfile::legacy_v1()
    }
}

/// Provider-side version/capability selection.
///
/// Picks the newest version inside both ranges; capability bits are the
/// intersection of the offer and the policy, masked to [`Capabilities::KNOWN`]
/// (unknown bits from a newer peer are ignored, not rejected) and forced
/// empty for v1 (capabilities are a v2 concept). Fails with a structured
/// [`HandshakeError`] when the spans are inverted, disjoint, or a required
/// capability is missing.
pub fn negotiate(
    offer: &HandshakeOffer,
    policy: &NegotiationPolicy,
) -> std::result::Result<NegotiatedProfile, HandshakeError> {
    if offer.min_version == 0 || offer.min_version > offer.max_version {
        return Err(HandshakeError::Malformed(format!(
            "invalid offered version span {}..={}",
            offer.min_version, offer.max_version
        )));
    }
    let pick = offer.max_version.min(policy.max_version.as_byte());
    if pick < offer.min_version || pick < policy.min_version.as_byte() {
        return Err(HandshakeError::VersionMismatch {
            offered_min: offer.min_version,
            offered_max: offer.max_version,
            supported_min: policy.min_version.as_byte(),
            supported_max: policy.max_version.as_byte(),
        });
    }
    let version = ProtocolVersion::from_byte(pick).expect("pick is clamped to a known version");
    let capabilities = if version == ProtocolVersion::V1 {
        Capabilities::NONE
    } else {
        offer.capabilities.known() & policy.capabilities.known()
    };
    if !capabilities.contains(policy.required) {
        return Err(HandshakeError::CapabilityRefused {
            missing: capabilities.missing_from(policy.required),
        });
    }
    Ok(NegotiatedProfile {
        version,
        capabilities,
    })
}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

/// Frames one protocol version's post-handshake messages.
///
/// A codec is pure framing: it must be deterministic, byte-preserving
/// (`decode(encode(p)) == p`) and stateless, so both directions of a channel
/// share one instance. Protocol semantics (round structure, batching) live
/// above; transport integrity (checksums, length framing) lives here.
pub trait WireCodec: Send + Sync {
    /// The protocol version this codec frames.
    fn version(&self) -> ProtocolVersion;

    /// Wraps one payload into its wire frame.
    fn encode(&self, payload: &[u8]) -> Vec<u8>;

    /// Unwraps one wire frame back into its payload, validating framing and
    /// checksum. Structural failures are [`TransportError::Codec`].
    fn decode(&self, frame: &[u8]) -> Result<Vec<u8>>;
}

/// The frozen v1 codec: the identity. Payloads travel as raw frames,
/// byte-identical to the format that predates versioning — pinned forever
/// by the golden-bytes fixtures in `tests/wire_compat.rs` and the
/// `wire-compat` CI job.
#[derive(Clone, Copy, Debug, Default)]
pub struct V1Codec;

impl WireCodec for V1Codec {
    fn version(&self) -> ProtocolVersion {
        ProtocolVersion::V1
    }

    fn encode(&self, payload: &[u8]) -> Vec<u8> {
        payload.to_vec()
    }

    fn decode(&self, frame: &[u8]) -> Result<Vec<u8>> {
        Ok(frame.to_vec())
    }
}

/// Byte length of the [`V2Codec`] frame header.
pub const V2_HEADER_LEN: usize = 10;

/// The v2 codec: `version:u8 ‖ flags:u8 ‖ len:u32le ‖ crc32:u32le ‖
/// payload`.
///
/// * `version` pins the frame to its protocol generation — a stray v1 frame
///   (or garbage) on a v2 session fails loudly instead of misparsing.
/// * `flags` is reserved; this build emits 0 and **ignores** unknown bits on
///   receive (forward compatibility).
/// * `len` must equal the payload length remaining in the frame.
/// * `crc32` (IEEE, reflected) covers the payload only.
#[derive(Clone, Copy, Debug, Default)]
pub struct V2Codec;

impl WireCodec for V2Codec {
    fn version(&self) -> ProtocolVersion {
        ProtocolVersion::V2
    }

    fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(V2_HEADER_LEN + payload.len());
        out.push(ProtocolVersion::V2.as_byte());
        out.push(0); // flags: none defined yet
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    fn decode(&self, frame: &[u8]) -> Result<Vec<u8>> {
        let corrupt = |why: String| TransportError::Codec(why);
        if frame.len() < V2_HEADER_LEN {
            return Err(corrupt(format!(
                "v2 frame of {} bytes is shorter than its {V2_HEADER_LEN}-byte header",
                frame.len()
            )));
        }
        if frame[0] != ProtocolVersion::V2.as_byte() {
            return Err(corrupt(format!(
                "frame version byte {} on a v2 session",
                frame[0]
            )));
        }
        // frame[1] is the flags byte: unknown flags are ignored by design.
        let len = u32::from_le_bytes(frame[2..6].try_into().expect("4-byte slice")) as usize;
        let payload = &frame[V2_HEADER_LEN..];
        if len != payload.len() {
            return Err(corrupt(format!(
                "v2 header declares {len} payload bytes, frame carries {}",
                payload.len()
            )));
        }
        let declared = u32::from_le_bytes(frame[6..10].try_into().expect("4-byte slice"));
        let actual = crc32(payload);
        if declared != actual {
            return Err(corrupt(format!(
                "v2 frame checksum mismatch: header {declared:#010x}, payload {actual:#010x}"
            )));
        }
        Ok(payload.to_vec())
    }
}

static V1_CODEC: V1Codec = V1Codec;
static V2_CODEC: V2Codec = V2Codec;

/// The shared codec instance for a protocol version.
pub fn codec_for(version: ProtocolVersion) -> &'static dyn WireCodec {
    match version {
        ProtocolVersion::V1 => &V1_CODEC,
        ProtocolVersion::V2 => &V2_CODEC,
    }
}

/// A [`Channel`] decorator applying a negotiated [`WireCodec`] to every
/// message: encode on send, decode (with framing/checksum validation) on
/// receive. With [`V1Codec`] this is a zero-cost-in-bytes pass-through, so
/// one code path serves both protocol generations.
pub struct CodecChannel<C: Channel> {
    inner: C,
    codec: &'static dyn WireCodec,
}

impl<C: Channel> CodecChannel<C> {
    /// Wraps `inner` with the codec of `version`.
    pub fn new(inner: C, version: ProtocolVersion) -> Self {
        CodecChannel {
            inner,
            codec: codec_for(version),
        }
    }

    /// The protocol version this channel frames for.
    pub fn version(&self) -> ProtocolVersion {
        self.codec.version()
    }

    /// Unwraps back to the underlying channel.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Borrows the underlying channel.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Channel> Channel for CodecChannel<C> {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        self.inner.send(&self.codec.encode(msg))
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        let frame = self.inner.recv()?;
        self.codec.decode(&frame)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// 256-entry lookup table for the IEEE 802.3 reflected CRC-32 polynomial.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) over `data` — the [`V2Codec`]
/// frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn offer_round_trips_and_ignores_trailing_bytes() {
        let offer = HandshakeOffer {
            min_version: 1,
            max_version: 2,
            wire_tag: 4,
            variant: 1,
            capabilities: Capabilities::ROUND_BATCH,
        };
        let mut frame = offer.encode();
        assert_eq!(frame.len(), OFFER_LEN);
        assert_eq!(HandshakeOffer::decode(&frame).unwrap(), offer);
        // A future, longer offer still parses (extra fields ignored).
        frame.extend_from_slice(&[0xAA; 7]);
        assert_eq!(HandshakeOffer::decode(&frame).unwrap(), offer);
    }

    #[test]
    fn truncated_and_unmagical_offers_are_malformed() {
        let offer = HandshakeOffer {
            min_version: 1,
            max_version: 2,
            wire_tag: 1,
            variant: 1,
            capabilities: Capabilities::NONE,
        }
        .encode();
        for cut in 0..OFFER_LEN {
            assert!(
                matches!(
                    HandshakeOffer::decode(&offer[..cut]),
                    Err(HandshakeError::Malformed(_))
                ),
                "truncation at {cut} must be malformed"
            );
        }
        assert!(
            HandshakeOffer::decode(&[1, 1]).is_err(),
            "legacy bytes are not an offer"
        );
        assert!(!HandshakeOffer::looks_like_offer(&[1, 1]));
        assert!(HandshakeOffer::looks_like_offer(&offer));
    }

    #[test]
    fn ack_round_trips_accept_and_refusals() {
        let accept = HandshakeAck::Accept {
            version: ProtocolVersion::V2,
            capabilities: Capabilities::ROUND_BATCH,
        };
        assert_eq!(HandshakeAck::decode(&accept.encode()).unwrap(), accept);

        for refusal in [
            HandshakeError::VersionMismatch {
                offered_min: 0,
                offered_max: 0,
                supported_min: 1,
                supported_max: 2,
            },
            HandshakeError::CapabilityRefused {
                missing: Capabilities::ROUND_BATCH,
            },
            HandshakeError::UnknownTag { tag: 0xEE },
        ] {
            let decoded = HandshakeAck::decode(&HandshakeAck::Refuse(refusal.clone()).encode());
            assert_eq!(decoded.unwrap(), HandshakeAck::Refuse(refusal));
        }
    }

    #[test]
    fn negotiation_picks_the_newest_common_version() {
        let policy = NegotiationPolicy::default();
        let offer = |min, max| HandshakeOffer {
            min_version: min,
            max_version: max,
            wire_tag: 1,
            variant: 1,
            capabilities: Capabilities::ROUND_BATCH,
        };
        assert_eq!(
            negotiate(&offer(1, 2), &policy).unwrap().version,
            ProtocolVersion::V2
        );
        // Client from the future: clamped to our max, not refused.
        assert_eq!(
            negotiate(&offer(1, 9), &policy).unwrap().version,
            ProtocolVersion::V2
        );
        // Both sides only as new as v1: capabilities forced empty.
        let v1 = negotiate(&offer(1, 1), &policy).unwrap();
        assert_eq!(v1.version, ProtocolVersion::V1);
        assert!(v1.capabilities.is_empty());
    }

    #[test]
    fn negotiation_rejects_bad_spans_and_masks_unknown_capabilities() {
        let policy = NegotiationPolicy::default();
        let offer = |min, max, caps| HandshakeOffer {
            min_version: min,
            max_version: max,
            wire_tag: 1,
            variant: 1,
            capabilities: Capabilities::from_bits(caps),
        };
        // Inverted and zero spans are malformed, not mismatches.
        assert!(matches!(
            negotiate(&offer(2, 1, 0), &policy),
            Err(HandshakeError::Malformed(_))
        ));
        assert!(matches!(
            negotiate(&offer(0, 2, 0), &policy),
            Err(HandshakeError::Malformed(_))
        ));
        // A future-only client is a clean mismatch carrying both ranges.
        assert!(matches!(
            negotiate(&offer(7, 9, 0), &policy),
            Err(HandshakeError::VersionMismatch {
                supported_max: 2,
                ..
            })
        ));
        // Unknown capability bits are ignored, not rejected.
        let profile = negotiate(&offer(1, 2, (1 << 40) | 1), &policy).unwrap();
        assert_eq!(profile.capabilities, Capabilities::ROUND_BATCH);
        // Required capabilities missing from the offer are a refusal.
        let strict = NegotiationPolicy {
            required: Capabilities::ROUND_BATCH,
            ..NegotiationPolicy::default()
        };
        assert!(matches!(
            negotiate(&offer(1, 2, 0), &strict),
            Err(HandshakeError::CapabilityRefused { .. })
        ));
    }

    #[test]
    fn v1_codec_is_the_identity() {
        let payloads: [&[u8]; 4] = [b"", b"\x00", b"hello", &[0xFF; 300]];
        for p in payloads {
            assert_eq!(V1_CODEC.encode(p), p, "v1 encode must be the identity");
            assert_eq!(V1_CODEC.decode(p).unwrap(), p);
        }
    }

    #[test]
    fn v2_codec_round_trips_and_rejects_corruption() {
        let payload = b"per-email round payload".to_vec();
        let frame = V2_CODEC.encode(&payload);
        assert_eq!(frame.len(), V2_HEADER_LEN + payload.len());
        assert_eq!(V2_CODEC.decode(&frame).unwrap(), payload);

        // Any single-bit flip in header or payload is caught — except the
        // flags byte (index 1), which is reserved and ignored by design.
        for byte in (0..frame.len()).filter(|&b| b != 1) {
            let mut bad = frame.clone();
            bad[byte] ^= 0x01;
            assert!(
                V2_CODEC.decode(&bad).is_err(),
                "bit flip at byte {byte} must be rejected"
            );
        }
        // Truncation is caught.
        for cut in 0..frame.len() {
            assert!(V2_CODEC.decode(&frame[..cut]).is_err());
        }
        // Unknown flags are ignored (forward compatibility), not rejected.
        let mut flagged = V2_CODEC.encode(&payload);
        flagged[1] = 0x80;
        assert_eq!(V2_CODEC.decode(&flagged).unwrap(), payload);
    }

    #[test]
    fn codec_channel_applies_the_negotiated_framing() {
        let (a, b) = crate::memory_pair();
        let mut a = CodecChannel::new(a, ProtocolVersion::V2);
        let mut b = CodecChannel::new(b, ProtocolVersion::V2);
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        // A raw (uncoded) frame on a v2 session fails loudly.
        b.inner.send(b"raw").unwrap();
        assert!(matches!(a.recv(), Err(TransportError::Codec(_))));
    }
}
