//! Batch framing: coalescing several payload frames into one wire frame.
//!
//! Batched rounds (see `pretzel_core`'s `process_batch` entry points) send
//! the per-round payloads of N rounds as **one** channel message instead of
//! N. On a [`crate::MemoryChannel`] that saves N−1 cross-thread hand-offs,
//! on a [`crate::TcpChannel`] N−1 length-prefixed frames and syscalls —
//! batching trades latency of the first round for aggregate throughput.
//!
//! The encoding is deliberately minimal: a `u32` sub-frame count followed by
//! each sub-frame as a `u32` byte length and its payload, all little-endian.
//! [`unpack_frames`] validates every length against the remaining buffer, so
//! a truncated or corrupt batch surfaces as a clean
//! [`crate::TransportError::MalformedBatch`] instead of a misparse.

use crate::{Result, TransportError};

/// Coalesces `frames` into one batch frame for a single `send`.
///
/// The inverse of [`unpack_frames`].
pub fn pack_frames<F: AsRef<[u8]>>(frames: &[F]) -> Vec<u8> {
    let total: usize = frames.iter().map(|f| f.as_ref().len() + 4).sum();
    let mut out = Vec::with_capacity(4 + total);
    out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
    for frame in frames {
        let frame = frame.as_ref();
        out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        out.extend_from_slice(frame);
    }
    out
}

/// Splits a batch frame produced by [`pack_frames`] back into its
/// sub-frames, validating every length prefix against the buffer.
pub fn unpack_frames(blob: &[u8]) -> Result<Vec<Vec<u8>>> {
    let malformed = |why: &str| TransportError::MalformedBatch(why.to_string());
    let header = |b: &[u8], at: usize| -> Result<u32> {
        b.get(at..at + 4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4-byte slice")))
            .ok_or_else(|| malformed("truncated length prefix"))
    };
    let count = header(blob, 0)? as usize;
    // A count the buffer cannot possibly hold (each sub-frame costs at least
    // its 4-byte prefix) is rejected before any allocation sized by it.
    if count > blob.len() / 4 {
        return Err(malformed("sub-frame count exceeds buffer capacity"));
    }
    let mut frames = Vec::with_capacity(count);
    let mut at = 4usize;
    for _ in 0..count {
        let len = header(blob, at)? as usize;
        at += 4;
        let frame = blob
            .get(at..at + len)
            .ok_or_else(|| malformed("sub-frame overruns buffer"))?;
        frames.push(frame.to_vec());
        at += len;
    }
    if at != blob.len() {
        return Err(malformed("trailing bytes after final sub-frame"));
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_including_empty_frames() {
        let frames: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![0xFF; 1000]];
        let packed = pack_frames(&frames);
        assert_eq!(unpack_frames(&packed).unwrap(), frames);
        let empty: Vec<Vec<u8>> = Vec::new();
        assert_eq!(unpack_frames(&pack_frames(&empty)).unwrap(), empty);
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        let packed = pack_frames(&[vec![1u8, 2, 3], vec![4, 5]]);
        for cut in 0..packed.len() {
            assert!(
                unpack_frames(&packed[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut extended = packed.clone();
        extended.push(0);
        assert!(matches!(
            unpack_frames(&extended),
            Err(TransportError::MalformedBatch(_))
        ));
    }

    #[test]
    fn rejects_absurd_counts_without_allocating() {
        let mut blob = Vec::new();
        blob.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            unpack_frames(&blob),
            Err(TransportError::MalformedBatch(_))
        ));
    }
}
