//! Message-oriented two-party transport used by every interactive protocol in
//! Pretzel (GLLM secure dot products, oblivious transfer, Yao's garbled
//! circuits, and the end-to-end client/provider drivers).
//!
//! Three implementations are provided:
//!
//! * [`MemoryChannel`] — an in-process duplex pair built on crossbeam
//!   channels; used by unit/integration tests and by the benchmark harness
//!   (the paper measures CPU and bytes, not wire latency).
//! * [`TcpChannel`] — a length-prefixed framing layer over `std::net::TcpStream`,
//!   used by the `encrypted_mail_session` example to run client and provider
//!   as separate processes/threads talking over a socket.
//! * [`MeteredChannel`] — a decorator that counts bytes in each direction;
//!   this is how the "network transfers" columns of Figures 6, 11 and the
//!   §6.1/§6.3 numbers are produced (see the [`meter`] module docs for the
//!   exact counting semantics).
//!
//! [`PacedChannel`] is a further decorator that stalls a configurable delay
//! before every send — fault injection for slow-loris workload scenarios
//! (see the [`paced`] module docs).
//!
//! For serving many connections, [`TcpAcceptor`] wraps a listening socket
//! and yields one framed [`TcpChannel`] per inbound connection; the
//! `pretzel_server` mailroom builds its multi-session dispatch loop on it.
//!
//! The [`wire`] module makes the frame format itself versioned: explicit
//! [`ProtocolVersion`]s, capability-negotiating handshake frames
//! ([`HandshakeOffer`]/[`HandshakeAck`]), and per-version [`WireCodec`]s —
//! a frozen, byte-identical [`V1Codec`] next to the checksummed [`V2Codec`]
//! — applied via [`CodecChannel`], so one provider serves a mixed-version
//! fleet with zero downtime (`docs/WIRE.md` has the full frame layouts).

#![warn(missing_docs)]

pub mod batch;
mod memory;
pub mod meter;
pub mod paced;
mod tcp;
pub mod wire;

pub use batch::{pack_frames, unpack_frames};
pub use memory::{memory_pair, MemoryChannel};
pub use meter::{Meter, MeteredChannel, PoolKindGauge};
pub use paced::PacedChannel;
pub use tcp::{TcpAcceptor, TcpChannel};
pub use wire::{
    negotiate, Capabilities, CodecChannel, HandshakeAck, HandshakeError, HandshakeOffer,
    NegotiatedProfile, NegotiationPolicy, ProtocolVersion, V1Codec, V2Codec, WireCodec,
};

use std::fmt;

/// Errors surfaced by transport operations.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the channel.
    Closed,
    /// An underlying I/O error (TCP channels).
    Io(std::io::Error),
    /// A frame exceeded the configured maximum size.
    FrameTooLarge {
        /// Size of the offending frame in bytes.
        size: usize,
        /// The configured maximum frame size.
        max: usize,
    },
    /// A coalesced batch frame failed structural validation (see
    /// [`batch::unpack_frames`]).
    MalformedBatch(String),
    /// A frame failed its negotiated codec's structural validation —
    /// version byte, declared length, or checksum (see [`wire::V2Codec`]).
    Codec(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "channel closed by peer"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::FrameTooLarge { size, max } => {
                write!(f, "frame of {size} bytes exceeds maximum {max}")
            }
            TransportError::MalformedBatch(why) => write!(f, "malformed batch frame: {why}"),
            TransportError::Codec(why) => write!(f, "codec frame validation failed: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;

/// A reliable, ordered, message-oriented duplex channel between two parties.
///
/// Protocols in this workspace are written against this trait so the same
/// code runs over in-memory channels (tests, benchmarks) and TCP (examples).
pub trait Channel: Send {
    /// Sends one message to the peer.
    fn send(&mut self, msg: &[u8]) -> Result<()>;

    /// Receives the next message from the peer, blocking until available.
    fn recv(&mut self) -> Result<Vec<u8>>;

    /// Flushes any buffered data (no-op for unbuffered transports).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Blanket implementation so `&mut C` and boxed channels are channels too.
impl<C: Channel + ?Sized> Channel for &mut C {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        (**self).send(msg)
    }
    fn recv(&mut self) -> Result<Vec<u8>> {
        (**self).recv()
    }
    fn flush(&mut self) -> Result<()> {
        (**self).flush()
    }
}

impl Channel for Box<dyn Channel> {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        (**self).send(msg)
    }
    fn recv(&mut self) -> Result<Vec<u8>> {
        (**self).recv()
    }
    fn flush(&mut self) -> Result<()> {
        (**self).flush()
    }
}

/// Runs a two-party protocol on an in-memory channel pair: `party_a` runs on
/// the calling thread, `party_b` on a spawned thread. Returns both outputs.
///
/// This is the harness used throughout the test suite and the per-email
/// benchmark drivers (client and provider genuinely run concurrently, as in
/// the paper's measurements, but on the same machine).
pub fn run_two_party<A, B, RA, RB>(party_a: A, party_b: B) -> (RA, RB)
where
    A: FnOnce(&mut MemoryChannel) -> RA + Send,
    B: FnOnce(&mut MemoryChannel) -> RB + Send + 'static,
    RA: Send,
    RB: Send + 'static,
{
    let (mut chan_a, mut chan_b) = memory_pair();
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || party_b(&mut chan_b));
        let ra = party_a(&mut chan_a);
        let rb = handle.join().expect("party B panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_two_party_ping_pong() {
        let (a_out, b_out) = run_two_party(
            |chan| {
                chan.send(b"ping").unwrap();
                chan.recv().unwrap()
            },
            |chan| {
                let msg = chan.recv().unwrap();
                chan.send(b"pong").unwrap();
                msg
            },
        );
        assert_eq!(a_out, b"pong");
        assert_eq!(b_out, b"ping");
    }

    #[test]
    fn boxed_channel_is_usable() {
        let (a, mut b) = memory_pair();
        let mut boxed: Box<dyn Channel> = Box::new(a);
        boxed.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
    }
}
