//! In-memory duplex channel built on crossbeam's unbounded MPMC channels.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::{Channel, Result, TransportError};

/// One endpoint of an in-memory duplex channel.
pub struct MemoryChannel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-memory channel endpoints.
pub fn memory_pair() -> (MemoryChannel, MemoryChannel) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    (
        MemoryChannel {
            tx: tx_ab,
            rx: rx_ba,
        },
        MemoryChannel {
            tx: tx_ba,
            rx: rx_ab,
        },
    )
}

impl Channel for MemoryChannel {
    fn send(&mut self, msg: &[u8]) -> Result<()> {
        self.tx
            .send(msg.to_vec())
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Vec<u8>> {
        self.rx.recv().map_err(|_| TransportError::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_preserve_order_and_content() {
        let (mut a, mut b) = memory_pair();
        for i in 0..10u8 {
            a.send(&[i, i + 1]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap(), vec![i, i + 1]);
        }
    }

    #[test]
    fn duplex_directions_are_independent() {
        let (mut a, mut b) = memory_pair();
        a.send(b"from a").unwrap();
        b.send(b"from b").unwrap();
        assert_eq!(a.recv().unwrap(), b"from b");
        assert_eq!(b.recv().unwrap(), b"from a");
    }

    #[test]
    fn recv_after_peer_drop_reports_closed() {
        let (a, mut b) = memory_pair();
        drop(a);
        assert!(matches!(b.recv(), Err(TransportError::Closed)));
    }

    #[test]
    fn empty_messages_are_allowed() {
        let (mut a, mut b) = memory_pair();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_messages_roundtrip() {
        let (mut a, mut b) = memory_pair();
        let big = vec![0xABu8; 1 << 20];
        a.send(&big).unwrap();
        assert_eq!(b.recv().unwrap(), big);
    }
}
