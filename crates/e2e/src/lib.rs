//! End-to-end email encryption — Pretzel's "e2e module" (paper §2.2).
//!
//! The e2e module is a black box to the rest of Pretzel: the sender encrypts
//! and signs, the recipient authenticates and decrypts, and the plaintext is
//! then handed to the function modules (spam filtering, topic extraction,
//! search). The paper's prototype uses GPG; per DESIGN.md §3 we build an
//! equivalent authenticated hybrid scheme from this workspace's own
//! primitives:
//!
//! * static Diffie–Hellman identities over a safe-prime group,
//! * an ephemeral-static DH key agreement per email, expanded with HKDF,
//! * ChaCha20 + HMAC-SHA-256 (encrypt-then-MAC) for the payload,
//! * Schnorr signatures for sender authentication,
//! * a simple keyring (key management proper is out of scope for Pretzel,
//!   §2.2 / §7).

pub mod email;
pub mod group;
pub mod schnorr;

pub use email::{Email, EncryptedEmail};
pub use group::DhGroup;
pub use schnorr::{SchnorrKeyPair, SchnorrSignature};

use std::collections::HashMap;

use rand::Rng;

use pretzel_bignum::BigUint;
use pretzel_primitives::{ct_eq, hkdf, hmac_sha256, ChaCha20};

/// Errors from the e2e module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum E2eError {
    /// MAC verification failed (tampered or mis-keyed ciphertext).
    MacMismatch,
    /// Signature verification failed.
    BadSignature,
    /// Malformed wire format.
    Malformed,
    /// The keyring does not contain the requested party.
    UnknownParty(String),
}

impl std::fmt::Display for E2eError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            E2eError::MacMismatch => write!(f, "message authentication failed"),
            E2eError::BadSignature => write!(f, "sender signature invalid"),
            E2eError::Malformed => write!(f, "malformed encrypted email"),
            E2eError::UnknownParty(p) => write!(f, "no key material for {p}"),
        }
    }
}

impl std::error::Error for E2eError {}

/// A user's long-term secret identity: DH decryption key + Schnorr signing key.
#[derive(Clone)]
pub struct Identity {
    /// Email address this identity belongs to.
    pub address: String,
    group: DhGroup,
    dh_secret: BigUint,
    dh_public: BigUint,
    signing: SchnorrKeyPair,
}

/// The public half of an identity, distributed to correspondents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicIdentity {
    /// Email address.
    pub address: String,
    /// DH public key (encryption).
    pub dh_public: BigUint,
    /// Schnorr public key (signature verification).
    pub verify_key: BigUint,
}

impl Identity {
    /// Generates a fresh identity in `group` for `address`.
    pub fn generate<R: Rng + ?Sized>(address: &str, group: &DhGroup, rng: &mut R) -> Self {
        let dh_secret = group.random_exponent(rng);
        let dh_public = group.pow_g(&dh_secret);
        let signing = SchnorrKeyPair::generate(group, rng);
        Identity {
            address: address.to_string(),
            group: group.clone(),
            dh_secret,
            dh_public,
            signing,
        }
    }

    /// The public identity to publish.
    pub fn public(&self) -> PublicIdentity {
        PublicIdentity {
            address: self.address.clone(),
            dh_public: self.dh_public.clone(),
            verify_key: self.signing.public().clone(),
        }
    }

    /// Encrypts and signs an email for `recipient` (paper Figure 1, step ①).
    pub fn encrypt_email<R: Rng + ?Sized>(
        &self,
        recipient: &PublicIdentity,
        email: &Email,
        rng: &mut R,
    ) -> EncryptedEmail {
        let group = &self.group;
        // Ephemeral-static DH.
        let eph_secret = group.random_exponent(rng);
        let eph_public = group.pow_g(&eph_secret);
        let shared = group.pow(&recipient.dh_public, &eph_secret);
        let keys = derive_keys(group, &shared, &eph_public, &recipient.dh_public);

        let plaintext = email.to_bytes();
        let nonce: [u8; 12] = rng.gen();
        let cipher = ChaCha20::new(&keys.enc, &nonce, 1);
        let ciphertext = cipher.process(&plaintext);

        let mac = hmac_sha256(
            &keys.mac,
            &mac_input(&eph_public, &nonce, &ciphertext, group),
        );
        // Sign the (ciphertext, mac) pair so the recipient can attribute the
        // email to the sender before acting on it (§4.4's replay defense
        // requires signed emails).
        let signature = self
            .signing
            .sign(group, &signing_input(&ciphertext, &mac), rng);

        EncryptedEmail {
            sender: self.address.clone(),
            recipient: recipient.address.clone(),
            ephemeral_public: eph_public,
            nonce,
            ciphertext,
            mac,
            signature,
        }
    }

    /// Authenticates and decrypts an email (paper Figure 1, step ②).
    pub fn decrypt_email(
        &self,
        sender: &PublicIdentity,
        encrypted: &EncryptedEmail,
    ) -> Result<Email, E2eError> {
        let group = &self.group;
        // Verify the sender's signature first.
        if !SchnorrKeyPair::verify(
            group,
            &sender.verify_key,
            &signing_input(&encrypted.ciphertext, &encrypted.mac),
            &encrypted.signature,
        ) {
            return Err(E2eError::BadSignature);
        }
        let shared = group.pow(&encrypted.ephemeral_public, &self.dh_secret);
        let keys = derive_keys(group, &shared, &encrypted.ephemeral_public, &self.dh_public);
        let expected_mac = hmac_sha256(
            &keys.mac,
            &mac_input(
                &encrypted.ephemeral_public,
                &encrypted.nonce,
                &encrypted.ciphertext,
                group,
            ),
        );
        if !ct_eq(&expected_mac, &encrypted.mac) {
            return Err(E2eError::MacMismatch);
        }
        let cipher = ChaCha20::new(&keys.enc, &encrypted.nonce, 1);
        let plaintext = cipher.process(&encrypted.ciphertext);
        Email::from_bytes(&plaintext).ok_or(E2eError::Malformed)
    }
}

struct DerivedKeys {
    enc: [u8; 32],
    mac: [u8; 32],
}

fn derive_keys(
    group: &DhGroup,
    shared: &BigUint,
    eph: &BigUint,
    recipient: &BigUint,
) -> DerivedKeys {
    let mut ikm = group.encode(shared);
    ikm.extend(group.encode(eph));
    ikm.extend(group.encode(recipient));
    let okm = hkdf(b"pretzel-e2e-v1", &ikm, b"email keys", 64);
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    enc.copy_from_slice(&okm[..32]);
    mac.copy_from_slice(&okm[32..]);
    DerivedKeys { enc, mac }
}

fn mac_input(eph: &BigUint, nonce: &[u8; 12], ciphertext: &[u8], group: &DhGroup) -> Vec<u8> {
    let mut data = group.encode(eph);
    data.extend_from_slice(nonce);
    data.extend_from_slice(ciphertext);
    data
}

fn signing_input(ciphertext: &[u8], mac: &[u8; 32]) -> Vec<u8> {
    let mut data = ciphertext.to_vec();
    data.extend_from_slice(mac);
    data
}

/// A keyring mapping addresses to public identities. Key management itself
/// (cross-device sharing, discovery, transparency logs) is explicitly out of
/// scope for Pretzel (§2.2, §7); this is the minimal interface the examples
/// and the core drivers need.
#[derive(Clone, Debug, Default)]
pub struct Keyring {
    entries: HashMap<String, PublicIdentity>,
}

impl Keyring {
    /// Empty keyring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a public identity.
    pub fn insert(&mut self, identity: PublicIdentity) {
        self.entries.insert(identity.address.clone(), identity);
    }

    /// Looks up a public identity by address.
    pub fn get(&self, address: &str) -> Result<&PublicIdentity, E2eError> {
        self.entries
            .get(address)
            .ok_or_else(|| E2eError::UnknownParty(address.to_string()))
    }

    /// Number of known identities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the keyring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_group() -> DhGroup {
        DhGroup::insecure_test_group(96, &mut rand::thread_rng())
    }

    fn demo_email() -> Email {
        Email {
            from: "alice@example.com".into(),
            to: "bob@example.com".into(),
            subject: "Budget review".into(),
            body: "Let's meet tomorrow about the quarterly budget. -- Alice".into(),
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = Identity::generate("alice@example.com", &group, &mut rng);
        let bob = Identity::generate("bob@example.com", &group, &mut rng);
        let email = demo_email();
        let encrypted = alice.encrypt_email(&bob.public(), &email, &mut rng);
        assert_eq!(encrypted.sender, "alice@example.com");
        let decrypted = bob.decrypt_email(&alice.public(), &encrypted).unwrap();
        assert_eq!(decrypted, email);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_across_sends() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = Identity::generate("alice@example.com", &group, &mut rng);
        let bob = Identity::generate("bob@example.com", &group, &mut rng);
        let email = demo_email();
        let e1 = alice.encrypt_email(&bob.public(), &email, &mut rng);
        let e2 = alice.encrypt_email(&bob.public(), &email, &mut rng);
        assert_ne!(
            e1.ciphertext, e2.ciphertext,
            "fresh ephemeral keys per email"
        );
        let body_bytes = email.to_bytes();
        assert_ne!(e1.ciphertext, body_bytes);
    }

    #[test]
    fn tampering_is_detected() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = Identity::generate("alice@example.com", &group, &mut rng);
        let bob = Identity::generate("bob@example.com", &group, &mut rng);
        let mut encrypted = alice.encrypt_email(&bob.public(), &demo_email(), &mut rng);
        encrypted.ciphertext[0] ^= 0xFF;
        // Either the signature (computed over the ciphertext) or the MAC must
        // reject the modification.
        assert!(bob.decrypt_email(&alice.public(), &encrypted).is_err());
    }

    #[test]
    fn wrong_recipient_cannot_decrypt() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = Identity::generate("alice@example.com", &group, &mut rng);
        let bob = Identity::generate("bob@example.com", &group, &mut rng);
        let eve = Identity::generate("eve@example.com", &group, &mut rng);
        let encrypted = alice.encrypt_email(&bob.public(), &demo_email(), &mut rng);
        assert_eq!(
            eve.decrypt_email(&alice.public(), &encrypted).unwrap_err(),
            E2eError::MacMismatch
        );
    }

    #[test]
    fn forged_sender_is_rejected() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = Identity::generate("alice@example.com", &group, &mut rng);
        let bob = Identity::generate("bob@example.com", &group, &mut rng);
        let mallory = Identity::generate("mallory@example.com", &group, &mut rng);
        let encrypted = mallory.encrypt_email(&bob.public(), &demo_email(), &mut rng);
        // Bob believes the mail came from Alice; the signature check fails.
        assert_eq!(
            bob.decrypt_email(&alice.public(), &encrypted).unwrap_err(),
            E2eError::BadSignature
        );
    }

    #[test]
    fn keyring_lookup() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = Identity::generate("alice@example.com", &group, &mut rng);
        let mut ring = Keyring::new();
        assert!(ring.is_empty());
        ring.insert(alice.public());
        assert_eq!(ring.len(), 1);
        assert_eq!(
            ring.get("alice@example.com").unwrap().address,
            "alice@example.com"
        );
        assert!(matches!(
            ring.get("nobody@example.com"),
            Err(E2eError::UnknownParty(_))
        ));
    }

    #[test]
    fn encrypted_email_wire_roundtrip() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = Identity::generate("alice@example.com", &group, &mut rng);
        let bob = Identity::generate("bob@example.com", &group, &mut rng);
        let encrypted = alice.encrypt_email(&bob.public(), &demo_email(), &mut rng);
        let bytes = encrypted.to_bytes();
        let parsed = EncryptedEmail::from_bytes(&bytes).unwrap();
        let decrypted = bob.decrypt_email(&alice.public(), &parsed).unwrap();
        assert_eq!(decrypted, demo_email());
    }
}
