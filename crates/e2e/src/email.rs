//! Email message types and their wire formats.
//!
//! The plaintext [`Email`] is what the function modules (spam filtering,
//! topic extraction, search) operate on after decryption; the
//! [`EncryptedEmail`] is what travels through the legacy delivery
//! infrastructure (SMTP/IMAP in the paper; the `transport` crate's framed
//! channels in this repository's examples).

use serde::{Deserialize, Serialize};

use pretzel_bignum::BigUint;

use crate::schnorr::SchnorrSignature;

/// A plaintext email.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Email {
    /// Sender address.
    pub from: String,
    /// Recipient address.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
}

impl Email {
    /// The text the classification function modules consume (subject + body,
    /// mirroring how spam filters treat header and body words alike).
    pub fn classification_text(&self) -> String {
        format!("{} {}", self.subject, self.body)
    }

    /// Serializes to a simple length-prefixed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for field in [&self.from, &self.to, &self.subject, &self.body] {
            let bytes = field.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Parses the wire format; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut fields = Vec::with_capacity(4);
        let mut rest = bytes;
        for _ in 0..4 {
            if rest.len() < 4 {
                return None;
            }
            let len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
            rest = &rest[4..];
            if rest.len() < len {
                return None;
            }
            fields.push(String::from_utf8(rest[..len].to_vec()).ok()?);
            rest = &rest[len..];
        }
        if !rest.is_empty() {
            return None;
        }
        let mut it = fields.into_iter();
        Some(Email {
            from: it.next()?,
            to: it.next()?,
            subject: it.next()?,
            body: it.next()?,
        })
    }

    /// Total size in bytes of the serialized email (the paper's `sz_email`).
    pub fn size_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

/// An end-to-end encrypted, signed email.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncryptedEmail {
    /// Claimed sender address (authenticated by the signature).
    pub sender: String,
    /// Recipient address (routing metadata; Pretzel does not hide metadata,
    /// §7).
    pub recipient: String,
    /// Ephemeral DH public key for this email.
    pub ephemeral_public: BigUint,
    /// ChaCha20 nonce.
    pub nonce: [u8; 12],
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA-256 over (ephemeral key, nonce, ciphertext).
    pub mac: [u8; 32],
    /// Sender's Schnorr signature over (ciphertext, mac).
    pub signature: SchnorrSignature,
}

fn put_field(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn take_field<'a>(rest: &mut &'a [u8]) -> Option<&'a [u8]> {
    if rest.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
    *rest = &rest[4..];
    if rest.len() < len {
        return None;
    }
    let (field, tail) = rest.split_at(len);
    *rest = tail;
    Some(field)
}

impl EncryptedEmail {
    /// Serializes to a length-prefixed wire format (what an SMTP relay or the
    /// provider's mailbox would store).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_field(&mut out, self.sender.as_bytes());
        put_field(&mut out, self.recipient.as_bytes());
        put_field(&mut out, &self.ephemeral_public.to_bytes_be());
        put_field(&mut out, &self.nonce);
        put_field(&mut out, &self.ciphertext);
        put_field(&mut out, &self.mac);
        put_field(&mut out, &self.signature.challenge.to_bytes_be());
        put_field(&mut out, &self.signature.response.to_bytes_be());
        out
    }

    /// Parses the wire format; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut rest = bytes;
        let sender = String::from_utf8(take_field(&mut rest)?.to_vec()).ok()?;
        let recipient = String::from_utf8(take_field(&mut rest)?.to_vec()).ok()?;
        let ephemeral_public = BigUint::from_bytes_be(take_field(&mut rest)?);
        let nonce_bytes = take_field(&mut rest)?;
        if nonce_bytes.len() != 12 {
            return None;
        }
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(nonce_bytes);
        let ciphertext = take_field(&mut rest)?.to_vec();
        let mac_bytes = take_field(&mut rest)?;
        if mac_bytes.len() != 32 {
            return None;
        }
        let mut mac = [0u8; 32];
        mac.copy_from_slice(mac_bytes);
        let challenge = BigUint::from_bytes_be(take_field(&mut rest)?);
        let response = BigUint::from_bytes_be(take_field(&mut rest)?);
        if !rest.is_empty() {
            return None;
        }
        Some(EncryptedEmail {
            sender,
            recipient,
            ephemeral_public,
            nonce,
            ciphertext,
            mac,
            signature: SchnorrSignature {
                challenge,
                response,
            },
        })
    }

    /// Size of the serialized encrypted email in bytes.
    pub fn size_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Email {
        Email {
            from: "alice@example.com".into(),
            to: "bob@example.com".into(),
            subject: "hello".into(),
            body: "a fairly short body with some words".into(),
        }
    }

    #[test]
    fn email_wire_roundtrip() {
        let e = demo();
        let bytes = e.to_bytes();
        assert_eq!(Email::from_bytes(&bytes), Some(e.clone()));
        assert_eq!(e.size_bytes(), bytes.len());
    }

    #[test]
    fn email_parse_rejects_truncation_and_trailing_garbage() {
        let bytes = demo().to_bytes();
        assert!(Email::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Email::from_bytes(&extended).is_none());
        assert!(Email::from_bytes(&[]).is_none());
    }

    #[test]
    fn classification_text_joins_subject_and_body() {
        let e = demo();
        let text = e.classification_text();
        assert!(text.contains("hello"));
        assert!(text.contains("short body"));
    }

    #[test]
    fn encrypted_email_wire_roundtrip_standalone() {
        let enc = EncryptedEmail {
            sender: "a@x".into(),
            recipient: "b@y".into(),
            ephemeral_public: BigUint::from(123456789u64),
            nonce: [7u8; 12],
            ciphertext: vec![1, 2, 3, 4, 5],
            mac: [9u8; 32],
            signature: SchnorrSignature {
                challenge: BigUint::from(42u64),
                response: BigUint::from(77u64),
            },
        };
        let bytes = enc.to_bytes();
        assert_eq!(EncryptedEmail::from_bytes(&bytes), Some(enc.clone()));
        assert_eq!(enc.size_bytes(), bytes.len());
        assert!(EncryptedEmail::from_bytes(&bytes[..10]).is_none());
    }
}
