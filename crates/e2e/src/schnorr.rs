//! Schnorr signatures over the e2e module's DH group.

use rand::Rng;

use pretzel_bignum::BigUint;
use pretzel_primitives::Sha256;

use crate::group::DhGroup;

/// A Schnorr signature `(challenge, response)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchnorrSignature {
    /// Fiat–Shamir challenge `e = H(R || P || m) mod q`.
    pub challenge: BigUint,
    /// Response `s = k + e·x mod q`.
    pub response: BigUint,
}

/// A Schnorr signing key pair.
#[derive(Clone)]
pub struct SchnorrKeyPair {
    secret: BigUint,
    public: BigUint,
}

impl SchnorrKeyPair {
    /// Generates a key pair in `group`.
    pub fn generate<R: Rng + ?Sized>(group: &DhGroup, rng: &mut R) -> Self {
        let secret = group.random_exponent(rng);
        let public = group.pow_g(&secret);
        SchnorrKeyPair { secret, public }
    }

    /// The verification key `P = g^x`.
    pub fn public(&self) -> &BigUint {
        &self.public
    }

    /// Signs a message.
    pub fn sign<R: Rng + ?Sized>(
        &self,
        group: &DhGroup,
        message: &[u8],
        rng: &mut R,
    ) -> SchnorrSignature {
        let k = group.random_exponent(rng);
        let r = group.pow_g(&k);
        let e = challenge_hash(group, &r, &self.public, message);
        // s = k + e*x mod q
        let ex = (e.clone() * self.secret.clone()) % group.order().clone();
        let s = (k + ex) % group.order().clone();
        SchnorrSignature {
            challenge: e,
            response: s,
        }
    }

    /// Verifies a signature under the verification key `public`.
    pub fn verify(
        group: &DhGroup,
        public: &BigUint,
        message: &[u8],
        signature: &SchnorrSignature,
    ) -> bool {
        if signature.challenge >= *group.order() || signature.response >= *group.order() {
            return false;
        }
        // R' = g^s * P^{-e} = g^s * P^{q - e}
        let g_s = group.pow_g(&signature.response);
        let neg_e = group.order().clone() - signature.challenge.clone();
        let p_neg_e = group.pow(public, &neg_e);
        let r_prime = group.mul(&g_s, &p_neg_e);
        challenge_hash(group, &r_prime, public, message) == signature.challenge
    }
}

fn challenge_hash(group: &DhGroup, r: &BigUint, public: &BigUint, message: &[u8]) -> BigUint {
    let mut h = Sha256::new();
    h.update(b"pretzel-schnorr-v1");
    h.update(&group.encode(r));
    h.update(&group.encode(public));
    h.update(message);
    BigUint::from_bytes_be(&h.finalize()) % group.order().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_group() -> DhGroup {
        DhGroup::insecure_test_group(96, &mut rand::thread_rng())
    }

    #[test]
    fn sign_verify_roundtrip() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let keys = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = keys.sign(&group, b"hello pretzel", &mut rng);
        assert!(SchnorrKeyPair::verify(
            &group,
            keys.public(),
            b"hello pretzel",
            &sig
        ));
    }

    #[test]
    fn signature_is_message_bound() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let keys = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = keys.sign(&group, b"message one", &mut rng);
        assert!(!SchnorrKeyPair::verify(
            &group,
            keys.public(),
            b"message two",
            &sig
        ));
    }

    #[test]
    fn signature_is_key_bound() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let alice = SchnorrKeyPair::generate(&group, &mut rng);
        let bob = SchnorrKeyPair::generate(&group, &mut rng);
        let sig = alice.sign(&group, b"from alice", &mut rng);
        assert!(!SchnorrKeyPair::verify(
            &group,
            bob.public(),
            b"from alice",
            &sig
        ));
    }

    #[test]
    fn mangled_signature_rejected() {
        let group = test_group();
        let mut rng = rand::thread_rng();
        let keys = SchnorrKeyPair::generate(&group, &mut rng);
        let mut sig = keys.sign(&group, b"payload", &mut rng);
        sig.response = (sig.response + BigUint::one()) % group.order().clone();
        assert!(!SchnorrKeyPair::verify(
            &group,
            keys.public(),
            b"payload",
            &sig
        ));
        // Out-of-range components are rejected outright.
        let bad = SchnorrSignature {
            challenge: group.order().clone(),
            response: BigUint::zero(),
        };
        assert!(!SchnorrKeyPair::verify(
            &group,
            keys.public(),
            b"payload",
            &bad
        ));
    }
}
