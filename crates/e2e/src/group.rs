//! Safe-prime Diffie–Hellman group used by the e2e module's key agreement
//! and Schnorr signatures.

use rand::Rng;

use pretzel_bignum::{gen_safe_prime, AutoMontgomery, BigUint};

/// A multiplicative group modulo a safe prime `p = 2q + 1`, with generator
/// `g = 4` (a generator of the order-`q` subgroup of quadratic residues).
#[derive(Clone, Debug)]
pub struct DhGroup {
    p: BigUint,
    q: BigUint,
    g: BigUint,
    mont: AutoMontgomery,
}

impl DhGroup {
    /// The 1536-bit MODP group from RFC 3526 §2.
    pub fn rfc3526_1536() -> Self {
        let p_hex = concat!(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1",
            "29024E088A67CC74020BBEA63B139B22514A08798E3404DD",
            "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245",
            "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
            "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D",
            "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F",
            "83655D23DCA3AD961C62F356208552BB9ED529077096966D",
            "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
        );
        Self::from_safe_prime(BigUint::from_hex(p_hex).expect("valid constant"))
    }

    /// Builds a group from a safe prime.
    pub fn from_safe_prime(p: BigUint) -> Self {
        let q = (p.clone() - BigUint::one()) >> 1;
        let mont = AutoMontgomery::new(&p);
        DhGroup {
            p,
            q,
            g: BigUint::from(4u64),
            mont,
        }
    }

    /// Which Montgomery engine backs the group arithmetic
    /// (`"fixed:<limbs>"` or `"dynamic"`).
    pub fn mont_backend(&self) -> &'static str {
        self.mont.backend()
    }

    /// Small group for unit tests (NOT secure).
    pub fn insecure_test_group<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        Self::from_safe_prime(gen_safe_prime(bits, rng))
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// The subgroup order `q`.
    pub fn order(&self) -> &BigUint {
        &self.q
    }

    /// `g^exp mod p`.
    pub fn pow_g(&self, exp: &BigUint) -> BigUint {
        self.mont.pow(&self.g, exp)
    }

    /// `base^exp mod p`.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.mont.pow(base, exp)
    }

    /// `a * b mod p`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mont.mul(a, b)
    }

    /// Uniform non-zero exponent below the subgroup order.
    pub fn random_exponent<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let e = BigUint::random_below(rng, &self.q);
            if !e.is_zero() {
                return e;
            }
        }
    }

    /// Fixed-width big-endian encoding of a group element.
    pub fn encode(&self, x: &BigUint) -> Vec<u8> {
        x.to_bytes_be_padded(self.element_bytes())
    }

    /// Size of an encoded element in bytes.
    pub fn element_bytes(&self) -> usize {
        self.p.bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_key_agreement_agrees() {
        let mut rng = rand::thread_rng();
        let group = DhGroup::insecure_test_group(96, &mut rng);
        let a = group.random_exponent(&mut rng);
        let b = group.random_exponent(&mut rng);
        let pub_a = group.pow_g(&a);
        let pub_b = group.pow_g(&b);
        assert_eq!(group.pow(&pub_b, &a), group.pow(&pub_a, &b));
    }

    #[test]
    fn generator_lies_in_prime_order_subgroup() {
        let mut rng = rand::thread_rng();
        let group = DhGroup::insecure_test_group(96, &mut rng);
        // g^q == 1 (mod p)
        assert_eq!(group.pow_g(group.order()), BigUint::one());
    }

    #[test]
    fn encoding_is_fixed_width() {
        let mut rng = rand::thread_rng();
        let group = DhGroup::insecure_test_group(96, &mut rng);
        let small = BigUint::from(3u64);
        assert_eq!(group.encode(&small).len(), group.element_bytes());
    }

    #[test]
    fn rfc_group_has_expected_size() {
        let group = DhGroup::rfc3526_1536();
        assert_eq!(group.modulus().bits(), 1536);
        assert_eq!(group.element_bytes(), 192);
        // 1536 bits = 24 limbs — a supported fixed width.
        assert_eq!(group.mont_backend(), "fixed:24");
    }
}
