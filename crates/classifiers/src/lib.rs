//! Linear classifiers for Pretzel's function modules (paper §3.1).
//!
//! Pretzel is geared to linear classifiers: Graham–Robinson Naive Bayes and
//! multinomial Naive Bayes, binary and multinomial logistic regression, and
//! two-class / one-vs-all linear SVMs. When *applying* a trained model they
//! all reduce to the same shape — a dot product between a feature vector and
//! per-category weight columns plus a bias (expressions (1) and (2)) — which
//! is exactly what the secure dot-product protocol computes.
//!
//! The crate provides:
//!
//! * [`features`] — tokenization, vocabulary construction, sparse feature
//!   vectors (presence for GR-NB, counts for the multinomial models).
//! * [`nb`] — Graham–Robinson NB (spam), the original Graham variant, and
//!   multinomial NB (topics).
//! * [`lr`] — binary and multinomial logistic regression trained with SGD.
//! * [`svm`] — linear SVM trained with Pegasos, two-class and one-vs-all.
//! * [`select`] — chi-square feature selection (§4.3 / Figure 13).
//! * [`quantize`] — fixed-point quantization of trained models into the
//!   non-negative integer matrices the AHE protocols operate on (§4.2's
//!   `b_in`-bit model parameters).
//! * [`metrics`] — accuracy / precision / recall (Figure 9, 13, 14).

pub mod features;
pub mod lr;
pub mod metrics;
pub mod nb;
pub mod ngrams;
pub mod quantize;
pub mod select;
pub mod svm;

pub use features::{SparseVector, Tokenizer, Vocabulary};
pub use metrics::{accuracy, confusion_binary, precision_recall, BinaryConfusion};
pub use ngrams::NGramExtractor;
pub use quantize::QuantizedModel;

use serde::{Deserialize, Serialize};

/// A labeled training/testing example: sparse features plus a class label.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabeledExample {
    /// Sparse feature vector.
    pub features: SparseVector,
    /// Class label in `0..num_classes`.
    pub label: usize,
}

/// A trained linear model: one weight column and one bias per class.
///
/// `score_j(x) = Σ_i x_i · weights[j][i] + bias[j]`, prediction = argmax_j.
/// For binary models class 1 is the "positive" class (spam).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearModel {
    /// `weights[class][feature]`.
    pub weights: Vec<Vec<f64>>,
    /// Per-class bias terms.
    pub bias: Vec<f64>,
}

impl LinearModel {
    /// Number of classes (the paper's B).
    pub fn num_classes(&self) -> usize {
        self.weights.len()
    }

    /// Number of features (the paper's N).
    pub fn num_features(&self) -> usize {
        self.weights.first().map_or(0, |w| w.len())
    }

    /// Raw per-class scores for a sparse feature vector.
    pub fn scores(&self, x: &SparseVector) -> Vec<f64> {
        self.weights
            .iter()
            .zip(self.bias.iter())
            .map(|(w, &b)| {
                x.iter()
                    .map(|(idx, count)| w.get(idx).copied().unwrap_or(0.0) * count as f64)
                    .sum::<f64>()
                    + b
            })
            .collect()
    }

    /// Predicted class = argmax of the scores.
    ///
    /// Ties break toward the lowest class index, the same convention the Yao
    /// comparison/argmax circuits and [`crate::QuantizedModel::predict`] use.
    pub fn predict(&self, x: &SparseVector) -> usize {
        let scores = self.scores(x);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        best
    }

    /// Restricted argmax over a candidate subset of classes (used by the
    /// decomposed-classification client step, §4.3). Returns the *global*
    /// class index of the best candidate. Ties break toward the earliest
    /// candidate in `candidates`, matching the argmax circuit.
    pub fn predict_among(&self, x: &SparseVector, candidates: &[usize]) -> usize {
        let scores = self.scores(x);
        let mut iter = candidates.iter().copied();
        let Some(mut best) = iter.next() else {
            return 0;
        };
        for c in iter {
            if scores[c] > scores[best] {
                best = c;
            }
        }
        best
    }

    /// The top-k classes by score, best first (the client's candidate-topic
    /// selection, §4.3 step (i)).
    pub fn top_k(&self, x: &SparseVector, k: usize) -> Vec<usize> {
        let scores = self.scores(x);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(k);
        order
    }

    /// Restricts the model to a subset of features (after feature selection):
    /// feature `kept[i]` of the original model becomes feature `i`.
    pub fn restrict_features(&self, kept: &[usize]) -> LinearModel {
        LinearModel {
            weights: self
                .weights
                .iter()
                .map(|w| kept.iter().map(|&i| w[i]).collect())
                .collect(),
            bias: self.bias.clone(),
        }
    }
}

/// Trait implemented by every trainer in this crate so harnesses can sweep
/// over algorithms uniformly (the rows of Figures 9 and 13).
pub trait Trainer {
    /// Human-readable name used in experiment output ("GR-NB", "LR", "SVM").
    fn name(&self) -> &'static str;
    /// Trains a linear model on labeled examples with `num_features` features
    /// and `num_classes` classes.
    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(usize, u32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn toy_model() -> LinearModel {
        LinearModel {
            weights: vec![vec![1.0, 0.0, -1.0], vec![0.0, 2.0, 0.5]],
            bias: vec![0.5, -0.5],
        }
    }

    #[test]
    fn scores_and_predict() {
        let m = toy_model();
        let x = vec_of(&[(0, 2), (2, 1)]);
        let s = m.scores(&x);
        assert!((s[0] - (2.0 - 1.0 + 0.5)).abs() < 1e-9);
        assert!((s[1] - (0.5 - 0.5)).abs() < 1e-9);
        assert_eq!(m.predict(&x), 0);
    }

    #[test]
    fn predict_among_restricts_to_candidates() {
        let m = LinearModel {
            weights: vec![vec![1.0], vec![5.0], vec![3.0]],
            bias: vec![0.0; 3],
        };
        let x = vec_of(&[(0, 1)]);
        assert_eq!(m.predict(&x), 1);
        assert_eq!(m.predict_among(&x, &[0, 2]), 2);
    }

    #[test]
    fn top_k_orders_by_score() {
        let m = LinearModel {
            weights: vec![vec![1.0], vec![5.0], vec![3.0], vec![4.0]],
            bias: vec![0.0; 4],
        };
        let x = vec_of(&[(0, 1)]);
        assert_eq!(m.top_k(&x, 2), vec![1, 3]);
        assert_eq!(m.top_k(&x, 10), vec![1, 3, 2, 0]);
    }

    #[test]
    fn restrict_features_remaps_weights() {
        let m = toy_model();
        let r = m.restrict_features(&[2, 0]);
        assert_eq!(r.num_features(), 2);
        assert_eq!(r.weights[0], vec![-1.0, 1.0]);
        assert_eq!(r.weights[1], vec![0.5, 0.0]);
    }

    #[test]
    fn unknown_feature_indices_are_ignored_in_scoring() {
        let m = toy_model();
        let x = vec_of(&[(100, 3)]);
        let s = m.scores(&x);
        assert_eq!(s, vec![0.5, -0.5]);
    }
}
