//! Linear support vector machines trained with Pegasos-style SGD.
//!
//! The paper uses two-class SVM for spam filtering and one-versus-all SVM for
//! topic extraction (§3.1, trained with LIBLINEAR). As with LR, only the
//! resulting weight vectors matter to the protocols; we train with the
//! Pegasos sub-gradient method on the hinge loss.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{LabeledExample, LinearModel, Trainer};

/// Two-class linear SVM (class 1 = positive/spam).
#[derive(Clone, Copy, Debug)]
pub struct BinarySvmTrainer {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Regularization parameter λ of Pegasos.
    pub lambda: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for BinarySvmTrainer {
    fn default() -> Self {
        BinarySvmTrainer {
            epochs: 30,
            lambda: 1e-3,
            seed: 11,
        }
    }
}

fn train_binary_hinge(
    examples: &[LabeledExample],
    num_features: usize,
    positive_class: usize,
    epochs: usize,
    lambda: f64,
    seed: u64,
) -> (Vec<f64>, f64) {
    let mut w = vec![0f64; num_features];
    let mut b = 0f64;
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t = 1usize;
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        for &idx in &order {
            let ex = &examples[idx];
            let y = if ex.label == positive_class {
                1.0
            } else {
                -1.0
            };
            let mut z = b;
            for (i, c) in ex.features.iter() {
                if i < num_features {
                    z += w[i] * c as f64;
                }
            }
            let eta = 1.0 / (lambda * t as f64);
            // Regularization shrink (the bias is treated as a regular weight
            // attached to a constant-1 feature so it shrinks with the rest).
            let shrink = 1.0 - eta * lambda;
            for wi in w.iter_mut() {
                *wi *= shrink;
            }
            b *= shrink;
            if y * z < 1.0 {
                for (i, c) in ex.features.iter() {
                    if i < num_features {
                        w[i] += eta * y * c as f64;
                    }
                }
                b += eta * y;
            }
            t += 1;
        }
    }
    (w, b)
}

impl Trainer for BinarySvmTrainer {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel {
        assert_eq!(num_classes, 2, "binary SVM requires exactly two classes");
        let (w, b) = train_binary_hinge(
            examples,
            num_features,
            1,
            self.epochs,
            self.lambda,
            self.seed,
        );
        LinearModel {
            weights: vec![vec![0.0; num_features], w],
            bias: vec![0.0, b],
        }
    }
}

/// One-versus-all linear SVM for multi-class topic extraction.
#[derive(Clone, Copy, Debug)]
pub struct OneVsAllSvmTrainer {
    /// Number of passes per binary sub-problem.
    pub epochs: usize,
    /// Regularization parameter λ.
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OneVsAllSvmTrainer {
    fn default() -> Self {
        OneVsAllSvmTrainer {
            epochs: 15,
            lambda: 1e-3,
            seed: 11,
        }
    }
}

impl Trainer for OneVsAllSvmTrainer {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel {
        let mut weights = Vec::with_capacity(num_classes);
        let mut bias = Vec::with_capacity(num_classes);
        for class in 0..num_classes {
            let (w, b) = train_binary_hinge(
                examples,
                num_features,
                class,
                self.epochs,
                self.lambda,
                self.seed.wrapping_add(class as u64),
            );
            weights.push(w);
            bias.push(b);
        }
        LinearModel { weights, bias }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseVector;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    #[test]
    fn binary_svm_separates_simple_spam() {
        let mut corpus = Vec::new();
        for _ in 0..20 {
            corpus.push(example(&[(0, 2), (1, 1)], 1));
            corpus.push(example(&[(1, 3)], 1));
            corpus.push(example(&[(2, 2), (3, 1)], 0));
            corpus.push(example(&[(2, 1)], 0));
        }
        let model = BinarySvmTrainer::default().train(&corpus, 4, 2);
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(0, 1), (1, 1)])),
            1
        );
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(2, 1), (3, 1)])),
            0
        );
    }

    #[test]
    fn one_vs_all_svm_three_topics() {
        let mut corpus = Vec::new();
        for _ in 0..20 {
            corpus.push(example(&[(0, 2), (1, 1)], 0));
            corpus.push(example(&[(2, 1), (3, 2)], 1));
            corpus.push(example(&[(4, 2), (5, 2)], 2));
        }
        let model = OneVsAllSvmTrainer::default().train(&corpus, 6, 3);
        assert_eq!(model.num_classes(), 3);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(0, 1)])), 0);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(3, 2)])), 1);
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(4, 1), (5, 1)])),
            2
        );
    }

    #[test]
    fn svm_training_is_deterministic() {
        let corpus: Vec<LabeledExample> = (0..30).map(|i| example(&[(i % 5, 1)], i % 2)).collect();
        let a = BinarySvmTrainer::default().train(&corpus, 5, 2);
        let b = BinarySvmTrainer::default().train(&corpus, 5, 2);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn margin_violations_move_weights_in_the_right_direction() {
        let corpus = vec![example(&[(0, 1)], 1), example(&[(1, 1)], 0)];
        let model = BinarySvmTrainer {
            epochs: 50,
            ..Default::default()
        }
        .train(&corpus, 2, 2);
        assert!(model.weights[1][0] > 0.0, "spam-indicative weight positive");
        assert!(model.weights[1][1] < 0.0, "ham-indicative weight negative");
    }
}
