//! Chi-square feature selection (paper §4.3, Figure 13).
//!
//! Pretzel reduces the client-side storage cost — which is proportional to
//! the number of model features N — by selecting the N′ features most
//! correlated with the class labels. The paper uses the chi-square criterion
//! \[111\] and observes that keeping ~25% of features costs only a marginal
//! accuracy drop (Figure 13).

use std::collections::HashMap;

use crate::{LabeledExample, SparseVector};

/// Per-feature chi-square scores against the class labels (computed on
/// presence/absence, the standard formulation for text).
pub fn chi_square_scores(
    examples: &[LabeledExample],
    num_features: usize,
    num_classes: usize,
) -> Vec<f64> {
    let total = examples.len() as f64;
    if total == 0.0 {
        return vec![0.0; num_features];
    }
    // Class document counts and per-(feature, class) presence counts.
    let mut class_count = vec![0f64; num_classes];
    let mut present = vec![vec![0f64; num_classes]; num_features];
    let mut feature_count = vec![0f64; num_features];
    for ex in examples {
        class_count[ex.label] += 1.0;
        for (i, _) in ex.features.iter() {
            if i < num_features {
                present[i][ex.label] += 1.0;
                feature_count[i] += 1.0;
            }
        }
    }
    (0..num_features)
        .map(|i| {
            let mut chi2 = 0.0;
            for c in 0..num_classes {
                // Observed counts of the 2x2 contingency table for (feature i, class c).
                let a = present[i][c]; // feature present, class c
                let b = feature_count[i] - a; // present, other class
                let c_ = class_count[c] - a; // absent, class c
                let d = total - a - b - c_; // absent, other class
                let num = total * (a * d - c_ * b).powi(2);
                let den = (a + c_) * (b + d) * (a + b) * (c_ + d);
                if den > 0.0 {
                    chi2 += num / den;
                }
            }
            chi2
        })
        .collect()
}

/// Selects the `keep` highest-scoring features; returns their original
/// indices in descending score order.
pub fn select_top_features(
    examples: &[LabeledExample],
    num_features: usize,
    num_classes: usize,
    keep: usize,
) -> Vec<usize> {
    let scores = chi_square_scores(examples, num_features, num_classes);
    let mut order: Vec<usize> = (0..num_features).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order.truncate(keep.min(num_features));
    order
}

/// Builds the old-index → new-index mapping for a kept-feature list.
pub fn remap_table(kept: &[usize]) -> HashMap<usize, usize> {
    kept.iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect()
}

/// Applies feature selection to a whole dataset: remaps every example to the
/// reduced feature space (features not kept are dropped).
pub fn apply_selection(examples: &[LabeledExample], kept: &[usize]) -> Vec<LabeledExample> {
    let table = remap_table(kept);
    examples
        .iter()
        .map(|ex| LabeledExample {
            features: ex.features.remap(&table),
            label: ex.label,
        })
        .collect()
}

/// Remaps a single feature vector into the reduced space.
pub fn remap_vector(v: &SparseVector, kept: &[usize]) -> SparseVector {
    v.remap(&remap_table(kept))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    /// Feature 0 perfectly predicts class 1, feature 1 perfectly predicts
    /// class 0, features 2 and 3 are noise present everywhere.
    fn corpus() -> Vec<LabeledExample> {
        vec![
            example(&[(0, 1), (2, 1), (3, 1)], 1),
            example(&[(0, 1), (2, 1)], 1),
            example(&[(0, 2), (3, 1)], 1),
            example(&[(1, 1), (2, 1), (3, 1)], 0),
            example(&[(1, 1), (2, 1)], 0),
            example(&[(1, 3), (3, 1)], 0),
        ]
    }

    #[test]
    fn discriminative_features_score_highest() {
        let scores = chi_square_scores(&corpus(), 4, 2);
        assert!(scores[0] > scores[2], "feature 0 beats noise feature 2");
        assert!(scores[1] > scores[3], "feature 1 beats noise feature 3");
        assert!(scores[0] > 1.0 && scores[1] > 1.0);
    }

    #[test]
    fn top_k_selection_keeps_the_discriminative_features() {
        let kept = select_top_features(&corpus(), 4, 2, 2);
        let mut sorted = kept.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn selection_never_exceeds_feature_count() {
        let kept = select_top_features(&corpus(), 4, 2, 100);
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn apply_selection_remaps_examples() {
        let kept = vec![1usize, 0];
        let reduced = apply_selection(&corpus(), &kept);
        // Old feature 1 is now 0, old feature 0 is now 1; noise features dropped.
        assert_eq!(reduced[0].features.iter().collect::<Vec<_>>(), vec![(1, 1)]);
        assert_eq!(reduced[3].features.iter().collect::<Vec<_>>(), vec![(0, 1)]);
        assert_eq!(reduced[0].label, 1);
    }

    #[test]
    fn empty_corpus_yields_zero_scores() {
        let scores = chi_square_scores(&[], 3, 2);
        assert_eq!(scores, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn remap_vector_drops_unselected_features() {
        let v = SparseVector::from_pairs(vec![(0, 2), (3, 1)]);
        let r = remap_vector(&v, &[3]);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(0, 1)]);
    }
}
