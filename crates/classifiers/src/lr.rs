//! Logistic regression trained with stochastic gradient descent.
//!
//! The paper uses LIBLINEAR's trust-region solvers; any trainer that produces
//! linear weight vectors exercises the same protocol code, so we use plain
//! SGD with L2 regularization (binary LR for spam, softmax/multinomial LR for
//! topics — the "LR" rows of Figures 9 and 13).

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{LabeledExample, LinearModel, Trainer};

/// Binary logistic regression (class 1 = positive/spam).
#[derive(Clone, Copy, Debug)]
pub struct BinaryLrTrainer {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate (decayed as 1/(1 + t·decay)).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed for shuffling (deterministic training).
    pub seed: u64,
}

impl Default for BinaryLrTrainer {
    fn default() -> Self {
        BinaryLrTrainer {
            epochs: 30,
            learning_rate: 0.5,
            l2: 1e-4,
            seed: 7,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Trainer for BinaryLrTrainer {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel {
        assert_eq!(num_classes, 2, "binary LR requires exactly two classes");
        let mut w = vec![0f64; num_features];
        let mut b = 0f64;
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut step = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let ex = &examples[idx];
                let y = if ex.label == 1 { 1.0 } else { 0.0 };
                let mut z = b;
                for (i, c) in ex.features.iter() {
                    if i < num_features {
                        z += w[i] * c as f64;
                    }
                }
                let err = sigmoid(z) - y;
                let lr = self.learning_rate / (1.0 + 0.01 * step as f64);
                for (i, c) in ex.features.iter() {
                    if i < num_features {
                        w[i] -= lr * (err * c as f64 + self.l2 * w[i]);
                    }
                }
                b -= lr * err;
                step += 1;
            }
        }
        // Express as a two-class argmax model: class 0 weights are zero,
        // class 1 weights are the LR weights (score difference = logit).
        LinearModel {
            weights: vec![vec![0.0; num_features], w],
            bias: vec![0.0, b],
        }
    }
}

/// Multinomial (softmax) logistic regression for topic extraction.
#[derive(Clone, Copy, Debug)]
pub struct MultinomialLrTrainer {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for MultinomialLrTrainer {
    fn default() -> Self {
        MultinomialLrTrainer {
            epochs: 20,
            learning_rate: 0.3,
            l2: 1e-4,
            seed: 7,
        }
    }
}

impl Trainer for MultinomialLrTrainer {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel {
        let mut weights = vec![vec![0f64; num_features]; num_classes];
        let mut bias = vec![0f64; num_classes];
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut step = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let ex = &examples[idx];
                // Scores and softmax over classes.
                let mut scores: Vec<f64> = bias.clone();
                for (i, c) in ex.features.iter() {
                    if i < num_features {
                        for (k, s) in scores.iter_mut().enumerate() {
                            *s += weights[k][i] * c as f64;
                        }
                    }
                }
                let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
                let sum: f64 = exps.iter().sum();
                let lr = self.learning_rate / (1.0 + 0.01 * step as f64);
                for k in 0..num_classes {
                    let p = exps[k] / sum;
                    let err = p - if ex.label == k { 1.0 } else { 0.0 };
                    for (i, c) in ex.features.iter() {
                        if i < num_features {
                            weights[k][i] -= lr * (err * c as f64 + self.l2 * weights[k][i]);
                        }
                    }
                    bias[k] -= lr * err;
                }
                step += 1;
            }
        }
        LinearModel { weights, bias }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseVector;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    #[test]
    fn binary_lr_learns_a_separable_problem() {
        // Feature 0 and 1 indicate spam; 2 and 3 indicate ham.
        let mut corpus = Vec::new();
        for _ in 0..20 {
            corpus.push(example(&[(0, 1), (1, 2)], 1));
            corpus.push(example(&[(0, 2)], 1));
            corpus.push(example(&[(2, 1), (3, 2)], 0));
            corpus.push(example(&[(3, 1)], 0));
        }
        let model = BinaryLrTrainer::default().train(&corpus, 4, 2);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(0, 1)])), 1);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(2, 2)])), 0);
        // Spam weights should be positive, ham weights negative (class-1 column).
        assert!(model.weights[1][0] > 0.0);
        assert!(model.weights[1][3] < 0.0);
    }

    #[test]
    fn binary_lr_is_deterministic_given_seed() {
        let corpus: Vec<LabeledExample> = (0..40)
            .map(|i| example(&[(i % 4, 1 + (i % 3) as u32)], i % 2))
            .collect();
        let a = BinaryLrTrainer::default().train(&corpus, 4, 2);
        let b = BinaryLrTrainer::default().train(&corpus, 4, 2);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn multinomial_lr_learns_three_topics() {
        let mut corpus = Vec::new();
        for _ in 0..15 {
            corpus.push(example(&[(0, 2), (1, 1)], 0));
            corpus.push(example(&[(2, 2), (3, 1)], 1));
            corpus.push(example(&[(4, 1), (5, 2)], 2));
        }
        let model = MultinomialLrTrainer::default().train(&corpus, 6, 3);
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(0, 1), (1, 1)])),
            0
        );
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(2, 1)])), 1);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(5, 3)])), 2);
    }

    #[test]
    #[should_panic]
    fn binary_lr_rejects_multiclass() {
        let corpus = vec![example(&[(0, 1)], 0)];
        let _ = BinaryLrTrainer::default().train(&corpus, 1, 3);
    }
}
