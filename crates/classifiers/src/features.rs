//! Tokenization, vocabulary construction and sparse feature vectors.
//!
//! The paper represents an email as a feature vector `x = (x_1, …, x_N)`
//! where `x_i` is either the presence (GR-NB spam filtering) or the frequency
//! (multinomial NB topic extraction) of feature `i` (§3.1). The mapping from
//! documents to features is deliberately simple — lowercased alphanumeric
//! words — because the protocols are agnostic to it; what matters for the
//! cost model is `N` (vocabulary size) and `L` (features per email).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A sparse feature vector: sorted `(feature index, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(usize, u32)>,
}

impl SparseVector {
    /// Builds a vector from (index, count) pairs; duplicate indices are
    /// merged and zero counts dropped.
    pub fn from_pairs(mut pairs: Vec<(usize, u32)>) -> Self {
        pairs.sort_by_key(|&(i, _)| i);
        let mut entries: Vec<(usize, u32)> = Vec::with_capacity(pairs.len());
        for (i, c) in pairs {
            if c == 0 {
                continue;
            }
            match entries.last_mut() {
                Some((last_i, last_c)) if *last_i == i => *last_c += c,
                _ => entries.push((i, c)),
            }
        }
        SparseVector { entries }
    }

    /// Number of distinct features present (the paper's `L`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no features are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(feature index, count)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Count for a specific feature (0 if absent).
    pub fn get(&self, index: usize) -> u32 {
        self.entries
            .binary_search_by_key(&index, |&(i, _)| i)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0)
    }

    /// Sum of all counts (document length under the multinomial model).
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c as u64).sum()
    }

    /// Converts counts to presence indicators (for Bernoulli/GR-NB).
    pub fn to_presence(&self) -> SparseVector {
        SparseVector {
            entries: self.entries.iter().map(|&(i, _)| (i, 1)).collect(),
        }
    }

    /// Caps each count at `max` (the paper's `f_in`-bit frequencies, §4.2).
    pub fn clamp_counts(&self, max: u32) -> SparseVector {
        SparseVector {
            entries: self.entries.iter().map(|&(i, c)| (i, c.min(max))).collect(),
        }
    }

    /// Keeps only features present in the remapping table, renumbering them
    /// (used after feature selection).
    pub fn remap(&self, mapping: &HashMap<usize, usize>) -> SparseVector {
        SparseVector::from_pairs(
            self.entries
                .iter()
                .filter_map(|&(i, c)| mapping.get(&i).map(|&new_i| (new_i, c)))
                .collect(),
        )
    }
}

/// Lowercasing alphanumeric tokenizer.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tokenizer {
    /// Minimum token length (shorter tokens are dropped).
    pub min_len: usize,
}

impl Tokenizer {
    /// Tokenizer with the default minimum token length of 2.
    pub fn new() -> Self {
        Tokenizer { min_len: 2 }
    }

    /// Splits text into lowercase alphanumeric tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| t.len() >= self.min_len)
            .map(|t| t.to_lowercase())
            .collect()
    }
}

/// A term → feature-index vocabulary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of known terms (the paper's N, before feature selection).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Index of a term, if known.
    pub fn get(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Term for an index.
    pub fn term(&self, index: usize) -> Option<&str> {
        self.terms.get(index).map(|s| s.as_str())
    }

    /// Adds a term (or returns its existing index).
    pub fn add(&mut self, term: &str) -> usize {
        if let Some(&i) = self.index.get(term) {
            return i;
        }
        let i = self.terms.len();
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), i);
        i
    }

    /// Builds a vocabulary from a corpus of documents.
    pub fn build(tokenizer: &Tokenizer, documents: &[&str]) -> Self {
        let mut vocab = Vocabulary::new();
        for doc in documents {
            for token in tokenizer.tokenize(doc) {
                vocab.add(&token);
            }
        }
        vocab
    }

    /// Converts a document into a count feature vector, ignoring unknown
    /// terms (frozen-vocabulary mode, the usual test-time behaviour).
    pub fn vectorize(&self, tokenizer: &Tokenizer, text: &str) -> SparseVector {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for token in tokenizer.tokenize(text) {
            if let Some(idx) = self.get(&token) {
                *counts.entry(idx).or_insert(0) += 1;
            }
        }
        SparseVector::from_pairs(counts.into_iter().collect())
    }

    /// Converts a document into a count vector, adding unknown terms to the
    /// vocabulary (training-time behaviour).
    pub fn vectorize_and_grow(&mut self, tokenizer: &Tokenizer, text: &str) -> SparseVector {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for token in tokenizer.tokenize(text) {
            let idx = self.add(&token);
            *counts.entry(idx).or_insert(0) += 1;
        }
        SparseVector::from_pairs(counts.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_merges_and_sorts() {
        let v = SparseVector::from_pairs(vec![(5, 2), (1, 1), (5, 3), (9, 0)]);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![(1, 1), (5, 5)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(5), 5);
        assert_eq!(v.get(9), 0);
        assert_eq!(v.total_count(), 6);
    }

    #[test]
    fn presence_and_clamping() {
        let v = SparseVector::from_pairs(vec![(0, 7), (3, 1)]);
        assert_eq!(
            v.to_presence().iter().collect::<Vec<_>>(),
            vec![(0, 1), (3, 1)]
        );
        assert_eq!(v.clamp_counts(3).get(0), 3);
        assert_eq!(v.clamp_counts(3).get(3), 1);
    }

    #[test]
    fn remap_filters_and_renumbers() {
        let v = SparseVector::from_pairs(vec![(0, 1), (5, 2), (9, 3)]);
        let mapping: HashMap<usize, usize> = [(5, 0), (9, 1)].into_iter().collect();
        let r = v.remap(&mapping);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn tokenizer_lowercases_and_filters() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("Hello, WORLD! A b2b offer: FREE $$$ v1agra"),
            vec!["hello", "world", "b2b", "offer", "free", "v1agra"]
        );
        assert!(t.tokenize("!!! ??? ...").is_empty());
    }

    #[test]
    fn vocabulary_growth_and_freezing() {
        let t = Tokenizer::new();
        let mut vocab = Vocabulary::new();
        let v1 = vocab.vectorize_and_grow(&t, "buy cheap pills cheap");
        assert_eq!(vocab.len(), 3);
        assert_eq!(v1.get(vocab.get("cheap").unwrap()), 2);

        // Frozen vectorization ignores unknown words.
        let v2 = vocab.vectorize(&t, "cheap unknown word");
        assert_eq!(v2.len(), 1);
        assert_eq!(v2.get(vocab.get("cheap").unwrap()), 1);
    }

    #[test]
    fn vocabulary_term_roundtrip() {
        let mut vocab = Vocabulary::new();
        let i = vocab.add("pretzel");
        assert_eq!(vocab.term(i), Some("pretzel"));
        assert_eq!(vocab.get("pretzel"), Some(i));
        assert_eq!(vocab.add("pretzel"), i, "adding twice keeps the index");
    }

    #[test]
    fn build_from_corpus() {
        let t = Tokenizer::new();
        let vocab = Vocabulary::build(&t, &["spam offer free", "meeting notes agenda"]);
        assert_eq!(vocab.len(), 6);
        let v = vocab.vectorize(&t, "free meeting");
        assert_eq!(v.len(), 2);
    }
}
