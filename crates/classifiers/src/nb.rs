//! Naive Bayes classifiers (paper §3.1 and Appendix A).
//!
//! * [`GrNbTrainer`] — the Graham–Robinson spam variant the paper calls
//!   GR-NB: a Bernoulli model over feature *presence* with Laplace smoothing;
//!   applying it computes expression (1), the difference of two per-class
//!   log-score dot products.
//! * [`GrahamTrainer`] — the original Graham formulation ("GR" row of
//!   Figure 9): the same Bernoulli statistics, but with Graham's clamped
//!   per-token spam probabilities.
//! * [`MultinomialNbTrainer`] — multinomial NB over term frequencies for
//!   topic extraction, computing expression (2).
//!
//! All trainers produce a [`LinearModel`] whose per-class score is a dot
//! product, so the same secure protocol applies to each.

use crate::{LabeledExample, LinearModel, Trainer};

/// Graham–Robinson Naive Bayes (Bernoulli NB over presence features).
#[derive(Clone, Copy, Debug)]
pub struct GrNbTrainer {
    /// Laplace smoothing constant.
    pub alpha: f64,
}

impl Default for GrNbTrainer {
    fn default() -> Self {
        GrNbTrainer { alpha: 1.0 }
    }
}

impl Trainer for GrNbTrainer {
    fn name(&self) -> &'static str {
        "GR-NB"
    }

    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel {
        // Document counts per class and per (class, feature) presence.
        let mut class_docs = vec![0f64; num_classes];
        let mut presence = vec![vec![0f64; num_features]; num_classes];
        for ex in examples {
            class_docs[ex.label] += 1.0;
            for (idx, _) in ex.features.iter() {
                if idx < num_features {
                    presence[ex.label][idx] += 1.0;
                }
            }
        }
        let total_docs: f64 = class_docs.iter().sum();
        let mut weights = Vec::with_capacity(num_classes);
        let mut bias = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            let denom = class_docs[c] + 2.0 * self.alpha;
            let w: Vec<f64> = (0..num_features)
                .map(|i| ((presence[c][i] + self.alpha) / denom).ln())
                .collect();
            weights.push(w);
            bias.push(
                ((class_docs[c] + self.alpha) / (total_docs + num_classes as f64 * self.alpha))
                    .ln(),
            );
        }
        LinearModel { weights, bias }
    }
}

/// Original Graham spam scoring ("GR" in Figure 9): per-token spam
/// probabilities clamped to [0.01, 0.99], combined in log-odds space.
#[derive(Clone, Copy, Debug)]
pub struct GrahamTrainer {
    /// Clamp applied to per-token probabilities.
    pub clamp: f64,
}

impl Default for GrahamTrainer {
    fn default() -> Self {
        GrahamTrainer { clamp: 0.01 }
    }
}

impl Trainer for GrahamTrainer {
    fn name(&self) -> &'static str {
        "GR"
    }

    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel {
        assert_eq!(
            num_classes, 2,
            "Graham's original scheme is spam/non-spam only"
        );
        let mut spam_docs = 0f64;
        let mut ham_docs = 0f64;
        let mut spam_presence = vec![0f64; num_features];
        let mut ham_presence = vec![0f64; num_features];
        for ex in examples {
            if ex.label == 1 {
                spam_docs += 1.0;
                for (idx, _) in ex.features.iter() {
                    if idx < num_features {
                        spam_presence[idx] += 1.0;
                    }
                }
            } else {
                ham_docs += 1.0;
                for (idx, _) in ex.features.iter() {
                    if idx < num_features {
                        ham_presence[idx] += 1.0;
                    }
                }
            }
        }
        // Graham's p(spam | token), clamped; expressed as log-odds weights on
        // the spam class so the model stays a linear argmax.
        let mut w_spam = vec![0f64; num_features];
        let w_ham = vec![0f64; num_features];
        for i in 0..num_features {
            let p_t_spam = (spam_presence[i] + 1.0) / (spam_docs + 2.0);
            let p_t_ham = (ham_presence[i] + 1.0) / (ham_docs + 2.0);
            let p = p_t_spam / (p_t_spam + p_t_ham);
            let p = p.clamp(self.clamp, 1.0 - self.clamp);
            w_spam[i] = (p / (1.0 - p)).ln();
        }
        let prior = ((spam_docs + 1.0) / (ham_docs + 1.0)).ln();
        LinearModel {
            weights: vec![w_ham, w_spam],
            bias: vec![0.0, prior],
        }
    }
}

/// Multinomial Naive Bayes over term frequencies (topic extraction).
#[derive(Clone, Copy, Debug)]
pub struct MultinomialNbTrainer {
    /// Laplace smoothing constant.
    pub alpha: f64,
}

impl Default for MultinomialNbTrainer {
    fn default() -> Self {
        MultinomialNbTrainer { alpha: 1.0 }
    }
}

impl Trainer for MultinomialNbTrainer {
    fn name(&self) -> &'static str {
        "NB"
    }

    fn train(
        &self,
        examples: &[LabeledExample],
        num_features: usize,
        num_classes: usize,
    ) -> LinearModel {
        let mut class_docs = vec![0f64; num_classes];
        let mut term_counts = vec![vec![0f64; num_features]; num_classes];
        let mut class_total_terms = vec![0f64; num_classes];
        for ex in examples {
            class_docs[ex.label] += 1.0;
            for (idx, count) in ex.features.iter() {
                if idx < num_features {
                    term_counts[ex.label][idx] += count as f64;
                    class_total_terms[ex.label] += count as f64;
                }
            }
        }
        let total_docs: f64 = class_docs.iter().sum();
        let mut weights = Vec::with_capacity(num_classes);
        let mut bias = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            let denom = class_total_terms[c] + self.alpha * num_features as f64;
            let w: Vec<f64> = (0..num_features)
                .map(|i| ((term_counts[c][i] + self.alpha) / denom).ln())
                .collect();
            weights.push(w);
            bias.push(
                ((class_docs[c] + self.alpha) / (total_docs + num_classes as f64 * self.alpha))
                    .ln(),
            );
        }
        LinearModel { weights, bias }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseVector;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    /// A tiny separable spam corpus over 4 features:
    /// 0 = "free", 1 = "viagra", 2 = "meeting", 3 = "agenda".
    fn spam_corpus() -> Vec<LabeledExample> {
        vec![
            example(&[(0, 2), (1, 1)], 1),
            example(&[(0, 1), (1, 2)], 1),
            example(&[(0, 3)], 1),
            example(&[(1, 1)], 1),
            example(&[(2, 2), (3, 1)], 0),
            example(&[(2, 1)], 0),
            example(&[(3, 2)], 0),
            example(&[(2, 1), (3, 1)], 0),
        ]
    }

    #[test]
    fn gr_nb_separates_spam_from_ham() {
        let model = GrNbTrainer::default().train(&spam_corpus(), 4, 2);
        assert_eq!(model.num_classes(), 2);
        assert_eq!(model.num_features(), 4);
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(0, 1), (1, 1)])),
            1
        );
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(2, 1), (3, 1)])),
            0
        );
    }

    #[test]
    fn graham_variant_agrees_on_clear_cases() {
        let model = GrahamTrainer::default().train(&spam_corpus(), 4, 2);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(1, 2)])), 1);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(3, 2)])), 0);
    }

    #[test]
    fn multinomial_nb_three_topics() {
        // Topics: 0 = sports (features 0,1), 1 = tech (2,3), 2 = food (4,5).
        let corpus = vec![
            example(&[(0, 3), (1, 1)], 0),
            example(&[(0, 1), (1, 2)], 0),
            example(&[(2, 2), (3, 2)], 1),
            example(&[(2, 3)], 1),
            example(&[(4, 2), (5, 1)], 2),
            example(&[(5, 3)], 2),
        ];
        let model = MultinomialNbTrainer::default().train(&corpus, 6, 3);
        assert_eq!(model.predict(&SparseVector::from_pairs(vec![(0, 2)])), 0);
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(3, 1), (2, 1)])),
            1
        );
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(4, 1), (5, 1)])),
            2
        );
    }

    #[test]
    fn multinomial_nb_frequency_sensitivity() {
        // With mixed evidence, the heavier term should win.
        let corpus = vec![
            example(&[(0, 5)], 0),
            example(&[(0, 5)], 0),
            example(&[(1, 5)], 1),
            example(&[(1, 5)], 1),
        ];
        let model = MultinomialNbTrainer::default().train(&corpus, 2, 2);
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(0, 3), (1, 1)])),
            0
        );
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(0, 1), (1, 3)])),
            1
        );
    }

    #[test]
    fn priors_break_ties_for_empty_documents() {
        // 3:1 class imbalance; an empty email should go to the majority class.
        let corpus = vec![
            example(&[(0, 1)], 0),
            example(&[(0, 1)], 0),
            example(&[(0, 1)], 0),
            example(&[(1, 1)], 1),
        ];
        let model = GrNbTrainer::default().train(&corpus, 2, 2);
        assert_eq!(model.predict(&SparseVector::default()), 0);
    }

    #[test]
    fn trainer_names() {
        assert_eq!(GrNbTrainer::default().name(), "GR-NB");
        assert_eq!(GrahamTrainer::default().name(), "GR");
        assert_eq!(MultinomialNbTrainer::default().name(), "NB");
    }
}
