//! Fixed-point quantization of trained models (paper §4.2's `b_in`-bit model
//! parameters).
//!
//! The secure dot-product protocols operate on non-negative integers packed
//! into AHE slots, while trained models have real-valued (and typically
//! negative, log-probability) weights. Quantization maps every weight and
//! bias through the same affine transform `q = round((w - min) · scale)`,
//! which preserves the per-email argmax because the additive shift
//! contributes identically to every class score (the email's feature count is
//! the same for all classes).

use crate::{LinearModel, SparseVector};

/// A quantized model ready for the secure protocols: `(N+1) × B` non-negative
/// integers where the last row is the bias row (applied with frequency 1,
/// matching the paper's `(~x, 1)` convention in §3.3).
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedModel {
    /// Row-major matrix data: `rows() × cols()`.
    pub data: Vec<u64>,
    /// Number of rows = num_features + 1 (bias row last).
    pub rows: usize,
    /// Number of columns = num_classes (the paper's B).
    pub cols: usize,
    /// Bits per quantized value (the paper's `b_in`).
    pub weight_bits: u32,
    /// Affine transform parameters (for documentation/diagnostics).
    pub scale: f64,
    /// Minimum original weight (subtracted before scaling).
    pub offset: f64,
}

impl QuantizedModel {
    /// Quantizes a trained model to `weight_bits`-bit non-negative integers.
    pub fn from_model(model: &LinearModel, weight_bits: u32) -> Self {
        assert!((2..=32).contains(&weight_bits));
        let cols = model.num_classes();
        let features = model.num_features();
        let rows = features + 1;

        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for w in &model.weights {
            for &v in w {
                min = min.min(v);
                max = max.max(v);
            }
        }
        for &b in &model.bias {
            min = min.min(b);
            max = max.max(b);
        }
        if !min.is_finite() {
            min = 0.0;
            max = 0.0;
        }
        let range = (max - min).max(1e-12);
        let scale = ((1u64 << weight_bits) - 1) as f64 / range;

        let q = |v: f64| -> u64 { ((v - min) * scale).round().max(0.0) as u64 };

        let mut data = vec![0u64; rows * cols];
        for j in 0..cols {
            for i in 0..features {
                data[i * cols + j] = q(model.weights[j][i]);
            }
            data[features * cols + j] = q(model.bias[j]);
        }
        QuantizedModel {
            data,
            rows,
            cols,
            weight_bits,
            scale,
            offset: min,
        }
    }

    /// Element accessor.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.data[row * self.cols + col]
    }

    /// Index of the bias row.
    pub fn bias_row(&self) -> usize {
        self.rows - 1
    }

    /// Converts an email's sparse feature vector into the protocol's sparse
    /// `(row, frequency)` form, clamping frequencies to `freq_bits` bits and
    /// appending the bias row with frequency 1.
    pub fn protocol_features(&self, x: &SparseVector, freq_bits: u32) -> Vec<(usize, u64)> {
        let max_freq = (1u64 << freq_bits) - 1;
        let mut out: Vec<(usize, u64)> = x
            .iter()
            .filter(|&(i, _)| i < self.rows - 1)
            .map(|(i, c)| (i, (c as u64).min(max_freq)))
            .collect();
        out.push((self.bias_row(), 1));
        out
    }

    /// Plaintext per-class scores using the quantized weights (the reference
    /// the secure protocol must reproduce exactly).
    pub fn scores(&self, features: &[(usize, u64)]) -> Vec<u64> {
        let mut out = vec![0u64; self.cols];
        for &(row, freq) in features {
            for (j, o) in out.iter_mut().enumerate() {
                *o += self.get(row, j) * freq;
            }
        }
        out
    }

    /// Predicted class from quantized scores.
    ///
    /// Ties break toward the lowest class index, matching the strict
    /// greater-than folds used by the Yao comparison and argmax circuits, so
    /// that the secure protocols reproduce this reference exactly.
    pub fn predict(&self, features: &[(usize, u64)]) -> usize {
        let scores = self.scores(features);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        best
    }

    /// Upper bound on the bits of any per-class score for an email with at
    /// most `max_features` features and frequencies up to `max_freq` — the
    /// paper's `b = log L + b_in + f_in` accounting (§4.2). Used to validate
    /// that scores fit the AHE slot width.
    pub fn score_bits(&self, max_features: u64, max_freq: u64) -> u32 {
        let max_weight = (1u64 << self.weight_bits) - 1;
        let bound = (max_features + 1) as u128 * max_weight as u128 * max_freq as u128;
        128 - bound.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nb::MultinomialNbTrainer;
    use crate::{LabeledExample, Trainer};

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    fn toy_model() -> LinearModel {
        LinearModel {
            weights: vec![vec![-3.0, -1.0], vec![-2.0, -5.0]],
            bias: vec![-0.5, -0.7],
        }
    }

    #[test]
    fn quantized_values_are_bounded_and_ordered() {
        let q = QuantizedModel::from_model(&toy_model(), 10);
        assert_eq!(q.rows, 3);
        assert_eq!(q.cols, 2);
        let max = (1u64 << 10) - 1;
        assert!(q.data.iter().all(|&v| v <= max));
        // The smallest original weight maps to 0 and the largest to max.
        assert_eq!(q.data.iter().copied().min().unwrap(), 0);
        assert_eq!(q.data.iter().copied().max().unwrap(), max);
        // Relative order preserved: w[0][0]=-3 < w[0][1]=-1 (class 0 column).
        assert!(q.get(0, 0) < q.get(1, 0));
    }

    #[test]
    fn quantized_argmax_matches_float_argmax_on_trained_model() {
        // Train a small NB model and check agreement between float and
        // quantized predictions on the training set.
        let mut corpus = Vec::new();
        for i in 0..30 {
            corpus.push(example(&[(i % 5, 2), (5 + i % 3, 1)], 0));
            corpus.push(example(&[(10 + i % 5, 2), (15 + i % 3, 1)], 1));
            corpus.push(example(&[(20 + i % 5, 3)], 2));
        }
        let model = MultinomialNbTrainer::default().train(&corpus, 25, 3);
        let q = QuantizedModel::from_model(&model, 16);
        let mut agree = 0;
        for ex in &corpus {
            let float_pred = model.predict(&ex.features);
            let q_pred = q.predict(&q.protocol_features(&ex.features, 8));
            if float_pred == q_pred {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / corpus.len() as f64 > 0.95,
            "quantization must not change predictions materially ({agree}/{})",
            corpus.len()
        );
    }

    #[test]
    fn protocol_features_append_bias_and_clamp() {
        let q = QuantizedModel::from_model(&toy_model(), 8);
        let x = SparseVector::from_pairs(vec![(0, 300), (1, 1), (99, 5)]);
        let f = q.protocol_features(&x, 8);
        // Out-of-range feature 99 dropped; bias row appended with freq 1.
        assert_eq!(f.len(), 3);
        assert_eq!(f[0], (0, 255));
        assert_eq!(f[1], (1, 1));
        assert_eq!(f[2], (q.bias_row(), 1));
    }

    #[test]
    fn score_bits_accounting() {
        let q = QuantizedModel::from_model(&toy_model(), 16);
        // L=1000 features, freq up to 255: bound = 1001 * 65535 * 255 ≈ 2^34
        let bits = q.score_bits(1000, 255);
        assert!((33..=35).contains(&bits), "got {bits}");
    }

    #[test]
    fn scores_match_manual_computation() {
        let q = QuantizedModel::from_model(&toy_model(), 8);
        let features = vec![(0usize, 2u64), (q.bias_row(), 1)];
        let s = q.scores(&features);
        assert_eq!(s[0], q.get(0, 0) * 2 + q.get(2, 0));
        assert_eq!(s[1], q.get(0, 1) * 2 + q.get(2, 1));
    }
}
