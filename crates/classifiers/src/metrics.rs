//! Classification metrics: accuracy, precision, recall (Figures 9, 13, 14).

use crate::{LabeledExample, LinearModel};

/// Binary confusion-matrix counts (positive class = 1, i.e. spam).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// Spam classified as spam.
    pub true_positives: usize,
    /// Ham classified as spam (drives precision down).
    pub false_positives: usize,
    /// Ham classified as ham.
    pub true_negatives: usize,
    /// Spam classified as ham (drives recall down).
    pub false_negatives: usize,
}

impl BinaryConfusion {
    /// Overall accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Precision = TP / (TP + FP); 1.0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall = TP / (TP + FN); 1.0 when there were no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }
}

/// Evaluates a model's accuracy on labeled examples.
pub fn accuracy(model: &LinearModel, examples: &[LabeledExample]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let correct = examples
        .iter()
        .filter(|ex| model.predict(&ex.features) == ex.label)
        .count();
    correct as f64 / examples.len() as f64
}

/// Computes the binary confusion matrix of a model (class 1 = positive).
pub fn confusion_binary(model: &LinearModel, examples: &[LabeledExample]) -> BinaryConfusion {
    let mut c = BinaryConfusion::default();
    for ex in examples {
        let pred = model.predict(&ex.features);
        match (ex.label, pred) {
            (1, 1) => c.true_positives += 1,
            (0, 1) => c.false_positives += 1,
            (0, 0) => c.true_negatives += 1,
            (1, 0) => c.false_negatives += 1,
            _ => {}
        }
    }
    c
}

/// Convenience: (accuracy, precision, recall) as percentages — the exact
/// columns of Figure 9.
pub fn precision_recall(model: &LinearModel, examples: &[LabeledExample]) -> (f64, f64, f64) {
    let c = confusion_binary(model, examples);
    (
        c.accuracy() * 100.0,
        c.precision() * 100.0,
        c.recall() * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseVector;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    /// Model that predicts class 1 iff feature 0 is present.
    fn feature0_model() -> LinearModel {
        LinearModel {
            weights: vec![vec![0.0, 0.0], vec![1.0, 0.0]],
            bias: vec![0.5, 0.0],
        }
    }

    #[test]
    fn confusion_counts_all_four_cells() {
        let model = feature0_model();
        let examples = vec![
            example(&[(0, 1)], 1), // TP
            example(&[(0, 1)], 0), // FP
            example(&[(1, 1)], 0), // TN
            example(&[(1, 1)], 1), // FN
        ];
        let c = confusion_binary(&model, &examples);
        assert_eq!(
            c,
            BinaryConfusion {
                true_positives: 1,
                false_positives: 1,
                true_negatives: 1,
                false_negatives: 1
            }
        );
        assert!((c.accuracy() - 0.5).abs() < 1e-9);
        assert!((c.precision() - 0.5).abs() < 1e-9);
        assert!((c.recall() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn accuracy_on_perfect_and_empty_sets() {
        let model = feature0_model();
        let examples = vec![example(&[(0, 1)], 1), example(&[(1, 1)], 0)];
        assert!((accuracy(&model, &examples) - 1.0).abs() < 1e-9);
        assert_eq!(accuracy(&model, &[]), 0.0);
    }

    #[test]
    fn degenerate_precision_and_recall_default_to_one() {
        let c = BinaryConfusion::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn percentage_helper_scales_by_100() {
        let model = feature0_model();
        let examples = vec![example(&[(0, 1)], 1), example(&[(1, 1)], 0)];
        let (a, p, r) = precision_recall(&model, &examples);
        assert_eq!((a, p, r), (100.0, 100.0, 100.0));
    }
}
