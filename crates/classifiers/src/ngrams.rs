//! Hashed byte n-gram feature extraction.
//!
//! The paper lists virus scanning among the provider functions an encrypted
//! mailbox would ideally still support (§1, §7). Malware detectors over email
//! attachments are commonly linear models over *byte n-gram* features rather
//! than word tokens, so this module provides the corresponding feature
//! extractor: overlapping `n`-byte windows of the raw content, hashed into a
//! fixed number of buckets ("feature hashing"). The resulting
//! [`SparseVector`] feeds the exact same secure classification protocol as
//! spam filtering — only the feature space differs.

use crate::SparseVector;

/// Extracts hashed byte n-gram features from raw bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NGramExtractor {
    /// Window length in bytes (typically 3 or 4).
    pub n: usize,
    /// Number of hash buckets = number of model features (the paper's N).
    pub buckets: usize,
}

impl NGramExtractor {
    /// Creates an extractor for `n`-byte windows hashed into `buckets`
    /// features.
    pub fn new(n: usize, buckets: usize) -> Self {
        assert!(n >= 1, "n-gram length must be at least 1");
        assert!(buckets >= 1, "need at least one hash bucket");
        NGramExtractor { n, buckets }
    }

    /// Extracts the hashed n-gram count vector of `content`.
    ///
    /// Content shorter than `n` bytes yields an empty vector (there is no
    /// complete window to hash).
    pub fn extract(&self, content: &[u8]) -> SparseVector {
        if content.len() < self.n {
            return SparseVector::from_pairs(Vec::new());
        }
        let mut pairs = Vec::with_capacity(content.len() - self.n + 1);
        for window in content.windows(self.n) {
            pairs.push((self.bucket(window), 1u32));
        }
        SparseVector::from_pairs(pairs)
    }

    /// Bucket index of one n-gram window (FNV-1a over the window bytes).
    pub fn bucket(&self, window: &[u8]) -> usize {
        debug_assert_eq!(window.len(), self.n);
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut hash = FNV_OFFSET;
        for &b in window {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        (hash % self.buckets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn extraction_counts_overlapping_windows() {
        let ex = NGramExtractor::new(2, 1 << 16);
        let v = ex.extract(b"aaaa");
        // Three overlapping "aa" windows hash to the same bucket.
        assert_eq!(v.iter().map(|(_, c)| c).sum::<u32>(), 3);
        assert_eq!(v.iter().count(), 1);
    }

    #[test]
    fn short_content_yields_empty_vector() {
        let ex = NGramExtractor::new(4, 100);
        assert_eq!(ex.extract(b"abc").iter().count(), 0);
        assert_eq!(ex.extract(b"").iter().count(), 0);
    }

    #[test]
    fn identical_content_extracts_identically() {
        let ex = NGramExtractor::new(3, 4096);
        let payload = b"MZ\x90\x00\x03\x00\x00\x00\x04PE header-ish bytes";
        assert_eq!(ex.extract(payload), ex.extract(payload));
    }

    #[test]
    fn different_bucket_counts_change_the_feature_space() {
        let small = NGramExtractor::new(3, 8);
        let large = NGramExtractor::new(3, 1 << 20);
        let payload = b"some moderately long content with variety 0123456789";
        let v_small = small.extract(payload);
        let v_large = large.extract(payload);
        // With only 8 buckets the distinct-feature count collapses.
        assert!(v_small.iter().count() <= 8);
        assert!(v_large.iter().count() > v_small.iter().count());
    }

    #[test]
    #[should_panic(expected = "n-gram length")]
    fn zero_length_ngrams_are_rejected() {
        NGramExtractor::new(0, 10);
    }

    proptest! {
        #[test]
        fn bucket_indexes_stay_in_range(
            content in proptest::collection::vec(any::<u8>(), 0..200),
            n in 1usize..6,
            buckets in 1usize..10_000,
        ) {
            let ex = NGramExtractor::new(n, buckets);
            let v = ex.extract(&content);
            for (idx, count) in v.iter() {
                prop_assert!(idx < buckets);
                prop_assert!(count >= 1);
            }
        }

        #[test]
        fn total_count_equals_number_of_windows(
            content in proptest::collection::vec(any::<u8>(), 0..200),
            n in 1usize..6,
        ) {
            let ex = NGramExtractor::new(n, 1 << 16);
            let v = ex.extract(&content);
            let expected = content.len().saturating_sub(n - 1);
            prop_assert_eq!(v.iter().map(|(_, c)| c as usize).sum::<usize>(), expected);
        }
    }
}
