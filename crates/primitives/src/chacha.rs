//! ChaCha20 (RFC 8439) stream cipher and a deterministic PRG built on it.

/// ChaCha20 keystream generator / stream cipher.
///
/// Used by the e2e module for payload encryption and, through [`Prg`], as the
/// expansion function in OT extension and wire-label generation.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

impl ChaCha20 {
    /// Creates a cipher instance from a 32-byte key and 12-byte nonce, with
    /// the block counter starting at `counter` (RFC 8439 uses 1 for AEAD
    /// payloads, 0 for plain keystream use).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut key_words = [0u32; 8];
        for (i, w) in key_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let mut nonce_words = [0u32; 3];
        for (i, w) in nonce_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha20 {
            key: key_words,
            nonce: nonce_words,
            counter,
        }
    }

    /// Produces the 64-byte keystream block for block index `counter`.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [
            0x61707865u32,
            0x3320646e,
            0x79622d32,
            0x6b206574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter,
            self.nonce[0],
            self.nonce[1],
            self.nonce[2],
        ];
        let initial = state;
        for _ in 0..10 {
            // Column rounds
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Encrypts or decrypts `data` in place (XOR with the keystream starting
    /// at the instance's initial counter).
    pub fn apply_keystream(&self, data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(self.counter.wrapping_add(block_idx as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: returns the encryption/decryption of `data`.
    pub fn process(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(&mut out);
        out
    }
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Deterministic pseudo-random generator seeded from a 32-byte key.
///
/// Two parties seeding a `Prg` with the same seed derive identical byte
/// streams — this is what OT extension and the "joint randomness" AHE
/// parameter derivation (paper §3.3, footnote 3) rely on.
pub struct Prg {
    cipher: ChaCha20,
    buffer: [u8; 64],
    buffer_pos: usize,
    block_counter: u32,
}

impl Prg {
    /// Creates a PRG from a 32-byte seed.
    pub fn new(seed: &[u8; 32]) -> Self {
        let cipher = ChaCha20::new(seed, &[0u8; 12], 0);
        Prg {
            cipher,
            buffer: [0u8; 64],
            buffer_pos: 64,
            block_counter: 0,
        }
    }

    /// Creates a PRG from an arbitrary-length seed by hashing it first.
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        Self::new(&crate::sha256(seed))
    }

    /// Fills `out` with pseudo-random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buffer_pos == 64 {
                self.buffer = self.cipher.block(self.block_counter);
                self.block_counter = self.block_counter.wrapping_add(1);
                self.buffer_pos = 0;
            }
            *byte = self.buffer[self.buffer_pos];
            self.buffer_pos += 1;
        }
    }

    /// Returns `n` pseudo-random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill(&mut out);
        out
    }

    /// Returns a pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a pseudo-random `u64` below `bound` (rejection sampling).
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a pseudo-random 128-bit block (garbled-circuit wire label size).
    pub fn next_block(&mut self) -> [u8; 16] {
        let mut b = [0u8; 16];
        self.fill(&mut b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block(1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 §2.4.2
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let ct = cipher.process(plaintext);
        assert_eq!(
            hex(&ct[..64]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
        );
        // Decryption roundtrips.
        assert_eq!(cipher.process(&ct), plaintext.to_vec());
    }

    #[test]
    fn keystream_differs_across_nonces() {
        let key = [7u8; 32];
        let c1 = ChaCha20::new(&key, &[1u8; 12], 0);
        let c2 = ChaCha20::new(&key, &[2u8; 12], 0);
        assert_ne!(c1.block(0), c2.block(0));
    }

    #[test]
    fn prg_is_deterministic_and_streams() {
        let mut a = Prg::new(&[42u8; 32]);
        let mut b = Prg::new(&[42u8; 32]);
        // Same seed, different read granularity, identical stream.
        let bytes_a = a.bytes(200);
        let mut bytes_b = b.bytes(13);
        bytes_b.extend(b.bytes(187));
        assert_eq!(bytes_a, bytes_b);

        let mut c = Prg::new(&[43u8; 32]);
        assert_ne!(bytes_a, c.bytes(200));
    }

    #[test]
    fn prg_next_u64_below_respects_bound() {
        let mut prg = Prg::from_seed_bytes(b"bound test");
        for _ in 0..1000 {
            assert!(prg.next_u64_below(7) < 7);
        }
    }

    #[test]
    fn prg_from_seed_bytes_distinct_seeds() {
        let mut a = Prg::from_seed_bytes(b"seed one");
        let mut b = Prg::from_seed_bytes(b"seed two");
        assert_ne!(a.bytes(32), b.bytes(32));
    }
}
