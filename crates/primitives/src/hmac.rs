//! HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869).

use crate::sha256::{sha256, Sha256};

const BLOCK_LEN: usize = 64;

/// HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-SHA-256: extract-then-expand key derivation.
///
/// Produces `out_len` bytes of key material from `ikm` (input keying
/// material), an optional `salt`, and a context `info` string.
/// Panics if more than 255 * 32 bytes are requested (per RFC 5869).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "HKDF output too long");
    // Extract
    let prk = hmac_sha256(salt, ikm);
    // Expand
    let mut output = Vec::with_capacity(out_len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while output.len() < out_len {
        let mut data = previous.clone();
        data.extend_from_slice(info);
        data.push(counter);
        let block = hmac_sha256(&prk, &data);
        previous = block.to_vec();
        output.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    output.truncate(out_len);
    output
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = vec![0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test case 6: 131-byte key (forces the key-hashing path).
        let key = vec![0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hkdf_rfc5869_test_case_1() {
        let ikm = unhex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_different_infos_diverge() {
        let a = hkdf(b"salt", b"secret", b"context-a", 32);
        let b = hkdf(b"salt", b"secret", b"context-b", 32);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn hkdf_long_output() {
        let out = hkdf(b"", b"ikm", b"", 100);
        assert_eq!(out.len(), 100);
        // Deterministic.
        assert_eq!(out, hkdf(b"", b"ikm", b"", 100));
    }
}
