//! The gate-row hash used by the garbled circuit scheme.
//!
//! Garbling a gate encrypts each output label under the pair of input labels
//! for that row: `ct = H(A, B, gate_id) XOR output_label`. The hash must be
//! correlation-robust; we instantiate it with SHA-256 over the two 128-bit
//! labels and the gate index, truncated to 128 bits. (A fixed-key AES
//! construction would be faster but SHA-256 keeps the crate dependency-free;
//! the Yao cost rows in Figure 6 are measured with this instantiation and the
//! relative shape versus the other operations is preserved.)

use crate::sha256::Sha256;

/// Hashes two wire labels and a gate identifier into a 16-byte pad.
pub fn gc_hash(a: &[u8; 16], b: &[u8; 16], gate_id: u64) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(b"pretzel-gc-v1");
    h.update(a);
    h.update(b);
    h.update(&gate_id.to_le_bytes());
    let digest = h.finalize();
    let mut out = [0u8; 16];
    out.copy_from_slice(&digest[..16]);
    out
}

/// Hashes a single wire label and a gate identifier (used for output-decoding
/// commitments and for half-gate style single-input hashing).
pub fn gc_hash_single(a: &[u8; 16], gate_id: u64) -> [u8; 16] {
    gc_hash(a, &[0u8; 16], gate_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = [1u8; 16];
        let b = [2u8; 16];
        assert_eq!(gc_hash(&a, &b, 7), gc_hash(&a, &b, 7));
    }

    #[test]
    fn sensitive_to_all_inputs() {
        let a = [1u8; 16];
        let b = [2u8; 16];
        let base = gc_hash(&a, &b, 7);
        assert_ne!(base, gc_hash(&b, &a, 7), "order matters");
        assert_ne!(base, gc_hash(&a, &b, 8), "gate id matters");
        let mut a2 = a;
        a2[15] ^= 1;
        assert_ne!(base, gc_hash(&a2, &b, 7), "label bits matter");
    }

    #[test]
    fn single_is_consistent_with_pair_form() {
        let a = [9u8; 16];
        assert_eq!(gc_hash_single(&a, 3), gc_hash(&a, &[0u8; 16], 3));
    }
}
