//! Symmetric cryptographic primitives implemented from scratch for Pretzel.
//!
//! The Pretzel stack needs a hash (key fingerprints, Schnorr challenges,
//! commitments), a MAC/KDF (the e2e module's encrypt-then-MAC construction and
//! key derivation), a stream cipher (payload encryption and the garbled
//! circuit wire-label PRG), and a deterministic PRG (OT extension, joint
//! randomness for AHE parameters). None of the allowed external crates provide
//! these, so they are implemented here:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256.
//! * [`mod@hmac`] — HMAC-SHA-256 and HKDF (RFC 5869).
//! * [`chacha`] — ChaCha20 (RFC 8439) block function, stream cipher, and a
//!   deterministic PRG.
//! * [`gchash`] — the hash used to encrypt garbled-gate rows,
//!   `H(A, B, gate_id)`, built on SHA-256.

pub mod chacha;
pub mod gchash;
pub mod hmac;
pub mod sha256;

pub use chacha::{ChaCha20, Prg};
pub use gchash::gc_hash;
pub use hmac::{hkdf, hmac_sha256};
pub use sha256::{sha256, Sha256};

/// Constant-time equality for byte strings (prevents MAC timing leaks).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// XORs `src` into `dst` in place. Panics if lengths differ.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn xor_in_place_roundtrip() {
        let mut a = vec![0xAAu8; 16];
        let b = vec![0x55u8; 16];
        xor_in_place(&mut a, &b);
        assert_eq!(a, vec![0xFFu8; 16]);
        xor_in_place(&mut a, &b);
        assert_eq!(a, vec![0xAAu8; 16]);
    }

    #[test]
    #[should_panic]
    fn xor_in_place_length_mismatch_panics() {
        let mut a = vec![0u8; 4];
        xor_in_place(&mut a, &[0u8; 5]);
    }
}
