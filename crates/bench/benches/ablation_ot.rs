//! Ablation: IKNP OT extension versus raw base OT for delivering the
//! evaluator's wire labels. Justifies the paper's amortize-into-setup
//! strategy (§3.3): per-email OTs must not involve public-key operations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use pretzel_gc::ot::{base_ot_receive, base_ot_send};
use pretzel_gc::otext::{OtExtReceiver, OtExtSender};
use pretzel_gc::OtGroup;
use pretzel_transport::memory_pair;

fn bench_ot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ot_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let ot_group = OtGroup::insecure_test_group(64, &mut rand::thread_rng());
    let count = 64usize; // spam circuit: 2 values x 30-bit noise ≈ 60 choice bits

    // Base OT for `count` transfers (public-key work per email).
    let ot_group_a = ot_group.clone();
    group.bench_function("base_ot_64_labels", |b| {
        b.iter(|| {
            let group_s = ot_group_a.clone();
            let group_r = ot_group_a.clone();
            let (mut chan_s, mut chan_r) = memory_pair();
            let messages: Vec<([u8; 32], [u8; 32])> = vec![([1u8; 32], [2u8; 32]); count];
            let choices: Vec<bool> = (0..count).map(|i| i % 2 == 0).collect();
            let handle = std::thread::spawn(move || {
                base_ot_receive(&mut chan_r, &group_r, &choices, &mut rand::thread_rng()).unwrap()
            });
            base_ot_send(&mut chan_s, &group_s, &messages, &mut rand::thread_rng()).unwrap();
            handle.join().unwrap()
        })
    });

    // OT extension: base OTs once (outside the measured loop), then cheap
    // symmetric-key extension per email.
    let (mut chan_s, mut chan_r) = memory_pair();
    let group_r = ot_group.clone();
    let receiver_handle = std::thread::spawn(move || {
        OtExtReceiver::setup(&mut chan_r, &group_r, &mut rand::thread_rng())
            .map(|r| (r, chan_r))
            .unwrap()
    });
    let mut sender = OtExtSender::setup(&mut chan_s, &ot_group, &mut rand::thread_rng()).unwrap();
    let (receiver, mut chan_r) = receiver_handle.join().unwrap();
    let receiver = std::sync::Mutex::new(receiver);
    let sender_pairs: Vec<([u8; 16], [u8; 16])> = vec![([3u8; 16], [4u8; 16]); count];
    group.bench_function("iknp_extension_64_labels", |b| {
        b.iter(|| {
            let choices: Vec<bool> = (0..count).map(|i| i % 3 == 0).collect();
            let pairs = sender_pairs.clone();
            std::thread::scope(|scope| {
                let recv = scope.spawn(|| {
                    receiver
                        .lock()
                        .unwrap()
                        .extend(&mut chan_r, &choices)
                        .unwrap()
                });
                sender.extend(&mut chan_s, &pairs).unwrap();
                recv.join().unwrap()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ot);
criterion_main!(benches);
