//! Ablation: Pretzel's across-row packing (§4.2) versus GLLM's legacy per-row
//! packing, on the client's per-email dot-product computation (spam shape,
//! B = 2). Complements the storage comparison of Figure 8.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use pretzel_core::PretzelConfig;
use pretzel_sdp::rlwe_pack::{client_dot_product, encrypt_model, Packing};
use pretzel_sdp::{ModelMatrix, SparseFeatures};

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let config = PretzelConfig::test();
    let params = config.rlwe_params();
    let mut rng = rand::thread_rng();
    let (_, pk) = pretzel_rlwe::keygen(&params, None, &mut rng);

    let rows = 2_000usize;
    let cols = 2usize;
    let data: Vec<u64> = (0..rows * cols).map(|i| (i % 1000) as u64).collect();
    let model = ModelMatrix::from_rows(rows, cols, data);
    let features: SparseFeatures = (0..300)
        .map(|i| ((i * 7) % rows, (i % 15 + 1) as u64))
        .collect();

    for packing in [Packing::AcrossRow, Packing::LegacyPerRow] {
        let enc = encrypt_model(&pk, &model, packing, &mut rng).unwrap();
        group.bench_function(format!("dot_product_{packing:?}"), |b| {
            b.iter(|| client_dot_product(&pk, &enc, &features).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
