//! Criterion microbenchmarks backing Figure 6: the primitive operations whose
//! costs drive every row of the Figure 3 cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use pretzel_core::PretzelConfig;
use pretzel_datasets::synthetic_email_text;
use pretzel_e2e::{DhGroup, Email, Identity};

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let config = PretzelConfig::test();
    let mut rng = rand::thread_rng();
    let sk = pretzel_paillier::keygen(config.paillier_bits, &mut rng);
    let pk = sk.public();
    let ct = pk.encrypt_u64(123456, &mut rng).unwrap();
    let ct2 = pk.encrypt_u64(654321, &mut rng).unwrap();

    group.bench_function("encrypt", |b| {
        b.iter(|| pk.encrypt_u64(42, &mut rand::thread_rng()).unwrap())
    });
    group.bench_function("decrypt", |b| b.iter(|| sk.decrypt(&ct).unwrap()));
    group.bench_function("add", |b| b.iter(|| pk.add(&ct, &ct2)));
    group.finish();
}

fn bench_xpir_bv(c: &mut Criterion) {
    let mut group = c.benchmark_group("xpir_bv");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let config = PretzelConfig::test();
    let params = config.rlwe_params();
    let mut rng = rand::thread_rng();
    let (sk, pk) = pretzel_rlwe::keygen(&params, None, &mut rng);
    let slots: Vec<u64> = (0..params.slots() as u64).collect();
    let ct = pk.encrypt_slots(&slots, &mut rng).unwrap();
    let ct2 = pk.encrypt_slots(&slots, &mut rng).unwrap();

    group.bench_function("encrypt", |b| {
        b.iter(|| pk.encrypt_slots(&slots, &mut rand::thread_rng()).unwrap())
    });
    group.bench_function("decrypt", |b| b.iter(|| sk.decrypt_slots(&ct)));
    group.bench_function("add", |b| b.iter(|| pk.add(&ct, &ct2)));
    group.bench_function("left_shift_and_add", |b| {
        b.iter(|| {
            let shifted = pk.rotate_left(&ct, 2);
            pk.add(&ct2, &shifted)
        })
    });
    group.bench_function("scalar_mul_accumulate", |b| {
        let mut acc = pk.zero_accumulator();
        b.iter(|| pk.mul_scalar_accumulate(&mut acc, &ct, 13))
    });
    group.finish();
}

fn bench_garbling(c: &mut Criterion) {
    let mut group = c.benchmark_group("yao");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let compare = pretzel_gc::spam_compare_circuit(32);
    let argmax = pretzel_gc::topic_argmax_circuit(10, 32, 12);
    group.bench_function("garble_32bit_compare", |b| {
        b.iter(|| pretzel_gc::garble(&compare, &mut rand::thread_rng()))
    });
    group.bench_function("garble_argmax_10", |b| {
        b.iter(|| pretzel_gc::garble(&argmax, &mut rand::thread_rng()))
    });
    group.finish();
}

fn bench_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = rand::thread_rng();
    let dh = DhGroup::insecure_test_group(96, &mut rng);
    let alice = Identity::generate("alice@example.com", &dh, &mut rng);
    let bob = Identity::generate("bob@example.com", &dh, &mut rng);
    let email = Email {
        from: "alice@example.com".into(),
        to: "bob@example.com".into(),
        subject: "bench".into(),
        body: synthetic_email_text(75 * 1024 / 8, 5),
    };
    let encrypted = alice.encrypt_email(&bob.public(), &email, &mut rng);
    group.bench_function("encrypt_75kb_email", |b| {
        b.iter(|| alice.encrypt_email(&bob.public(), &email, &mut rand::thread_rng()))
    });
    group.bench_function("decrypt_75kb_email", |b| {
        b.iter(|| bob.decrypt_email(&alice.public(), &encrypted).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_paillier,
    bench_xpir_bv,
    bench_garbling,
    bench_e2e
);
criterion_main!(benches);
