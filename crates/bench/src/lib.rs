//! Shared helpers for the experiment harnesses (`src/bin/fig*.rs`) and the
//! Criterion benches.
//!
//! Every harness regenerates one table or figure from the paper's §6. The
//! common knobs are:
//!
//! * `--scale small` (default) — shrinks the workload sizes (N, corpus sizes)
//!   by a documented factor so a full run finishes in seconds to minutes on a
//!   laptop, while preserving every protocol code path.
//! * `--scale paper` — the paper's native sizes (can take hours for the
//!   largest points; used to spot-check individual rows).
//! * `--json` — in addition to the human-readable table, emit the measured
//!   numbers as machine-readable `BENCH_<name>.json` in the working
//!   directory ([`maybe_write_bench_json`]), so runs can be tracked as a
//!   perf trajectory. `bench_phase_split` always emits its JSON (that file
//!   *is* its deliverable).
//!
//! EXPERIMENTS.md records the scale used for the committed numbers.

use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pretzel_classifiers::LinearModel;
use pretzel_core::Scale;

/// Parses `--scale small|paper` from the process arguments.
pub fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            match args.get(i + 1).map(|s| s.as_str()) {
                Some("paper") => return Scale::Paper,
                Some("small") | None => return Scale::Test,
                Some(other) => {
                    eprintln!("unknown scale {other:?}, using small");
                    return Scale::Test;
                }
            }
        }
        if args[i] == "--scale=paper" {
            return Scale::Paper;
        }
    }
    Scale::Test
}

/// True when `--json` was passed on the command line: the harness should
/// emit its `BENCH_*.json` alongside the printed table.
pub fn json_enabled() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Looks up a command-line flag's value, accepting both `--name value` and
/// `--name=value`. Shared by the bench bins so flag parsing can't diverge.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = args[i].strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// A JSON value for the bench reports — hand-rolled because the workspace's
/// vendored `serde` is an offline stub without `serde_json`. Covers exactly
/// what bench output needs: objects, arrays, numbers, strings, booleans.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// A floating-point number (non-finite values render as `null`).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, JsonValue); N]) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Int(x) => out.push_str(&format!("{x}")),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render(out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value as a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }
}

/// Writes `value` to `BENCH_<name>.json` in the working directory, returning
/// the path. All benches share this naming so the perf trajectory is a glob
/// over `BENCH_*.json`.
pub fn write_bench_json(name: &str, value: &JsonValue) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", value.to_json())?;
    Ok(path)
}

/// [`write_bench_json`] plus reporting: prints the emitted path (or the
/// failure) so a harness run documents where its numbers went. For bins
/// whose JSON is unconditional (`bench_phase_split`); most bins gate on the
/// `--json` flag via [`maybe_write_bench_json`].
pub fn write_bench_json_reported(name: &str, value: &JsonValue) {
    match write_bench_json(name, value) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_{name}.json: {e}"),
    }
}

/// [`write_bench_json_reported`] gated on the shared `--json` flag.
pub fn maybe_write_bench_json(name: &str, value: &JsonValue) {
    if json_enabled() {
        write_bench_json_reported(name, value);
    }
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure averaged over `iters` runs.
pub fn time_avg(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Builds a synthetic trained linear model with `num_features` features and
/// `num_classes` classes (random log-probability-like weights). Used by the
/// resource benchmarks, where accuracy is not the quantity under test but the
/// model *shape* (N, B) drives every cost.
pub fn synthetic_model(num_features: usize, num_classes: usize, seed: u64) -> LinearModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = (0..num_classes)
        .map(|_| {
            (0..num_features)
                .map(|_| -rng.gen_range(0.1..12.0f64))
                .collect()
        })
        .collect();
    let bias = (0..num_classes)
        .map(|_| -rng.gen_range(0.1..4.0f64))
        .collect();
    LinearModel { weights, bias }
}

/// Formats a byte count the way the paper's tables do (KB / MB / GB).
pub fn human_bytes(bytes: f64) -> String {
    if bytes >= 1e9 {
        format!("{:.1} GB", bytes / 1e9)
    } else if bytes >= 1e6 {
        format!("{:.1} MB", bytes / 1e6)
    } else if bytes >= 1e3 {
        format!("{:.1} KB", bytes / 1e3)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a duration in the unit the relevant figure uses.
pub fn human_us(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{:<width$}  ", cell, width = width));
    }
    println!("{}", line.trim_end());
}

/// Prints a table header followed by a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_model_shape() {
        let m = synthetic_model(100, 5, 1);
        assert_eq!(m.num_features(), 100);
        assert_eq!(m.num_classes(), 5);
        // Deterministic given the seed.
        assert_eq!(m.weights, synthetic_model(100, 5, 1).weights);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(183.5e6), "183.5 MB");
        assert_eq!(human_bytes(1.3e9), "1.3 GB");
        assert_eq!(human_us(Duration::from_micros(650)), "650.0 µs");
        assert_eq!(human_us(Duration::from_millis(358)), "358.00 ms");
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("a \"quoted\"\nline".into())),
            ("n", JsonValue::Int(42)),
            ("ratio", JsonValue::Num(2.5)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("ok", JsonValue::Bool(true)),
            (
                "rows",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
        ]);
        assert_eq!(
            v.to_json(),
            "{\"name\":\"a \\\"quoted\\\"\\nline\",\"n\":42,\"ratio\":2.5,\
             \"nan\":null,\"ok\":true,\"rows\":[1,2]}"
        );
    }

    #[test]
    fn write_bench_json_emits_the_named_file() {
        let path = write_bench_json(
            "unit_test_scratch",
            &JsonValue::obj([("x", JsonValue::Int(1))]),
        )
        .unwrap();
        // Read then clean up BEFORE asserting, so a failed assertion doesn't
        // strand the scratch file in the crate directory.
        let contents = std::fs::read_to_string(&path);
        let _ = std::fs::remove_file(&path);
        assert_eq!(path, PathBuf::from("BENCH_unit_test_scratch.json"));
        assert_eq!(contents.unwrap().trim(), "{\"x\":1}");
    }

    #[test]
    fn timing_helpers_run_the_closure() {
        let (value, d) = time(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(d.as_nanos() > 0);
        let avg = time_avg(3, || {
            std::hint::black_box(1 + 1);
        });
        let _ = avg;
    }
}
