//! Shared helpers for the experiment harnesses (`src/bin/fig*.rs`) and the
//! Criterion benches.
//!
//! Every harness regenerates one table or figure from the paper's §6. The
//! common knobs are:
//!
//! * `--scale small` (default) — shrinks the workload sizes (N, corpus sizes)
//!   by a documented factor so a full run finishes in seconds to minutes on a
//!   laptop, while preserving every protocol code path.
//! * `--scale paper` — the paper's native sizes (can take hours for the
//!   largest points; used to spot-check individual rows).
//! * `--json` — in addition to the human-readable table, emit the measured
//!   numbers as machine-readable `BENCH_<name>.json` in the working
//!   directory ([`maybe_write_bench_json`]), so runs can be tracked as a
//!   perf trajectory. `bench_phase_split` always emits its JSON (that file
//!   *is* its deliverable).
//!
//! EXPERIMENTS.md records the scale used for the committed numbers.

pub mod gate;

use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pretzel_classifiers::LinearModel;
use pretzel_core::Scale;

/// Parses `--scale small|paper` from the process arguments.
pub fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            match args.get(i + 1).map(|s| s.as_str()) {
                Some("paper") => return Scale::Paper,
                Some("small") | None => return Scale::Test,
                Some(other) => {
                    eprintln!("unknown scale {other:?}, using small");
                    return Scale::Test;
                }
            }
        }
        if args[i] == "--scale=paper" {
            return Scale::Paper;
        }
    }
    Scale::Test
}

/// True when `--json` was passed on the command line: the harness should
/// emit its `BENCH_*.json` alongside the printed table.
pub fn json_enabled() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Looks up a command-line flag's value, accepting both `--name value` and
/// `--name=value`. Shared by the bench bins so flag parsing can't diverge.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = args[i].strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// A JSON value for the bench reports — hand-rolled because the workspace's
/// vendored `serde` is an offline stub without `serde_json`. Covers exactly
/// what bench output needs: objects, arrays, numbers, strings, booleans.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// A floating-point number (non-finite values render as `null`).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, JsonValue); N]) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Int(x) => out.push_str(&format!("{x}")),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render(out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value as a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    /// Parses a JSON document — the inverse of [`JsonValue::to_json`],
    /// hand-rolled for the same reason the renderer is. `null` parses to
    /// `JsonValue::Num(f64::NAN)`, mirroring how the renderer emits
    /// non-finite numbers, so render → parse → render is a fixpoint.
    /// Integers without fraction/exponent that fit in `u64` become
    /// [`JsonValue::Int`].
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Num` as-is, `Int` widened. `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Integer view (`Int` only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at offset {}",
            char::from(want),
            *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Num(f64::NAN))
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|_| "invalid UTF-8 in string".to_string())?
        .char_indices();
    while let Some((offset, c)) = chars.next() {
        match c {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{0008}'),
                Some((_, 'f')) => out.push('\u{000c}'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape digit")?;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    if text.is_empty() {
        return Err(format!("expected a value at offset {start}"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(int) = text.parse::<u64>() {
            return Ok(JsonValue::Int(int));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

/// Writes `value` to `BENCH_<name>.json` in the working directory, returning
/// the path. All benches share this naming so the perf trajectory is a glob
/// over `BENCH_*.json`.
pub fn write_bench_json(name: &str, value: &JsonValue) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", value.to_json())?;
    Ok(path)
}

/// [`write_bench_json`] plus reporting: prints the emitted path (or the
/// failure) so a harness run documents where its numbers went. For bins
/// whose JSON is unconditional (`bench_phase_split`); most bins gate on the
/// `--json` flag via [`maybe_write_bench_json`].
pub fn write_bench_json_reported(name: &str, value: &JsonValue) {
    match write_bench_json(name, value) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_{name}.json: {e}"),
    }
}

/// [`write_bench_json_reported`] gated on the shared `--json` flag.
pub fn maybe_write_bench_json(name: &str, value: &JsonValue) {
    if json_enabled() {
        write_bench_json_reported(name, value);
    }
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure averaged over `iters` runs.
pub fn time_avg(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Builds a synthetic trained linear model with `num_features` features and
/// `num_classes` classes (random log-probability-like weights). Used by the
/// resource benchmarks, where accuracy is not the quantity under test but the
/// model *shape* (N, B) drives every cost.
pub fn synthetic_model(num_features: usize, num_classes: usize, seed: u64) -> LinearModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = (0..num_classes)
        .map(|_| {
            (0..num_features)
                .map(|_| -rng.gen_range(0.1..12.0f64))
                .collect()
        })
        .collect();
    let bias = (0..num_classes)
        .map(|_| -rng.gen_range(0.1..4.0f64))
        .collect();
    LinearModel { weights, bias }
}

/// Formats a byte count the way the paper's tables do (KB / MB / GB).
pub fn human_bytes(bytes: f64) -> String {
    if bytes >= 1e9 {
        format!("{:.1} GB", bytes / 1e9)
    } else if bytes >= 1e6 {
        format!("{:.1} MB", bytes / 1e6)
    } else if bytes >= 1e3 {
        format!("{:.1} KB", bytes / 1e3)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a duration in the unit the relevant figure uses.
pub fn human_us(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{:<width$}  ", cell, width = width));
    }
    println!("{}", line.trim_end());
}

/// Prints a table header followed by a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_model_shape() {
        let m = synthetic_model(100, 5, 1);
        assert_eq!(m.num_features(), 100);
        assert_eq!(m.num_classes(), 5);
        // Deterministic given the seed.
        assert_eq!(m.weights, synthetic_model(100, 5, 1).weights);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(183.5e6), "183.5 MB");
        assert_eq!(human_bytes(1.3e9), "1.3 GB");
        assert_eq!(human_us(Duration::from_micros(650)), "650.0 µs");
        assert_eq!(human_us(Duration::from_millis(358)), "358.00 ms");
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("a \"quoted\"\nline".into())),
            ("n", JsonValue::Int(42)),
            ("ratio", JsonValue::Num(2.5)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("ok", JsonValue::Bool(true)),
            (
                "rows",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
        ]);
        assert_eq!(
            v.to_json(),
            "{\"name\":\"a \\\"quoted\\\"\\nline\",\"n\":42,\"ratio\":2.5,\
             \"nan\":null,\"ok\":true,\"rows\":[1,2]}"
        );
    }

    #[test]
    fn json_parsing_inverts_rendering() {
        let v = JsonValue::obj([
            ("name", JsonValue::Str("a \"quoted\"\nline".into())),
            ("n", JsonValue::Int(42)),
            ("ratio", JsonValue::Num(2.5)),
            ("neg", JsonValue::Num(-3.25)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("ok", JsonValue::Bool(true)),
            ("empty_obj", JsonValue::Obj(vec![])),
            (
                "rows",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Bool(false)]),
            ),
        ]);
        let text = v.to_json();
        let parsed = JsonValue::parse(&text).unwrap();
        // render → parse → render is a fixpoint (NaN ↔ null included).
        assert_eq!(parsed.to_json(), text);
        assert_eq!(parsed.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("ratio").unwrap().as_f64(), Some(2.5));
        assert_eq!(parsed.get("neg").unwrap().as_f64(), Some(-3.25));
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("a \"quoted\"\nline")
        );
        assert_eq!(parsed.get("rows").unwrap().as_arr().unwrap().len(), 2);
        assert!(parsed.get("nan").unwrap().as_f64().unwrap().is_nan());

        // Whitespace tolerated; structural garbage is not.
        assert!(JsonValue::parse(" { \"a\" : [ 1 , 2 ] } ").is_ok());
        assert!(JsonValue::parse("{\"a\":1,}").is_err());
        assert!(JsonValue::parse("{\"a\":1} tail").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn write_bench_json_emits_the_named_file() {
        let path = write_bench_json(
            "unit_test_scratch",
            &JsonValue::obj([("x", JsonValue::Int(1))]),
        )
        .unwrap();
        // Read then clean up BEFORE asserting, so a failed assertion doesn't
        // strand the scratch file in the crate directory.
        let contents = std::fs::read_to_string(&path);
        let _ = std::fs::remove_file(&path);
        assert_eq!(path, PathBuf::from("BENCH_unit_test_scratch.json"));
        assert_eq!(contents.unwrap().trim(), "{\"x\":1}");
    }

    #[test]
    fn timing_helpers_run_the_closure() {
        let (value, d) = time(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(d.as_nanos() > 0);
        let avg = time_avg(3, || {
            std::hint::black_box(1 + 1);
        });
        let _ = avg;
    }
}
