//! Shared helpers for the experiment harnesses (`src/bin/fig*.rs`) and the
//! Criterion benches.
//!
//! Every harness regenerates one table or figure from the paper's §6. The
//! common knobs are:
//!
//! * `--scale small` (default) — shrinks the workload sizes (N, corpus sizes)
//!   by a documented factor so a full run finishes in seconds to minutes on a
//!   laptop, while preserving every protocol code path.
//! * `--scale paper` — the paper's native sizes (can take hours for the
//!   largest points; used to spot-check individual rows).
//!
//! EXPERIMENTS.md records the scale used for the committed numbers.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pretzel_classifiers::LinearModel;
use pretzel_core::Scale;

/// Parses `--scale small|paper` from the process arguments.
pub fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            match args.get(i + 1).map(|s| s.as_str()) {
                Some("paper") => return Scale::Paper,
                Some("small") | None => return Scale::Test,
                Some(other) => {
                    eprintln!("unknown scale {other:?}, using small");
                    return Scale::Test;
                }
            }
        }
        if args[i] == "--scale=paper" {
            return Scale::Paper;
        }
    }
    Scale::Test
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure averaged over `iters` runs.
pub fn time_avg(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Builds a synthetic trained linear model with `num_features` features and
/// `num_classes` classes (random log-probability-like weights). Used by the
/// resource benchmarks, where accuracy is not the quantity under test but the
/// model *shape* (N, B) drives every cost.
pub fn synthetic_model(num_features: usize, num_classes: usize, seed: u64) -> LinearModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = (0..num_classes)
        .map(|_| {
            (0..num_features)
                .map(|_| -rng.gen_range(0.1..12.0f64))
                .collect()
        })
        .collect();
    let bias = (0..num_classes)
        .map(|_| -rng.gen_range(0.1..4.0f64))
        .collect();
    LinearModel { weights, bias }
}

/// Formats a byte count the way the paper's tables do (KB / MB / GB).
pub fn human_bytes(bytes: f64) -> String {
    if bytes >= 1e9 {
        format!("{:.1} GB", bytes / 1e9)
    } else if bytes >= 1e6 {
        format!("{:.1} MB", bytes / 1e6)
    } else if bytes >= 1e3 {
        format!("{:.1} KB", bytes / 1e3)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a duration in the unit the relevant figure uses.
pub fn human_us(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{:<width$}  ", cell, width = width));
    }
    println!("{}", line.trim_end());
}

/// Prints a table header followed by a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_model_shape() {
        let m = synthetic_model(100, 5, 1);
        assert_eq!(m.num_features(), 100);
        assert_eq!(m.num_classes(), 5);
        // Deterministic given the seed.
        assert_eq!(m.weights, synthetic_model(100, 5, 1).weights);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(183.5e6), "183.5 MB");
        assert_eq!(human_bytes(1.3e9), "1.3 GB");
        assert_eq!(human_us(Duration::from_micros(650)), "650.0 µs");
        assert_eq!(human_us(Duration::from_millis(358)), "358.00 ms");
    }

    #[test]
    fn timing_helpers_run_the_closure() {
        let (value, d) = time(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(d.as_nanos() > 0);
        let avg = time_avg(3, || {
            std::hint::black_box(1 + 1);
        });
        let _ = avg;
    }
}
