//! The perf-regression gate over `BENCH_scenarios.json` records.
//!
//! The gate compares a *candidate* record (a fresh `bench_scenarios` run)
//! against a *baseline* (the committed record in the repo) and fails when a
//! scenario's **median throughput** dropped by more than an allowed
//! percentage. Two deliberate design points:
//!
//! * **Medians gate, tails inform.** p95/p99 are recorded for humans but
//!   never gate — with nearest-rank percentiles over small K, the tail *is*
//!   the noisiest sample, and gating on it flaps.
//! * **A noise floor from the records themselves.** Each record carries its
//!   min–max spread as a percentage of the median; the allowed drop for a
//!   scenario is `max(policy threshold, half the larger spread)`. A quiet
//!   scenario is held to the policy threshold; a noisy one is not failed
//!   for being noisy.
//!
//! Scenarios are matched by name **and** params: records produced at
//! different sizes (CI's tiny smoke runs vs a full committed baseline) are
//! skipped with a warning instead of producing nonsense ratios. A scenario
//! present in the baseline but absent from the candidate is a hard failure
//! — losing coverage is a regression too.
//!
//! Consumed by the `bench_gate` bin; policy and schema are documented in
//! `docs/BENCHMARKS.md`.

use crate::JsonValue;

/// Version stamped into (and required of) every scenarios record.
pub const SCHEMA_VERSION: u64 = 1;

/// The seven summary fields every statistics object must carry.
pub const SUMMARY_FIELDS: [&str; 7] = ["median", "p95", "p99", "min", "max", "mean", "spread_pct"];

/// Gate tuning.
#[derive(Clone, Copy, Debug)]
pub struct GatePolicy {
    /// Maximum tolerated drop of a scenario's median throughput, in
    /// percent, before the noise floor widens it.
    pub max_regression_pct: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            max_regression_pct: 15.0,
        }
    }
}

/// What the gate decided about one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateStatus {
    /// Within the allowed envelope (including improvements).
    Pass,
    /// Median throughput dropped more than allowed.
    Regression,
    /// Same name, different params (e.g. tiny CI run vs full baseline) —
    /// not comparable, not counted against the gate.
    SkippedParamsMismatch,
    /// In the baseline but not the candidate — coverage loss, fails.
    MissingFromCandidate,
    /// In the candidate but not the baseline — informational.
    NewInCandidate,
}

/// One scenario's comparison.
#[derive(Clone, Debug)]
pub struct GateRow {
    /// Scenario name.
    pub name: String,
    /// Baseline median throughput (emails/s); 0 when missing.
    pub baseline_median: f64,
    /// Candidate median throughput (emails/s); 0 when missing.
    pub candidate_median: f64,
    /// Relative change in percent; positive is faster.
    pub delta_pct: f64,
    /// The drop this scenario was allowed before failing.
    pub allowed_drop_pct: f64,
    /// Verdict.
    pub status: GateStatus,
}

/// The gate's full output.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// One row per scenario seen in either record.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// Scenarios that failed the gate (regressions + lost coverage).
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    GateStatus::Regression | GateStatus::MissingFromCandidate
                )
            })
            .count()
    }

    /// Scenarios skipped as not comparable.
    pub fn skipped(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.status == GateStatus::SkippedParamsMismatch)
            .count()
    }

    /// True when nothing failed.
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }
}

fn field_errors(obj: &JsonValue, path: &str, errors: &mut Vec<String>) -> bool {
    if !matches!(obj, JsonValue::Obj(_)) {
        errors.push(format!("{path}: expected an object"));
        return false;
    }
    true
}

fn require_summary(scenario: &JsonValue, name: &str, field: &str, errors: &mut Vec<String>) {
    let path = format!("scenarios[{name}].{field}");
    match scenario.get(field) {
        None => errors.push(format!("{path}: missing")),
        Some(summary) => {
            if !field_errors(summary, &path, errors) {
                return;
            }
            for stat in SUMMARY_FIELDS {
                match summary.get(stat).and_then(JsonValue::as_f64) {
                    Some(x) if x.is_finite() => {}
                    Some(_) => errors.push(format!("{path}.{stat}: not finite")),
                    None => errors.push(format!("{path}.{stat}: missing or non-numeric")),
                }
            }
        }
    }
}

/// Validates a scenarios record against the documented schema
/// (`docs/BENCHMARKS.md`). Returns every problem found, not just the first.
pub fn validate_schema(record: &JsonValue) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    if !field_errors(record, "<root>", &mut errors) {
        return Err(errors);
    }
    match record.get("bench").and_then(JsonValue::as_str) {
        Some("scenarios") => {}
        other => errors.push(format!("bench: expected \"scenarios\", got {other:?}")),
    }
    match record.get("schema_version").and_then(JsonValue::as_u64) {
        Some(SCHEMA_VERSION) => {}
        other => errors.push(format!(
            "schema_version: expected {SCHEMA_VERSION}, got {other:?}"
        )),
    }
    for key in ["repeat", "seed"] {
        if record.get(key).and_then(JsonValue::as_u64).is_none() {
            errors.push(format!("{key}: missing or non-integer"));
        }
    }
    if record
        .get("transport")
        .and_then(JsonValue::as_str)
        .is_none()
    {
        errors.push("transport: missing or non-string".into());
    }
    let scenarios = match record.get("scenarios").and_then(JsonValue::as_arr) {
        Some(arr) if !arr.is_empty() => arr,
        Some(_) => {
            errors.push("scenarios: empty".into());
            &[]
        }
        None => {
            errors.push("scenarios: missing or not an array".into());
            &[]
        }
    };
    for (i, scenario) in scenarios.iter().enumerate() {
        let name = scenario
            .get("name")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| {
                errors.push(format!("scenarios[{i}].name: missing or non-string"));
                format!("#{i}")
            });
        if !matches!(scenario.get("params"), Some(JsonValue::Obj(_))) {
            errors.push(format!(
                "scenarios[{name}].params: missing or not an object"
            ));
        }
        for key in ["emails", "completed", "failed"] {
            if scenario.get(key).and_then(JsonValue::as_u64).is_none() {
                errors.push(format!("scenarios[{name}].{key}: missing or non-integer"));
            }
        }
        require_summary(scenario, &name, "emails_per_sec", &mut errors);
        require_summary(scenario, &name, "wall_ms", &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a `BENCH_bignum.json` record (emitted by `bench_bignum`) and —
/// when `min_speedup > 0` — gates the fixed-limb engine's advantage: every
/// width row's `mulmod_speedup` and `pow_speedup` must be at least
/// `min_speedup`, so a regression that erases the fixed path's win fails CI
/// even though absolute timings vary across machines.
pub fn validate_bignum(record: &JsonValue, min_speedup: f64) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    if !field_errors(record, "<root>", &mut errors) {
        return Err(errors);
    }
    match record.get("bench").and_then(JsonValue::as_str) {
        Some("bignum") => {}
        other => errors.push(format!("bench: expected \"bignum\", got {other:?}")),
    }
    match record.get("schema_version").and_then(JsonValue::as_u64) {
        Some(SCHEMA_VERSION) => {}
        other => errors.push(format!(
            "schema_version: expected {SCHEMA_VERSION}, got {other:?}"
        )),
    }
    for key in ["paillier_bits", "iters"] {
        if record.get(key).and_then(JsonValue::as_u64).is_none() {
            errors.push(format!("{key}: missing or non-integer"));
        }
    }
    let widths = match record.get("widths").and_then(JsonValue::as_arr) {
        Some(arr) if !arr.is_empty() => arr,
        Some(_) => {
            errors.push("widths: empty".into());
            &[]
        }
        None => {
            errors.push("widths: missing or not an array".into());
            &[]
        }
    };
    for (i, row) in widths.iter().enumerate() {
        let label = row
            .get("label")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| {
                errors.push(format!("widths[{i}].label: missing or non-string"));
                format!("#{i}")
            });
        for key in ["bits", "limbs"] {
            if row.get(key).and_then(JsonValue::as_u64).is_none() {
                errors.push(format!("widths[{label}].{key}: missing or non-integer"));
            }
        }
        if row.get("backend").and_then(JsonValue::as_str).is_none() {
            errors.push(format!("widths[{label}].backend: missing or non-string"));
        }
        for key in [
            "mulmod_dyn_ns",
            "mulmod_fixed_ns",
            "mulmod_speedup",
            "pow_dyn_us",
            "pow_fixed_us",
            "pow_speedup",
        ] {
            match row.get(key).and_then(JsonValue::as_f64) {
                Some(x) if x.is_finite() && x > 0.0 => {}
                Some(_) => errors.push(format!("widths[{label}].{key}: not finite/positive")),
                None => errors.push(format!("widths[{label}].{key}: missing or non-numeric")),
            }
        }
        if min_speedup > 0.0 {
            for key in ["mulmod_speedup", "pow_speedup"] {
                if let Some(s) = row.get(key).and_then(JsonValue::as_f64) {
                    if s.is_finite() && s < min_speedup {
                        errors.push(format!(
                            "widths[{label}].{key}: {s:.2}x is below the required \
                             {min_speedup:.2}x — fixed-limb advantage regressed"
                        ));
                    }
                }
            }
        }
    }
    if let Some(decrypt) = record.get("decrypt") {
        for key in ["dyn_us", "fixed_us", "speedup"] {
            match decrypt.get(key).and_then(JsonValue::as_f64) {
                Some(x) if x.is_finite() && x > 0.0 => {}
                _ => errors.push(format!("decrypt.{key}: missing or non-positive")),
            }
        }
    } else {
        errors.push("decrypt: missing".into());
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a `BENCH_phase_split.json` record: identifying fields, the
/// Paillier micro block, and the per-fleet-size `online` / `search_online`
/// rows including the precompute-bank columns. With `min_bank_speedup > 0`,
/// the `online` table must additionally contain a row at exactly
/// `at_sessions` sessions whose `bank_speedup` (cold over bank-served
/// latency) is at least the floor — the CI defence for the fleet bank's
/// high-concurrency win, i.e. the warm-mode dip the bank was built to
/// remove. The `search_online` table is schema-checked but carries no
/// speedup floor: a banked zero encryption saves only ~15% of a query at
/// bench parameters, below the run-to-run spread of an oversubscribed
/// fleet's wall-clock, so a floor there would gate on scheduler noise.
pub fn validate_phase_split(
    record: &JsonValue,
    min_bank_speedup: f64,
    at_sessions: u64,
) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    if !field_errors(record, "<root>", &mut errors) {
        return Err(errors);
    }
    match record.get("bench").and_then(JsonValue::as_str) {
        Some("phase_split") => {}
        other => errors.push(format!("bench: expected \"phase_split\", got {other:?}")),
    }
    for key in ["paillier_bits", "emails_per_session"] {
        if record.get(key).and_then(JsonValue::as_u64).is_none() {
            errors.push(format!("{key}: missing or non-integer"));
        }
    }
    if let Some(paillier) = record.get("paillier") {
        for key in [
            "decrypt_inline_us",
            "decrypt_crt_us",
            "decrypt_speedup",
            "encrypt_inline_us",
            "encrypt_pooled_us",
            "encrypt_speedup",
        ] {
            match paillier.get(key).and_then(JsonValue::as_f64) {
                Some(x) if x.is_finite() && x > 0.0 => {}
                _ => errors.push(format!("paillier.{key}: missing or non-positive")),
            }
        }
    } else {
        errors.push("paillier: missing".into());
    }
    for (table, unit) in [("online", "email"), ("search_online", "query")] {
        let rows = match record.get(table).and_then(JsonValue::as_arr) {
            Some(arr) if !arr.is_empty() => arr,
            Some(_) => {
                errors.push(format!("{table}: empty"));
                continue;
            }
            None => {
                errors.push(format!("{table}: missing or not an array"));
                continue;
            }
        };
        for (i, row) in rows.iter().enumerate() {
            if row.get("sessions").and_then(JsonValue::as_u64).is_none() {
                errors.push(format!("{table}[{i}].sessions: missing or non-integer"));
            }
            for key in [
                format!("cold_us_per_{unit}"),
                format!("warm_us_per_{unit}"),
                format!("bank_us_per_{unit}"),
                "speedup".to_string(),
                "bank_speedup".to_string(),
            ] {
                match row.get(&key).and_then(JsonValue::as_f64) {
                    Some(x) if x.is_finite() && x > 0.0 => {}
                    _ => errors.push(format!("{table}[{i}].{key}: missing or non-positive")),
                }
            }
        }
        if min_bank_speedup > 0.0 && table == "online" {
            let gated = rows
                .iter()
                .find(|row| row.get("sessions").and_then(JsonValue::as_u64) == Some(at_sessions));
            match gated {
                None => errors.push(format!(
                    "{table}: no row at {at_sessions} sessions — regenerate the record with \
                     --sessions including {at_sessions}"
                )),
                Some(row) => {
                    if let Some(s) = row.get("bank_speedup").and_then(JsonValue::as_f64) {
                        if s.is_finite() && s < min_bank_speedup {
                            errors.push(format!(
                                "{table}[sessions={at_sessions}].bank_speedup: {s:.2}x is below \
                                 the required {min_bank_speedup:.2}x — the precompute bank's \
                                 high-concurrency advantage regressed"
                            ));
                        }
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn scenario_entries(record: &JsonValue) -> Vec<(&str, &JsonValue)> {
    record
        .get("scenarios")
        .and_then(JsonValue::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|s| s.get("name").and_then(JsonValue::as_str).map(|n| (n, s)))
                .collect()
        })
        .unwrap_or_default()
}

fn stat(scenario: &JsonValue, summary: &str, field: &str) -> f64 {
    scenario
        .get(summary)
        .and_then(|s| s.get(field))
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0)
}

/// Compares two **schema-valid** records (run [`validate_schema`] first)
/// under `policy`. See the module docs for the decision rules.
pub fn compare(baseline: &JsonValue, candidate: &JsonValue, policy: &GatePolicy) -> GateReport {
    let baseline_scenarios = scenario_entries(baseline);
    let candidate_scenarios = scenario_entries(candidate);
    let mut rows = Vec::new();

    for (name, base) in &baseline_scenarios {
        let row = match candidate_scenarios.iter().find(|(n, _)| n == name) {
            None => GateRow {
                name: name.to_string(),
                baseline_median: stat(base, "emails_per_sec", "median"),
                candidate_median: 0.0,
                delta_pct: -100.0,
                allowed_drop_pct: policy.max_regression_pct,
                status: GateStatus::MissingFromCandidate,
            },
            Some((_, cand)) => {
                let base_params = base.get("params").map(JsonValue::to_json);
                let cand_params = cand.get("params").map(JsonValue::to_json);
                let base_median = stat(base, "emails_per_sec", "median");
                let cand_median = stat(cand, "emails_per_sec", "median");
                let delta_pct = if base_median > 0.0 {
                    100.0 * (cand_median - base_median) / base_median
                } else {
                    0.0
                };
                let noise_floor = 0.5
                    * stat(base, "emails_per_sec", "spread_pct").max(stat(
                        cand,
                        "emails_per_sec",
                        "spread_pct",
                    ));
                let allowed_drop_pct = policy.max_regression_pct.max(noise_floor);
                let status = if base_params != cand_params {
                    GateStatus::SkippedParamsMismatch
                } else if -delta_pct > allowed_drop_pct {
                    GateStatus::Regression
                } else {
                    GateStatus::Pass
                };
                GateRow {
                    name: name.to_string(),
                    baseline_median: base_median,
                    candidate_median: cand_median,
                    delta_pct,
                    allowed_drop_pct,
                    status,
                }
            }
        };
        rows.push(row);
    }
    for (name, cand) in &candidate_scenarios {
        if !baseline_scenarios.iter().any(|(n, _)| n == name) {
            rows.push(GateRow {
                name: name.to_string(),
                baseline_median: 0.0,
                candidate_median: stat(cand, "emails_per_sec", "median"),
                delta_pct: 0.0,
                allowed_drop_pct: policy.max_regression_pct,
                status: GateStatus::NewInCandidate,
            });
        }
    }
    GateReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a schema-valid record with one scenario at the given median
    /// and spread.
    fn record(median: f64, spread_pct: f64, sessions: u64) -> JsonValue {
        let summary = |m: f64| {
            JsonValue::obj([
                ("median", JsonValue::Num(m)),
                ("p95", JsonValue::Num(m * 1.1)),
                ("p99", JsonValue::Num(m * 1.2)),
                ("min", JsonValue::Num(m * 0.9)),
                ("max", JsonValue::Num(m * 1.2)),
                ("mean", JsonValue::Num(m)),
                ("spread_pct", JsonValue::Num(spread_pct)),
            ])
        };
        JsonValue::obj([
            ("bench", JsonValue::Str("scenarios".into())),
            ("schema_version", JsonValue::Int(SCHEMA_VERSION)),
            ("transport", JsonValue::Str("memory".into())),
            ("repeat", JsonValue::Int(5)),
            ("seed", JsonValue::Int(7)),
            (
                "scenarios",
                JsonValue::Arr(vec![JsonValue::obj([
                    ("name", JsonValue::Str("steady".into())),
                    (
                        "params",
                        JsonValue::obj([("sessions", JsonValue::Int(sessions))]),
                    ),
                    ("emails", JsonValue::Int(48)),
                    ("completed", JsonValue::Int(8)),
                    ("failed", JsonValue::Int(0)),
                    ("emails_per_sec", summary(median)),
                    ("wall_ms", summary(10.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_records_pass() {
        let rec = record(1000.0, 5.0, 8);
        let report = compare(&rec, &rec, &GatePolicy::default());
        assert!(report.passed());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].status, GateStatus::Pass);
        assert_eq!(report.rows[0].delta_pct, 0.0);
    }

    #[test]
    fn injected_median_regression_fails_the_gate() {
        // 30% median drop against a quiet baseline: well past the 15%
        // policy threshold — the gate must fail.
        let baseline = record(1000.0, 4.0, 8);
        let candidate = record(700.0, 4.0, 8);
        let report = compare(&baseline, &candidate, &GatePolicy::default());
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
        assert_eq!(report.rows[0].status, GateStatus::Regression);
        assert!((report.rows[0].delta_pct - -30.0).abs() < 1e-9);
    }

    #[test]
    fn improvements_and_small_drops_pass() {
        let baseline = record(1000.0, 4.0, 8);
        assert!(compare(&baseline, &record(1400.0, 4.0, 8), &GatePolicy::default()).passed());
        assert!(compare(&baseline, &record(900.0, 4.0, 8), &GatePolicy::default()).passed());
    }

    #[test]
    fn noisy_records_widen_the_allowance() {
        // A 20% drop fails at the default 15% threshold on a quiet record…
        let baseline = record(1000.0, 4.0, 8);
        let candidate = record(800.0, 4.0, 8);
        assert!(!compare(&baseline, &candidate, &GatePolicy::default()).passed());
        // …but passes when the records themselves swing 50% run-to-run
        // (noise floor = 25% > threshold).
        let noisy_base = record(1000.0, 50.0, 8);
        let noisy_cand = record(800.0, 50.0, 8);
        let report = compare(&noisy_base, &noisy_cand, &GatePolicy::default());
        assert!(report.passed());
        assert_eq!(report.rows[0].allowed_drop_pct, 25.0);
    }

    #[test]
    fn mismatched_params_are_skipped_not_failed() {
        // Tiny CI smoke record vs full committed baseline: different
        // sessions param ⇒ not comparable.
        let baseline = record(1000.0, 4.0, 8);
        let tiny = record(10.0, 4.0, 5);
        let report = compare(&baseline, &tiny, &GatePolicy::default());
        assert!(report.passed());
        assert_eq!(report.skipped(), 1);
        assert_eq!(report.rows[0].status, GateStatus::SkippedParamsMismatch);
    }

    #[test]
    fn lost_scenario_coverage_fails() {
        let baseline = record(1000.0, 4.0, 8);
        let mut empty = record(1000.0, 4.0, 8);
        if let JsonValue::Obj(pairs) = &mut empty {
            for (k, v) in pairs.iter_mut() {
                if k == "scenarios" {
                    *v = JsonValue::Arr(vec![]);
                }
            }
        }
        let report = compare(&baseline, &empty, &GatePolicy::default());
        assert!(!report.passed());
        assert_eq!(report.rows[0].status, GateStatus::MissingFromCandidate);
    }

    /// Builds a schema-valid bignum record with the given speedups.
    fn bignum_record(mulmod_speedup: f64, pow_speedup: f64) -> JsonValue {
        JsonValue::obj([
            ("bench", JsonValue::Str("bignum".into())),
            ("schema_version", JsonValue::Int(SCHEMA_VERSION)),
            ("paillier_bits", JsonValue::Int(512)),
            ("iters", JsonValue::Int(200)),
            (
                "widths",
                JsonValue::Arr(vec![JsonValue::obj([
                    ("label", JsonValue::Str("n_squared".into())),
                    ("bits", JsonValue::Int(1024)),
                    ("limbs", JsonValue::Int(16)),
                    ("backend", JsonValue::Str("fixed:16".into())),
                    ("mulmod_dyn_ns", JsonValue::Num(900.0)),
                    ("mulmod_fixed_ns", JsonValue::Num(900.0 / mulmod_speedup)),
                    ("mulmod_speedup", JsonValue::Num(mulmod_speedup)),
                    ("pow_dyn_us", JsonValue::Num(800.0)),
                    ("pow_fixed_us", JsonValue::Num(800.0 / pow_speedup)),
                    ("pow_speedup", JsonValue::Num(pow_speedup)),
                ])]),
            ),
            (
                "decrypt",
                JsonValue::obj([
                    ("dyn_us", JsonValue::Num(150.0)),
                    ("fixed_us", JsonValue::Num(60.0)),
                    ("speedup", JsonValue::Num(2.5)),
                ]),
            ),
        ])
    }

    #[test]
    fn bignum_validation_accepts_emitted_shape() {
        let rec = bignum_record(3.0, 2.8);
        assert!(validate_bignum(&rec, 0.0).is_ok());
        let reparsed = JsonValue::parse(&rec.to_json()).unwrap();
        assert!(validate_bignum(&reparsed, 0.0).is_ok());
    }

    #[test]
    fn bignum_validation_names_missing_fields() {
        let mut bad = bignum_record(3.0, 2.8);
        if let JsonValue::Obj(pairs) = &mut bad {
            pairs.retain(|(k, _)| k != "decrypt");
        }
        let errors = validate_bignum(&bad, 0.0).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("decrypt")));
        // A scenarios record is not a bignum record.
        let errors = validate_bignum(&record(1000.0, 4.0, 8), 0.0).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("bench")));
    }

    #[test]
    fn bignum_min_speedup_gates_the_fixed_advantage() {
        // Comfortably above the bar: passes.
        assert!(validate_bignum(&bignum_record(3.0, 2.8), 2.0).is_ok());
        // mulmod speedup eroded below the bar: fails and says why.
        let errors = validate_bignum(&bignum_record(1.4, 2.8), 2.0).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("mulmod_speedup")));
        // pow speedup eroded: also fails.
        let errors = validate_bignum(&bignum_record(3.0, 1.1), 2.0).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("pow_speedup")));
        // With the gate disabled (0), the same record is schema-valid.
        assert!(validate_bignum(&bignum_record(1.4, 1.1), 0.0).is_ok());
    }

    #[test]
    fn schema_validation_accepts_the_emitted_shape_and_names_problems() {
        let good = record(1000.0, 4.0, 8);
        assert!(validate_schema(&good).is_ok());
        // Round-trips through the renderer/parser unchanged.
        let reparsed = JsonValue::parse(&good.to_json()).unwrap();
        assert!(validate_schema(&reparsed).is_ok());

        let mut bad = record(1000.0, 4.0, 8);
        if let JsonValue::Obj(pairs) = &mut bad {
            pairs.retain(|(k, _)| k != "schema_version");
        }
        let errors = validate_schema(&bad).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
    }
}
