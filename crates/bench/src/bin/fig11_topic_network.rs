//! Figure 11: network transfers per email for topic extraction, varying B and
//! B′, for Baseline and Pretzel. Measured by wrapping the client's channel in
//! a byte-counting meter and running the real protocol.

use pretzel_bench::{human_bytes, parse_scale, print_header, print_row, synthetic_model};
use pretzel_classifiers::SparseVector;
use pretzel_core::spam::AheVariant;
use pretzel_core::topic::{CandidateMode, TopicClient, TopicProvider};
use pretzel_core::{PretzelConfig, Scale};
use pretzel_datasets::synthetic_features;
use pretzel_transport::{memory_pair, Meter, MeteredChannel};

/// Runs the protocol for `emails` emails and returns the average per-email
/// network traffic in bytes (both directions, excluding the setup phase).
fn per_email_network(
    variant: AheVariant,
    mode: CandidateMode,
    config: &PretzelConfig,
    model_features: usize,
    categories: usize,
    email_features: usize,
    emails: usize,
) -> f64 {
    let model = synthetic_model(model_features, categories, 21);
    let candidate_model = synthetic_model(model_features, categories, 22);
    let features: Vec<SparseVector> = (0..emails)
        .map(|i| synthetic_features(model_features, email_features, 15, 500 + i as u64))
        .collect();
    let config_provider = config.clone();
    let config_client = config.clone();
    let features_client = features.clone();

    let (provider_chan, client_chan) = memory_pair();
    let meter = Meter::new();
    let mut metered_client = MeteredChannel::with_meter(client_chan, meter.clone());

    let handle = std::thread::spawn(move || {
        let mut provider_chan = provider_chan;
        let mut rng = rand::thread_rng();
        let mut provider = TopicProvider::setup(
            &mut provider_chan,
            &model,
            &config_provider,
            variant,
            mode,
            &mut rng,
        )
        .unwrap();
        for _ in 0..emails {
            provider.process_email(&mut provider_chan).unwrap();
        }
    });

    let mut rng = rand::thread_rng();
    let mut client = TopicClient::setup(
        &mut metered_client,
        &config_client,
        variant,
        mode,
        Some(candidate_model),
        &mut rng,
    )
    .unwrap();
    meter.reset(); // exclude the setup phase (model shipping)
    for f in &features_client {
        client.extract(&mut metered_client, f, &mut rng).unwrap();
    }
    handle.join().unwrap();
    meter.total_bytes() as f64 / emails as f64
}

fn main() {
    let scale = parse_scale();
    // The closure inside the provider thread takes the config by value.
    let config = PretzelConfig::for_scale(scale);
    let (model_features, b_values, emails) = match scale {
        Scale::Test => (1_000usize, vec![16usize, 64, 128], 2usize),
        Scale::Paper => (100_000, vec![128, 512, 2048], 3),
    };
    let email_features = 692.min(model_features);
    let (bp_small, bp_large) = match scale {
        Scale::Test => (5usize, 8usize),
        Scale::Paper => (10, 20),
    };

    println!("Figure 11: topic extraction, network transfers per email (scale {scale:?})\n");
    let mut widths = vec![24usize];
    widths.extend(std::iter::repeat_n(14, b_values.len()));
    let mut header = vec!["system".to_string()];
    for &b in &b_values {
        header.push(format!("B={b}"));
    }
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    let configs: Vec<(String, AheVariant, CandidateMode)> = vec![
        ("Baseline".into(), AheVariant::Baseline, CandidateMode::Full),
        (
            "Pretzel (B'=B)".into(),
            AheVariant::Pretzel,
            CandidateMode::Full,
        ),
        (
            format!("Pretzel (B'={bp_large})"),
            AheVariant::Pretzel,
            CandidateMode::Decomposed(bp_large),
        ),
        (
            format!("Pretzel (B'={bp_small})"),
            AheVariant::Pretzel,
            CandidateMode::Decomposed(bp_small),
        ),
    ];
    for (name, variant, mode) in configs {
        let mut row = vec![name];
        for &b in &b_values {
            let bytes = per_email_network(
                variant,
                mode,
                &config,
                model_features,
                b,
                email_features,
                emails,
            );
            row.push(human_bytes(bytes));
        }
        print_row(&row, &widths);
    }
    println!("\nPaper shape: Baseline and Pretzel (B'=B) grow with B (0.5 MB -> 8 MB);");
    println!("decomposed Pretzel is flat in B (402 KB at B'=20, 201 KB at B'=10).");
}
