//! Figure 6: microbenchmarks of the common operations — GPG-equivalent e2e
//! encryption/decryption, Paillier and XPIR-BV operations, Yao comparison and
//! argmax, and the NoPriv per-feature operations.
//!
//! Absolute numbers depend on this machine and on the from-scratch
//! implementations; the quantity the downstream figures rely on is the
//! *relative* shape (Paillier Dec ≫ XPIR-BV Dec, Yao per-input cost in the
//! tens-to-hundreds of microseconds, NoPriv lookups in the sub-microsecond
//! range), which EXPERIMENTS.md compares against the paper's values.

use std::collections::HashMap;
use std::hint::black_box;

use pretzel_bench::{human_us, parse_scale, print_header, print_row, time_avg};
use pretzel_core::{PretzelConfig, Scale};
use pretzel_datasets::synthetic_email_text;
use pretzel_e2e::{DhGroup, Email, Identity};
use pretzel_gc::{
    spam_compare_circuit, topic_argmax_circuit, OutputMode, YaoEvaluator, YaoGarbler,
};
use pretzel_transport::{memory_pair, MeteredChannel};

fn main() {
    let scale = parse_scale();
    let config = PretzelConfig::for_scale(scale);
    let iters = match scale {
        Scale::Test => 20,
        Scale::Paper => 200,
    };
    let mut rng = rand::thread_rng();
    println!(
        "Figure 6: microbenchmarks ({} iterations per op, scale {:?})\n",
        iters, scale
    );
    let widths = [26, 14, 16];
    print_header(&["operation", "CPU time", "network"], &widths);

    // --- e2e module (GPG stand-in), 75 KB email ---
    let group = match scale {
        Scale::Paper => DhGroup::rfc3526_1536(),
        Scale::Test => DhGroup::insecure_test_group(96, &mut rng),
    };
    let alice = Identity::generate("alice@example.com", &group, &mut rng);
    let bob = Identity::generate("bob@example.com", &group, &mut rng);
    let email = Email {
        from: "alice@example.com".into(),
        to: "bob@example.com".into(),
        subject: "microbenchmark".into(),
        body: synthetic_email_text(75 * 1024 / 8, 1),
    };
    let enc_time = time_avg(iters, || {
        black_box(alice.encrypt_email(&bob.public(), &email, &mut rand::thread_rng()));
    });
    let encrypted = alice.encrypt_email(&bob.public(), &email, &mut rng);
    let dec_time = time_avg(iters, || {
        black_box(bob.decrypt_email(&alice.public(), &encrypted).unwrap());
    });
    print_row(
        &[
            "e2e (GPG-equiv) encryption".into(),
            human_us(enc_time),
            "-".into(),
        ],
        &widths,
    );
    print_row(
        &[
            "e2e (GPG-equiv) decryption".into(),
            human_us(dec_time),
            "-".into(),
        ],
        &widths,
    );

    // --- Paillier ---
    let paillier_sk = pretzel_paillier::keygen(config.paillier_bits, &mut rng);
    let paillier_pk = paillier_sk.public();
    let p_enc = time_avg(iters, || {
        black_box(
            paillier_pk
                .encrypt_u64(123456, &mut rand::thread_rng())
                .unwrap(),
        );
    });
    let ct = paillier_pk.encrypt_u64(123456, &mut rng).unwrap();
    let ct2 = paillier_pk.encrypt_u64(654321, &mut rng).unwrap();
    let p_dec = time_avg(iters, || {
        black_box(paillier_sk.decrypt(&ct).unwrap());
    });
    let p_add = time_avg(iters * 10, || {
        black_box(paillier_pk.add(&ct, &ct2));
    });
    print_row(
        &["Paillier encryption".into(), human_us(p_enc), "-".into()],
        &widths,
    );
    print_row(
        &["Paillier decryption".into(), human_us(p_dec), "-".into()],
        &widths,
    );
    print_row(
        &["Paillier addition".into(), human_us(p_add), "-".into()],
        &widths,
    );

    // --- XPIR-BV ---
    let params = config.rlwe_params();
    let (rlwe_sk, rlwe_pk) = pretzel_rlwe::keygen(&params, None, &mut rng);
    let slots: Vec<u64> = (0..params.slots() as u64).map(|i| i % params.t).collect();
    let x_enc = time_avg(iters, || {
        black_box(
            rlwe_pk
                .encrypt_slots(&slots, &mut rand::thread_rng())
                .unwrap(),
        );
    });
    let xct = rlwe_pk.encrypt_slots(&slots, &mut rng).unwrap();
    let xct2 = rlwe_pk.encrypt_slots(&slots, &mut rng).unwrap();
    let x_dec = time_avg(iters, || {
        black_box(rlwe_sk.decrypt_slots(&xct));
    });
    let x_add = time_avg(iters * 10, || {
        black_box(rlwe_pk.add(&xct, &xct2));
    });
    let x_shift = time_avg(iters * 10, || {
        let shifted = rlwe_pk.rotate_left(&xct, 2);
        black_box(rlwe_pk.add(&xct2, &shifted));
    });
    print_row(
        &["XPIR-BV encryption".into(), human_us(x_enc), "-".into()],
        &widths,
    );
    print_row(
        &["XPIR-BV decryption".into(), human_us(x_dec), "-".into()],
        &widths,
    );
    print_row(
        &["XPIR-BV addition".into(), human_us(x_add), "-".into()],
        &widths,
    );
    print_row(
        &[
            "XPIR-BV left shift and add".into(),
            human_us(x_shift),
            "-".into(),
        ],
        &widths,
    );

    // --- Yao: integer comparison and per-input argmax cost ---
    let (yao_compare, compare_bytes) = yao_cost(&config, YaoKind::Compare);
    let (yao_argmax, argmax_bytes) = yao_cost(&config, YaoKind::ArgmaxPerInput);
    print_row(
        &[
            "Yao: 32-bit comparison".into(),
            human_us(yao_compare),
            format!("{compare_bytes} B"),
        ],
        &widths,
    );
    print_row(
        &[
            "Yao: argmax (per input)".into(),
            human_us(yao_argmax),
            format!("{argmax_bytes} B"),
        ],
        &widths,
    );

    // --- NoPriv operations ---
    let mut map: HashMap<usize, f64> = (0..100_000).map(|i| (i, i as f64 * 0.5)).collect();
    map.shrink_to_fit();
    let lookup = time_avg(200_000, || {
        let k = black_box(777usize);
        black_box(map.get(&k));
    });
    let mut acc = 0.0f64;
    let fadd = time_avg(1_000_000, || {
        acc += black_box(1.25);
    });
    black_box(acc);
    print_row(
        &["NoPriv map lookup".into(), human_us(lookup), "-".into()],
        &widths,
    );
    print_row(
        &["NoPriv float addition".into(), human_us(fadd), "-".into()],
        &widths,
    );

    println!("\nPaper reference values (Amazon EC2 m3.2xlarge): GPG 1.7ms/1.3ms; Paillier 2.5ms/0.7ms/7µs;");
    println!("XPIR-BV 103µs/31µs/3µs/70µs; Yao 71µs+2501B (compare), 70µs+3959B per argmax input;");
    println!("NoPriv 0.17µs lookup, 0.001µs float add.");
}

enum YaoKind {
    Compare,
    ArgmaxPerInput,
}

/// Measures the per-email Yao cost over an in-memory channel, excluding the
/// one-time base-OT setup (the paper amortizes it into the setup phase).
fn yao_cost(config: &PretzelConfig, kind: YaoKind) -> (std::time::Duration, u64) {
    let group = config.ot_group(&[7u8; 32]);
    let group_b = group.clone();
    let width = 32;
    let (circuit, garbler_vals, evaluator_vals, divisor) = match kind {
        YaoKind::Compare => (spam_compare_circuit(width), 2usize, 2usize, 1u64),
        YaoKind::ArgmaxPerInput => {
            let candidates = 10;
            (
                topic_argmax_circuit(candidates, width, 12),
                2 * candidates,
                candidates,
                candidates as u64,
            )
        }
    };
    let circuit_b = circuit.clone();
    let reps = 5u32;

    let (a, mut b) = memory_pair();
    let mut metered = MeteredChannel::new(a);
    let meter = metered.meter();

    let garbler_bits: Vec<bool> = (0..garbler_vals * width).map(|i| i % 3 == 0).collect();
    let evaluator_bits: Vec<bool> = (0..evaluator_vals * width).map(|i| i % 5 == 0).collect();

    let handle = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut evaluator = YaoEvaluator::setup(&mut b, &group_b, &mut rng).unwrap();
        for _ in 0..reps {
            evaluator
                .run(
                    &mut b,
                    &circuit_b,
                    &evaluator_bits,
                    OutputMode::EvaluatorOnly,
                )
                .unwrap();
        }
    });
    let mut rng = rand::thread_rng();
    let mut garbler = YaoGarbler::setup(&mut metered, &group, &mut rng).unwrap();
    meter.reset();
    let start = std::time::Instant::now();
    for _ in 0..reps {
        garbler
            .run(
                &mut metered,
                &circuit,
                &garbler_bits,
                OutputMode::EvaluatorOnly,
                &mut rng,
            )
            .unwrap();
    }
    let elapsed = start.elapsed() / reps;
    handle.join().unwrap();
    let bytes = meter.total_bytes() / reps as u64 / divisor;
    (elapsed / divisor as u32, bytes)
}
