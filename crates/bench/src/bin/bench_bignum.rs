//! A/B microbench: the fixed-limb Montgomery engine vs the dynamic
//! `Vec`-backed reference, at the widths the Paillier hot path actually
//! runs — the CRT square `p²` and the public modulus square `n²` — plus an
//! end-to-end decrypt and randomizer-production comparison on real keys.
//!
//! Both engines compute identical results (pinned by the equivalence suite
//! in `pretzel_bignum/tests/fixed_vs_dynamic.rs`); this bin measures what
//! the fixed path buys. Always emits `BENCH_bignum.json`; validated and
//! gated in CI by `bench_gate --validate-bignum [--min-speedup X]`.
//!
//! ```sh
//! cargo run --release -p pretzel_bench --bin bench_bignum
//! cargo run --release -p pretzel_bench --bin bench_bignum -- \
//!     --paillier-bits 128 --iters 20 --out bignum_smoke
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use pretzel_bench::gate::SCHEMA_VERSION;
use pretzel_bench::{
    arg_value, human_us, print_header, print_row, write_bench_json_reported, JsonValue,
};
use pretzel_bignum::{gen_prime, AutoMontgomery, BigUint};
use pretzel_paillier::keygen;

fn main() {
    let paillier_bits: usize = arg_value("--paillier-bits")
        .map(|v| v.parse().expect("--paillier-bits takes a number"))
        .unwrap_or(512);
    let iters: usize = arg_value("--iters")
        .map(|v| v.parse().expect("--iters takes a number"))
        .unwrap_or(200);
    let out = arg_value("--out").unwrap_or_else(|| "bignum".into());

    println!("Fixed-limb vs dynamic Montgomery — {paillier_bits}-bit Paillier\n");

    let mut rng = StdRng::seed_from_u64(0xB16_0001);
    let sk = keygen(paillier_bits, &mut rng);
    let pk = sk.public();

    // The two modulus widths the Paillier hot path exercises: the CRT
    // square p² (half-size exponentiations in decrypt) and n² (encrypt,
    // randomizer production, homomorphic ops).
    let p = gen_prime(paillier_bits / 2, &mut rng);
    let p_squared = p.clone() * p.clone();
    let n_squared = pk.n().clone() * pk.n().clone();
    let targets = [
        ("p_squared", p_squared, p.clone() - BigUint::one()),
        ("n_squared", n_squared, pk.n().clone()),
    ];

    let widths = [12, 6, 6, 11, 13, 13, 9, 12, 12, 9];
    print_header(
        &[
            "modulus",
            "bits",
            "limbs",
            "backend",
            "mul dyn",
            "mul fixed",
            "mul x",
            "pow dyn",
            "pow fixed",
            "pow x",
        ],
        &widths,
    );

    let mut width_rows = Vec::new();
    for (label, modulus, exp) in &targets {
        let auto = AutoMontgomery::new(modulus);
        let dynamic = auto.to_dynamic();
        let a = BigUint::random_below(&mut rng, modulus);
        let b = BigUint::random_below(&mut rng, modulus);

        // mulmod is sub-microsecond: oversample relative to pow.
        let mul_iters = iters * 50;
        let (mul_dyn, mul_fixed) = time_pair(
            mul_iters,
            || {
                black_box(dynamic.mul(black_box(&a), black_box(&b)));
            },
            || {
                black_box(auto.mul(black_box(&a), black_box(&b)));
            },
        );
        let (pow_dyn, pow_fixed) = time_pair(
            iters,
            || {
                black_box(dynamic.pow(black_box(&a), black_box(exp)));
            },
            || {
                black_box(auto.pow(black_box(&a), black_box(exp)));
            },
        );
        let mul_speedup = mul_dyn.as_secs_f64() / mul_fixed.as_secs_f64();
        let pow_speedup = pow_dyn.as_secs_f64() / pow_fixed.as_secs_f64();

        print_row(
            &[
                (*label).into(),
                format!("{}", modulus.bits()),
                format!("{}", modulus.limbs().len()),
                auto.backend().into(),
                format!("{:.0}ns", mul_dyn.as_secs_f64() * 1e9),
                format!("{:.0}ns", mul_fixed.as_secs_f64() * 1e9),
                format!("{mul_speedup:.2}x"),
                human_us(pow_dyn),
                human_us(pow_fixed),
                format!("{pow_speedup:.2}x"),
            ],
            &widths,
        );
        width_rows.push(JsonValue::obj([
            ("label", JsonValue::Str((*label).into())),
            ("bits", JsonValue::Int(modulus.bits() as u64)),
            ("limbs", JsonValue::Int(modulus.limbs().len() as u64)),
            ("backend", JsonValue::Str(auto.backend().into())),
            ("mulmod_dyn_ns", nanos(mul_dyn)),
            ("mulmod_fixed_ns", nanos(mul_fixed)),
            ("mulmod_speedup", JsonValue::Num(mul_speedup)),
            ("pow_dyn_us", micros(pow_dyn)),
            ("pow_fixed_us", micros(pow_fixed)),
            ("pow_speedup", JsonValue::Num(pow_speedup)),
        ]));
    }

    // End-to-end: CRT decrypt and randomizer production on real keys,
    // fixed engines vs the same key forced onto the dynamic path.
    let sk_dyn = sk.force_dynamic();
    let pk_dyn = sk_dyn.public();
    let dec_iters = iters.clamp(1, 50);
    let cts: Vec<_> = (0..dec_iters)
        .map(|i| pk.encrypt_u64(i as u64 * 7 + 1, &mut rng).unwrap())
        .collect();
    let mut i = 0;
    let mut j = 0;
    let (dec_dyn, dec_fixed) = time_pair(
        dec_iters,
        || {
            black_box(sk_dyn.decrypt(&cts[i % cts.len()]).unwrap());
            i += 1;
        },
        || {
            black_box(sk.decrypt(&cts[j % cts.len()]).unwrap());
            j += 1;
        },
    );
    let dec_speedup = dec_dyn.as_secs_f64() / dec_fixed.as_secs_f64();

    let rand_iters = dec_iters;
    let mut rng_dyn = StdRng::seed_from_u64(0xB16_0002);
    let mut rng_fixed = StdRng::seed_from_u64(0xB16_0002);
    let (rand_dyn, rand_fixed) = time_pair(
        rand_iters,
        || {
            black_box(pk_dyn.sample_randomizer(&mut rng_dyn));
        },
        || {
            black_box(pk.sample_randomizer(&mut rng_fixed));
        },
    );
    let rand_speedup = rand_dyn.as_secs_f64() / rand_fixed.as_secs_f64();

    println!();
    let widths = [24, 13, 13, 9];
    print_header(&["operation", "dynamic", "fixed", "speedup"], &widths);
    print_row(
        &[
            "decrypt (CRT)".into(),
            human_us(dec_dyn),
            human_us(dec_fixed),
            format!("{dec_speedup:.2}x"),
        ],
        &widths,
    );
    print_row(
        &[
            "randomizer (r^n)".into(),
            human_us(rand_dyn),
            human_us(rand_fixed),
            format!("{rand_speedup:.2}x"),
        ],
        &widths,
    );

    let json = JsonValue::obj([
        ("bench", JsonValue::Str("bignum".into())),
        ("schema_version", JsonValue::Int(SCHEMA_VERSION)),
        ("paillier_bits", JsonValue::Int(paillier_bits as u64)),
        ("iters", JsonValue::Int(iters as u64)),
        ("mont_backend", JsonValue::Str(pk.mont_backend().into())),
        ("widths", JsonValue::Arr(width_rows)),
        (
            "decrypt",
            JsonValue::obj([
                ("dyn_us", micros(dec_dyn)),
                ("fixed_us", micros(dec_fixed)),
                ("speedup", JsonValue::Num(dec_speedup)),
            ]),
        ),
        (
            "randomizer",
            JsonValue::obj([
                ("dyn_us", micros(rand_dyn)),
                ("fixed_us", micros(rand_fixed)),
                ("speedup", JsonValue::Num(rand_speedup)),
            ]),
        ),
    ]);
    write_bench_json_reported(&out, &json);
}

/// Mean duration of `f` over `iters` calls.
fn mean_of(iters: usize, f: &mut impl FnMut()) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters.max(1) as u32
}

/// A/B timing: five interleaved repetitions (a, b, a, b, …) so clock drift
/// and background load hit both sides alike, reporting the per-side best
/// mean. The best rep is the standard microbenchmark lower bound (what
/// `timeit` reports): scheduler preemption, frequency throttling, and
/// allocator noise only ever add time, so the minimum is the least-noisy
/// estimate of the code's actual cost, and interleaving guarantees both
/// sides got a shot at the same machine states.
fn time_pair(iters: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (Duration, Duration) {
    let mut a_best = Duration::MAX;
    let mut b_best = Duration::MAX;
    for _ in 0..5 {
        a_best = a_best.min(mean_of(iters, &mut a));
        b_best = b_best.min(mean_of(iters, &mut b));
    }
    (a_best, b_best)
}

fn micros(d: Duration) -> JsonValue {
    JsonValue::Num(d.as_secs_f64() * 1e6)
}

fn nanos(d: Duration) -> JsonValue {
    JsonValue::Num(d.as_secs_f64() * 1e9)
}
