//! Figure 7: provider-side CPU time per email for the spam-filtering module,
//! varying the number of model features (N) and the number of features per
//! email (L), for NoPriv, Baseline and Pretzel.
//!
//! Provider CPU for Baseline/Pretzel is independent of N and L (one AHE
//! decryption plus one Yao comparison); NoPriv grows linearly in L. At
//! `--scale small` N is shrunk (the provider-side numbers do not depend on
//! it) and the protocol runs end-to-end; at `--scale paper` the paper's N
//! values are used for the setup phase as well.

use std::time::Duration;

use pretzel_bench::{
    human_us, parse_scale, print_header, print_row, synthetic_model, time, time_avg,
};
use pretzel_classifiers::SparseVector;
use pretzel_core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel_core::{NoPrivProvider, PretzelConfig, Scale};
use pretzel_datasets::synthetic_features;
use pretzel_transport::memory_pair;

/// Measures provider CPU per email for one private variant by running the
/// full two-party protocol and timing only the provider's `process_email`.
fn private_provider_cpu(
    variant: AheVariant,
    config: &PretzelConfig,
    model_features: usize,
    email_features: usize,
    emails: usize,
) -> Duration {
    let model = synthetic_model(model_features, 2, 7);
    let features: Vec<SparseVector> = (0..emails)
        .map(|i| synthetic_features(model_features, email_features, 15, i as u64))
        .collect();
    let features_client = features.clone();
    let config_client = config.clone();

    let (mut provider_chan, mut client_chan) = memory_pair();
    let handle = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut client =
            SpamClient::setup(&mut client_chan, &config_client, variant, &mut rng).unwrap();
        for f in &features_client {
            let _ = client.classify(&mut client_chan, f, &mut rng).unwrap();
        }
    });

    let mut rng = rand::thread_rng();
    let mut provider =
        SpamProvider::setup(&mut provider_chan, &model, config, variant, &mut rng).unwrap();
    let mut total = Duration::ZERO;
    for _ in 0..emails {
        let (_, d) = time(|| {
            provider
                .process_email(&mut provider_chan, &mut rng)
                .unwrap()
        });
        total += d;
    }
    handle.join().unwrap();
    total / emails as u32
}

fn main() {
    let scale = parse_scale();
    let config = PretzelConfig::for_scale(scale);
    // Provider CPU does not depend on N for the private variants; the N axis
    // matters for setup/storage (Figure 8). Scale N down accordingly.
    let n_values: Vec<usize> = match scale {
        Scale::Test => vec![2_000, 10_000, 50_000],
        Scale::Paper => vec![200_000, 1_000_000, 5_000_000],
    };
    let l_values = [200usize, 1_000, 5_000];
    let emails = match scale {
        Scale::Test => 3,
        Scale::Paper => 10,
    };

    println!("Figure 7: spam filtering, provider CPU time per email (scale {scale:?})\n");
    let widths = [26, 14, 14, 14];
    print_header(&["system", "L=200", "L=1000", "L=5000"], &widths);

    // NoPriv: linear in L, measured directly.
    let noprivate_model = synthetic_model(n_values[0], 2, 7);
    let noprivate = NoPrivProvider::new(noprivate_model);
    let mut noprivate_row = vec![format!("NoPriv (N={})", n_values[0])];
    for &l in &l_values {
        let email = synthetic_features(n_values[0], l, 15, 3);
        let d = time_avg(50, || {
            std::hint::black_box(noprivate.classify(&email));
        });
        noprivate_row.push(human_us(d));
    }
    print_row(&noprivate_row, &widths);

    // Baseline and Pretzel: one row per N (provider CPU ≈ constant in L and N).
    for &n in &n_values {
        // Keep the end-to-end run tractable: the setup phase encrypts N rows.
        let run_n = match scale {
            Scale::Test => n.min(10_000),
            Scale::Paper => n,
        };
        for (name, variant) in [
            ("Baseline", AheVariant::Baseline),
            ("Pretzel", AheVariant::Pretzel),
        ] {
            let mut row = vec![format!("{name} (N={n})")];
            for &l in &l_values {
                let d = private_provider_cpu(variant, &config, run_n, l.min(run_n), emails);
                row.push(human_us(d));
            }
            print_row(&row, &widths);
        }
    }
    println!("\nPaper shape: NoPriv grows with L; Baseline ≈ 0.7–0.8 ms (Paillier Dec dominates);");
    println!("Pretzel ≈ 0.1–0.5 ms (XPIR-BV Dec + one Yao comparison), i.e. below Baseline and");
    println!("within a small factor of NoPriv at L = 692.");
}
