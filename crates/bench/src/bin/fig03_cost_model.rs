//! Figure 3: the analytic cost model for classification, evaluated at the
//! paper's spam and topic-extraction operating points.

use pretzel_bench::{human_bytes, human_us, print_header, print_row};
use pretzel_core::costmodel::{
    baseline, non_private, pretzel, CostBreakdown, MicroCosts, Workload,
};

fn row(name: &str, c: &CostBreakdown) -> Vec<String> {
    vec![
        name.to_string(),
        human_us(std::time::Duration::from_micros(
            c.setup_provider_cpu_us as u64,
        )),
        human_bytes(c.client_storage_bytes),
        human_us(std::time::Duration::from_micros(
            c.email_provider_cpu_us as u64,
        )),
        human_us(std::time::Duration::from_micros(
            c.email_client_cpu_us as u64,
        )),
        human_bytes(c.email_network_bytes),
    ]
}

fn print_workload(title: &str, w: &Workload, costs: &MicroCosts) {
    println!(
        "\n== {title} (N={}, N'={}, B={}, B'={}, L={}) ==",
        w.model_features, w.selected_features, w.categories, w.candidates, w.email_features
    );
    let widths = [14, 14, 14, 16, 16, 14];
    print_header(
        &[
            "system",
            "setup CPU",
            "client storage",
            "email prov CPU",
            "email client CPU",
            "email network",
        ],
        &widths,
    );
    print_row(&row("Non-private", &non_private(costs, w)), &widths);
    print_row(&row("Baseline", &baseline(costs, w)), &widths);
    print_row(&row("Pretzel", &pretzel(costs, w)), &widths);
}

fn main() {
    let costs = MicroCosts::default();
    println!("Figure 3: analytic cost model (microbenchmark constants from Figure 6)");
    print_workload("Spam filtering", &Workload::paper_spam(), &costs);
    print_workload("Topic extraction", &Workload::paper_topics(), &costs);
    println!("\nNote: run fig06_microbench to substitute locally measured constants.");
}
