//! Statistical scenario bench: runs every named workload scenario K times
//! and emits median/p95/p99 + spread per scenario into
//! `BENCH_scenarios.json` (always — that file is the deliverable, and the
//! committed copy is the baseline `bench_gate` defends).
//!
//! ```text
//! bench_scenarios [--repeat K] [--seed S] [--scenarios a,b,c] [--tiny]
//!                 [--sessions N] [--rounds R] [--tcp] [--out NAME]
//! ```
//!
//! * `--repeat` (default 5) — runs per scenario; statistics are computed
//!   over these samples with the nearest-rank convention
//!   (`pretzel_scenarios::Summary`).
//! * `--seed` (default 7) — scenario seed; run i uses `seed + i` so runs
//!   exercise different (but reproducible) event streams.
//! * `--tiny` — `ScenarioConfig::tiny()` sizes, for CI smoke runs.
//! * `--tcp` — drive the fleet over loopback TCP instead of in-process
//!   memory channels.
//! * `--out` (default `scenarios`) — write `BENCH_<NAME>.json`, so CI can
//!   emit a smoke record without clobbering the committed baseline.
//!
//! Schema: see `docs/BENCHMARKS.md`.

use pretzel_bench::{arg_value, print_header, print_row, write_bench_json_reported, JsonValue};
use pretzel_scenarios::{
    all_scenarios, run_scenario, scenario_by_name, RunOptions, Scenario, ScenarioConfig,
    ScenarioOutcome, Summary, TransportMode,
};

fn summary_json(s: &Summary) -> JsonValue {
    JsonValue::obj([
        ("median", JsonValue::Num(s.median)),
        ("p95", JsonValue::Num(s.p95)),
        ("p99", JsonValue::Num(s.p99)),
        ("min", JsonValue::Num(s.min)),
        ("max", JsonValue::Num(s.max)),
        ("mean", JsonValue::Num(s.mean)),
        ("spread_pct", JsonValue::Num(s.spread_pct)),
    ])
}

fn main() {
    let repeat: usize = arg_value("--repeat")
        .map(|v| v.parse().expect("--repeat takes an integer"))
        .unwrap_or(5)
        .max(1);
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(7);
    let tiny = std::env::args().any(|a| a == "--tiny");
    let mut config = if tiny {
        ScenarioConfig::tiny()
    } else {
        ScenarioConfig::default()
    };
    if let Some(sessions) = arg_value("--sessions") {
        config.sessions = sessions.parse().expect("--sessions takes an integer");
    }
    if let Some(rounds) = arg_value("--rounds") {
        config.rounds = rounds.parse().expect("--rounds takes an integer");
    }
    let transport = if std::env::args().any(|a| a == "--tcp") {
        TransportMode::Tcp
    } else {
        TransportMode::Memory
    };
    let out_name = arg_value("--out").unwrap_or_else(|| "scenarios".into());

    let scenarios: Vec<Box<dyn Scenario>> = match arg_value("--scenarios") {
        None => all_scenarios(config),
        Some(list) => list
            .split(',')
            .map(|name| {
                scenario_by_name(name.trim(), config)
                    .unwrap_or_else(|| panic!("unknown scenario {name:?}"))
            })
            .collect(),
    };

    println!(
        "scenario bench: {} scenario(s), repeat={repeat}, seed={seed}, \
         sessions={}, rounds={}, transport={}",
        scenarios.len(),
        config.sessions,
        config.rounds,
        match transport {
            TransportMode::Memory => "memory",
            TransportMode::Tcp => "tcp",
        },
    );
    println!();
    let widths = [24, 8, 14, 14, 12, 10, 10];
    print_header(
        &[
            "scenario",
            "emails",
            "med em/s",
            "p95 em/s",
            "p99 wall",
            "spread",
            "ok/failed",
        ],
        &widths,
    );

    let options = RunOptions { transport };
    let mut records = Vec::new();
    for scenario in &scenarios {
        let outcomes: Vec<ScenarioOutcome> = (0..repeat)
            .map(|i| run_scenario(scenario.as_ref(), seed + i as u64, &options))
            .collect();
        let throughput: Vec<f64> = outcomes.iter().map(ScenarioOutcome::throughput).collect();
        let wall_ms: Vec<f64> = outcomes
            .iter()
            .map(|o| o.wall.as_secs_f64() * 1e3)
            .collect();
        let tput = Summary::from_samples(&throughput);
        let wall = Summary::from_samples(&wall_ms);
        let last = outcomes.last().expect("repeat >= 1");

        print_row(
            &[
                scenario.name().to_string(),
                last.fingerprint.emails_total.to_string(),
                format!("{:.0}", tput.median),
                format!("{:.0}", tput.p95),
                format!("{:.1} ms", wall.p99),
                format!("{:.1}%", tput.spread_pct),
                format!("{}/{}", last.completed, last.failed),
            ],
            &widths,
        );

        records.push(JsonValue::obj([
            ("name", JsonValue::Str(scenario.name().into())),
            (
                "params",
                JsonValue::Obj(
                    scenario
                        .params()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), JsonValue::Int(v)))
                        .collect(),
                ),
            ),
            ("emails", JsonValue::Int(last.fingerprint.emails_total)),
            ("completed", JsonValue::Int(last.completed as u64)),
            ("failed", JsonValue::Int(last.failed as u64)),
            ("emails_per_sec", summary_json(&tput)),
            ("wall_ms", summary_json(&wall)),
            (
                "samples_emails_per_sec",
                JsonValue::Arr(throughput.iter().map(|&x| JsonValue::Num(x)).collect()),
            ),
        ]));
    }

    let record = JsonValue::obj([
        ("bench", JsonValue::Str("scenarios".into())),
        (
            "schema_version",
            JsonValue::Int(pretzel_bench::gate::SCHEMA_VERSION),
        ),
        (
            "transport",
            JsonValue::Str(
                match transport {
                    TransportMode::Memory => "memory",
                    TransportMode::Tcp => "tcp",
                }
                .into(),
            ),
        ),
        ("repeat", JsonValue::Int(repeat as u64)),
        ("seed", JsonValue::Int(seed)),
        ("scenarios", JsonValue::Arr(records)),
    ]);
    write_bench_json_reported(&out_name, &record);
}
