//! §6.1–§6.3 headline numbers: Pretzel-vs-NoPriv and Pretzel-vs-Baseline
//! ratios for provider CPU and network, plus client CPU per email and
//! client storage, measured at a single operating point by running the full
//! protocols (spam and topic extraction) over metered in-memory channels.

use std::time::Duration;

use pretzel_bench::{
    human_bytes, human_us, parse_scale, print_header, print_row, synthetic_model, time,
};
use pretzel_classifiers::SparseVector;
use pretzel_core::spam::{AheVariant, SpamClient, SpamProvider};
use pretzel_core::topic::{CandidateMode, TopicClient, TopicProvider};
use pretzel_core::{NoPrivProvider, PretzelConfig, Scale};
use pretzel_datasets::synthetic_features;
use pretzel_transport::{memory_pair, Meter, MeteredChannel};

struct Measured {
    provider_cpu: Duration,
    client_cpu: Duration,
    network_bytes: f64,
    client_storage: usize,
}

fn measure_spam(
    variant: AheVariant,
    config: &PretzelConfig,
    n: usize,
    l: usize,
    emails: usize,
) -> Measured {
    let model = synthetic_model(n, 2, 1);
    let features: Vec<SparseVector> = (0..emails)
        .map(|i| synthetic_features(n, l, 15, i as u64))
        .collect();
    let config_client = config.clone();
    let features_client = features.clone();

    let (mut provider_chan, client_chan) = memory_pair();
    let meter = Meter::new();
    let mut metered = MeteredChannel::with_meter(client_chan, meter.clone());

    let handle = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut client =
            SpamClient::setup(&mut metered, &config_client, variant, &mut rng).unwrap();
        let storage = client.model_storage_bytes();
        meter.reset();
        let mut client_cpu = Duration::ZERO;
        for f in &features_client {
            let (_, d) = time(|| client.classify(&mut metered, f, &mut rng).unwrap());
            client_cpu += d;
        }
        (
            client_cpu / features_client.len() as u32,
            meter.total_bytes() as f64 / features_client.len() as f64,
            storage,
        )
    });

    let mut rng = rand::thread_rng();
    let mut provider =
        SpamProvider::setup(&mut provider_chan, &model, config, variant, &mut rng).unwrap();
    let mut provider_cpu = Duration::ZERO;
    for _ in 0..emails {
        let (_, d) = time(|| {
            provider
                .process_email(&mut provider_chan, &mut rng)
                .unwrap()
        });
        provider_cpu += d;
    }
    let (client_cpu, network_bytes, client_storage) = handle.join().unwrap();
    Measured {
        provider_cpu: provider_cpu / emails as u32,
        client_cpu,
        network_bytes,
        client_storage,
    }
}

fn measure_topic(
    variant: AheVariant,
    mode: CandidateMode,
    config: &PretzelConfig,
    n: usize,
    b: usize,
    l: usize,
    emails: usize,
) -> Measured {
    let model = synthetic_model(n, b, 2);
    let candidate_model = synthetic_model(n, b, 3);
    let features: Vec<SparseVector> = (0..emails)
        .map(|i| synthetic_features(n, l, 15, 50 + i as u64))
        .collect();
    let config_client = config.clone();
    let features_client = features.clone();

    let (mut provider_chan, client_chan) = memory_pair();
    let meter = Meter::new();
    let mut metered = MeteredChannel::with_meter(client_chan, meter.clone());

    let handle = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut client = TopicClient::setup(
            &mut metered,
            &config_client,
            variant,
            mode,
            Some(candidate_model),
            &mut rng,
        )
        .unwrap();
        let storage = client.model_storage_bytes();
        meter.reset();
        let mut client_cpu = Duration::ZERO;
        for f in &features_client {
            let (_, d) = time(|| client.extract(&mut metered, f, &mut rng).unwrap());
            client_cpu += d;
        }
        (
            client_cpu / features_client.len() as u32,
            meter.total_bytes() as f64 / features_client.len() as f64,
            storage,
        )
    });

    let mut rng = rand::thread_rng();
    let mut provider =
        TopicProvider::setup(&mut provider_chan, &model, config, variant, mode, &mut rng).unwrap();
    let mut provider_cpu = Duration::ZERO;
    for _ in 0..emails {
        let (_, d) = time(|| provider.process_email(&mut provider_chan).unwrap());
        provider_cpu += d;
    }
    let (client_cpu, network_bytes, client_storage) = handle.join().unwrap();
    Measured {
        provider_cpu: provider_cpu / emails as u32,
        client_cpu,
        network_bytes,
        client_storage,
    }
}

fn noprivate_cpu(n: usize, b: usize, l: usize) -> Duration {
    let provider = NoPrivProvider::new(synthetic_model(n, b, 1));
    let email = synthetic_features(n, l, 15, 9);
    let iters = 30;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(provider.classify(&email));
    }
    start.elapsed() / iters
}

fn report(name: &str, m: &Measured, noprivate: Duration, email_bytes: f64) {
    let widths = [26, 16, 16, 16, 16];
    print_row(
        &[
            name.to_string(),
            human_us(m.provider_cpu),
            human_us(m.client_cpu),
            human_bytes(m.network_bytes),
            human_bytes(m.client_storage as f64),
        ],
        &widths,
    );
    println!(
        "    -> provider CPU = {:.2}x NoPriv; network overhead = {:.2}x the email size",
        m.provider_cpu.as_secs_f64() / noprivate.as_secs_f64().max(1e-9),
        m.network_bytes / email_bytes
    );
}

fn main() {
    let scale = parse_scale();
    let config = PretzelConfig::for_scale(scale);
    let (n_spam, n_topic, b, l, emails) = match scale {
        Scale::Test => (5_000usize, 1_000usize, 64usize, 300usize, 2usize),
        Scale::Paper => (200_000, 20_000, 2048, 692, 3),
    };
    let b_prime = config.candidate_topics;
    let email_bytes = 75.0 * 1024.0;

    println!("Headline ratios (§6.1–§6.3), scale {scale:?}: N_spam={n_spam}, N_topic={n_topic}, B={b}, B'={b_prime}, L={l}\n");
    let widths = [26, 16, 16, 16, 16];
    print_header(
        &[
            "configuration",
            "provider CPU",
            "client CPU",
            "net/email",
            "client storage",
        ],
        &widths,
    );

    let np_spam = noprivate_cpu(n_spam, 2, l);
    print_row(
        &[
            "NoPriv spam".into(),
            human_us(np_spam),
            "-".into(),
            human_bytes(email_bytes),
            "-".into(),
        ],
        &widths,
    );
    let spam_base = measure_spam(AheVariant::Baseline, &config, n_spam, l, emails);
    report("Baseline spam", &spam_base, np_spam, email_bytes);
    let spam_pz = measure_spam(AheVariant::Pretzel, &config, n_spam, l, emails);
    report("Pretzel spam", &spam_pz, np_spam, email_bytes);

    println!();
    let np_topic = noprivate_cpu(n_topic, b, l);
    print_row(
        &[
            "NoPriv topics".into(),
            human_us(np_topic),
            "-".into(),
            human_bytes(email_bytes),
            "-".into(),
        ],
        &widths,
    );
    let topic_full = measure_topic(
        AheVariant::Pretzel,
        CandidateMode::Full,
        &config,
        n_topic,
        b,
        l,
        emails,
    );
    report("Pretzel topics (B'=B)", &topic_full, np_topic, email_bytes);
    let topic_dec = measure_topic(
        AheVariant::Pretzel,
        CandidateMode::Decomposed(b_prime),
        &config,
        n_topic,
        b,
        l,
        emails,
    );
    report(
        &format!("Pretzel topics (B'={b_prime})"),
        &topic_dec,
        np_topic,
        email_bytes,
    );

    println!("\nPaper headline: spam provider CPU 0.65x NoPriv (at L=692); topics 1.03–1.78x NoPriv with");
    println!(
        "decomposition; network 2.7–5.4x the email size; client CPU < 1 s; storage hundreds of MB."
    );
}
