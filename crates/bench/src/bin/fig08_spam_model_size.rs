//! Figure 8: size of the spam classification model as stored by the client,
//! for Non-encrypted, Baseline (Paillier), Pretzel-NoOptimPack (XPIR-BV with
//! legacy packing) and Pretzel (XPIR-BV with across-row packing).
//!
//! Sizes are computed from the packing layouts (ciphertext counts × ciphertext
//! size) — the same arithmetic the protocols use — so the paper-scale N values
//! can be reported without encrypting five million rows.

use pretzel_bench::{human_bytes, parse_scale, print_header, print_row};
use pretzel_core::{PretzelConfig, Scale};
use pretzel_sdp::paillier_pack;
use pretzel_sdp::rlwe_pack::{model_ciphertext_count, Packing};

fn main() {
    let scale = parse_scale();
    let config = PretzelConfig::for_scale(scale);
    let n_values: Vec<usize> = match scale {
        Scale::Test => vec![20_000, 100_000, 500_000],
        Scale::Paper => vec![200_000, 1_000_000, 5_000_000],
    };
    let b = 2usize;
    let xpir_slots = config.rlwe_degree;
    let xpir_ct_bytes = config.rlwe_params().ciphertext_bytes();
    // Paillier: ciphertexts are 2·|n| bits; slots = plaintext bits / slot bits.
    let paillier_ct_bytes = 2 * config.paillier_bits / 8;
    let paillier_slots = ((config.paillier_bits - 1) / config.paillier_slot_bits as usize).max(1);

    println!(
        "Figure 8: spam model size at the client (B = 2, {} slot XPIR-BV, {}-bit Paillier, scale {:?})\n",
        xpir_slots, config.paillier_bits, scale
    );
    let mut header = vec!["system".to_string()];
    for &n in &n_values {
        header.push(format!("N={n}"));
    }
    let widths = vec![22usize, 14, 14, 14];
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    let mut rows: Vec<Vec<String>> = vec![
        vec!["Non-encrypted".into()],
        vec!["Baseline".into()],
        vec!["Pretzel-NoOptimPack".into()],
        vec!["Pretzel".into()],
    ];
    for &n in &n_values {
        let rows_with_bias = n + 1;
        // Non-encrypted: b_in-bit fixed-point values.
        let plain = (rows_with_bias * b * config.weight_bits as usize) as f64 / 8.0;
        rows[0].push(human_bytes(plain));
        let baseline_cts = paillier_pack::model_ciphertext_count(rows_with_bias, b, paillier_slots);
        rows[1].push(human_bytes((baseline_cts * paillier_ct_bytes) as f64));
        let legacy_cts =
            model_ciphertext_count(rows_with_bias, b, xpir_slots, Packing::LegacyPerRow);
        rows[2].push(human_bytes((legacy_cts * xpir_ct_bytes) as f64));
        let pretzel_cts = model_ciphertext_count(rows_with_bias, b, xpir_slots, Packing::AcrossRow);
        rows[3].push(human_bytes((pretzel_cts * xpir_ct_bytes) as f64));
    }
    for row in rows {
        print_row(&row, &widths);
    }
    println!("\nPaper shape (N = 5M): Non-encrypted 107 MB, Baseline 1.3 GB,");
    println!("Pretzel-NoOptimPack 76 GB, Pretzel 183.5 MB (≈ 7x smaller than Baseline).");
}
