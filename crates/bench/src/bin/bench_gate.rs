//! The perf-regression gate CLI over `BENCH_scenarios.json` records.
//!
//! ```text
//! bench_gate --baseline FILE --candidate FILE
//!            [--max-regression-pct PCT] [--advisory]
//! bench_gate --validate FILE
//! bench_gate --validate-bignum FILE [--min-speedup X]
//! bench_gate --validate-phase-split FILE [--min-bank-speedup X] [--at-sessions N]
//! ```
//!
//! `--validate-bignum` checks a `BENCH_bignum.json` record; with
//! `--min-speedup X` it additionally fails when any width's fixed-vs-dynamic
//! mulmod/pow speedup falls below `X` — the CI defence for the fixed-limb
//! engine's advantage.
//!
//! `--validate-phase-split` checks a `BENCH_phase_split.json` record; with
//! `--min-bank-speedup X` it additionally fails when the `online` (spam)
//! row at `--at-sessions` (default 64) has a cold-over-bank speedup below
//! `X` — the CI defence for the precompute bank's high-concurrency
//! advantage. The `search_online` table is schema-checked only: its banked
//! saving per query sits below fleet scheduling noise at bench parameters.
//!
//! Exit codes: `0` pass, `1` gate failure (suppressed to a warning by
//! `--advisory`), `2` usage or schema error. Decision rules (medians gate,
//! spread-derived noise floor, param-matched comparisons) live in
//! [`pretzel_bench::gate`]; policy documentation in `docs/BENCHMARKS.md`.

use std::process::ExitCode;

use pretzel_bench::gate::{
    compare, validate_bignum, validate_phase_split, validate_schema, GatePolicy, GateStatus,
};
use pretzel_bench::{arg_value, print_header, print_row, JsonValue};

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let record = JsonValue::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    validate_schema(&record).map_err(|errors| {
        let mut msg = format!("{path}: schema validation failed:");
        for error in errors {
            msg.push_str("\n  - ");
            msg.push_str(&error);
        }
        msg
    })?;
    Ok(record)
}

/// True when the record is schema-valid on its own and only the
/// `--min-speedup` gate failed — that's a perf regression (exit 1), not a
/// usage/schema error (exit 2).
fn errors_are_speedup_only(record: &JsonValue, min_speedup: f64) -> bool {
    min_speedup > 0.0 && validate_bignum(record, 0.0).is_ok()
}

fn main() -> ExitCode {
    if let Some(path) = arg_value("--validate-phase-split") {
        let min_bank_speedup = match arg_value("--min-bank-speedup") {
            None => 0.0,
            Some(s) => match s.parse::<f64>() {
                Ok(x) if x >= 0.0 && x.is_finite() => x,
                _ => {
                    eprintln!("--min-bank-speedup takes a non-negative number, got {s:?}");
                    return ExitCode::from(2);
                }
            },
        };
        let at_sessions = match arg_value("--at-sessions") {
            None => 64,
            Some(s) => match s.parse::<u64>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("--at-sessions takes a positive integer, got {s:?}");
                    return ExitCode::from(2);
                }
            },
        };
        let record = match std::fs::read_to_string(&path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|text| {
                JsonValue::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))
            }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        return match validate_phase_split(&record, min_bank_speedup, at_sessions) {
            Ok(()) => {
                if min_bank_speedup > 0.0 {
                    println!(
                        "{path}: schema OK, bank speedups at {at_sessions} sessions >= \
                         {min_bank_speedup:.2}x"
                    );
                } else {
                    println!("{path}: schema OK");
                }
                ExitCode::SUCCESS
            }
            Err(errors) => {
                eprintln!("{path}: phase-split gate failed:");
                for error in errors {
                    eprintln!("  - {error}");
                }
                // Schema problems are usage errors (2); an eroded bank
                // speedup (or a missing gated row) is a gate failure (1).
                if min_bank_speedup > 0.0 && validate_phase_split(&record, 0.0, at_sessions).is_ok()
                {
                    ExitCode::FAILURE
                } else {
                    ExitCode::from(2)
                }
            }
        };
    }

    if let Some(path) = arg_value("--validate-bignum") {
        let min_speedup = match arg_value("--min-speedup") {
            None => 0.0,
            Some(s) => match s.parse::<f64>() {
                Ok(x) if x >= 0.0 && x.is_finite() => x,
                _ => {
                    eprintln!("--min-speedup takes a non-negative number, got {s:?}");
                    return ExitCode::from(2);
                }
            },
        };
        let record = match std::fs::read_to_string(&path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|text| {
                JsonValue::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))
            }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        return match validate_bignum(&record, min_speedup) {
            Ok(()) => {
                if min_speedup > 0.0 {
                    println!("{path}: schema OK, all speedups >= {min_speedup:.2}x");
                } else {
                    println!("{path}: schema OK");
                }
                ExitCode::SUCCESS
            }
            Err(errors) => {
                eprintln!("{path}: bignum gate failed:");
                for error in errors {
                    eprintln!("  - {error}");
                }
                // Schema problems are usage errors (2); an eroded speedup is
                // a gate failure (1).
                if errors_are_speedup_only(&record, min_speedup) {
                    ExitCode::FAILURE
                } else {
                    ExitCode::from(2)
                }
            }
        };
    }

    if let Some(path) = arg_value("--validate") {
        return match load(&path) {
            Ok(_) => {
                println!("{path}: schema OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }

    let (Some(baseline_path), Some(candidate_path)) =
        (arg_value("--baseline"), arg_value("--candidate"))
    else {
        eprintln!(
            "usage: bench_gate --baseline FILE --candidate FILE \
             [--max-regression-pct PCT] [--advisory]\n       \
             bench_gate --validate FILE"
        );
        return ExitCode::from(2);
    };
    let mut policy = GatePolicy::default();
    if let Some(pct) = arg_value("--max-regression-pct") {
        match pct.parse::<f64>() {
            Ok(p) if p > 0.0 => policy.max_regression_pct = p,
            _ => {
                eprintln!("--max-regression-pct takes a positive number, got {pct:?}");
                return ExitCode::from(2);
            }
        }
    }
    let advisory = std::env::args().any(|a| a == "--advisory");

    let (baseline, candidate) = match (load(&baseline_path), load(&candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::from(2);
        }
    };

    let report = compare(&baseline, &candidate, &policy);
    println!(
        "gate: {} vs {} (max median drop {:.0}% before noise floor)",
        baseline_path, candidate_path, policy.max_regression_pct
    );
    println!();
    let widths = [24, 14, 14, 10, 10, 22];
    print_header(
        &[
            "scenario",
            "base em/s",
            "cand em/s",
            "delta",
            "allowed",
            "status",
        ],
        &widths,
    );
    for row in &report.rows {
        print_row(
            &[
                row.name.clone(),
                format!("{:.0}", row.baseline_median),
                format!("{:.0}", row.candidate_median),
                format!("{:+.1}%", row.delta_pct),
                format!("-{:.1}%", row.allowed_drop_pct),
                format!("{:?}", row.status),
            ],
            &widths,
        );
    }
    println!();

    for row in &report.rows {
        if row.status == GateStatus::SkippedParamsMismatch {
            println!(
                "note: {} skipped — params differ between records (not comparable)",
                row.name
            );
        }
    }
    if report.passed() {
        println!(
            "gate PASSED ({} scenario(s) compared, {} skipped)",
            report.rows.len() - report.skipped(),
            report.skipped()
        );
        ExitCode::SUCCESS
    } else if advisory {
        println!(
            "gate FAILED with {} regression(s) — advisory mode, not failing the build",
            report.failures()
        );
        ExitCode::SUCCESS
    } else {
        println!("gate FAILED with {} regression(s)", report.failures());
        ExitCode::FAILURE
    }
}
