//! Figure 13: topic-classification accuracy as a function of the degree of
//! chi-square feature selection (N′/N), for NB, LR and SVM on the three
//! (synthetic stand-in) topic corpora.

use pretzel_bench::{parse_scale, print_header, print_row};
use pretzel_classifiers::lr::MultinomialLrTrainer;
use pretzel_classifiers::nb::MultinomialNbTrainer;
use pretzel_classifiers::select::{apply_selection, select_top_features};
use pretzel_classifiers::svm::OneVsAllSvmTrainer;
use pretzel_classifiers::{accuracy, Trainer};
use pretzel_core::Scale;
use pretzel_datasets::{newsgroups_like, rcv1_like, reuters_like, Corpus};

fn main() {
    let scale = parse_scale();
    let (corpora, fractions): (Vec<Corpus>, Vec<f64>) = match scale {
        Scale::Test => (
            vec![
                newsgroups_like(0.05).generate(),
                reuters_like(0.08).generate(),
                rcv1_like(0.004).generate(),
            ],
            vec![0.05, 0.1, 0.25, 0.5, 1.0],
        ),
        Scale::Paper => (
            vec![
                newsgroups_like(1.0).generate(),
                reuters_like(1.0).generate(),
                rcv1_like(0.05).generate(),
            ],
            vec![0.05, 0.1, 0.2, 0.25, 0.4, 0.6, 0.8, 1.0],
        ),
    };

    println!("Figure 13: accuracy vs. degree of feature selection N'/N (scale {scale:?})\n");
    let mut widths = vec![16usize];
    widths.extend(std::iter::repeat_n(10, fractions.len()));
    let mut header = vec!["algo-corpus".to_string()];
    for &f in &fractions {
        header.push(format!("N'/N={f:.2}"));
    }
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    for corpus in &corpora {
        let (train, test) = corpus.train_test_split(0.7, 13);
        let trainers: Vec<(&str, Box<dyn Trainer>)> = vec![
            ("NB", Box::new(MultinomialNbTrainer::default())),
            (
                "LR",
                Box::new(MultinomialLrTrainer {
                    epochs: 8,
                    ..Default::default()
                }),
            ),
            (
                "SVM",
                Box::new(OneVsAllSvmTrainer {
                    epochs: 5,
                    ..Default::default()
                }),
            ),
        ];
        for (name, trainer) in &trainers {
            let mut row = vec![format!("{name}-{}", corpus.name)];
            for &fraction in &fractions {
                let keep = ((corpus.num_features as f64) * fraction).round() as usize;
                let kept =
                    select_top_features(&train, corpus.num_features, corpus.num_classes, keep);
                let train_sel = apply_selection(&train, &kept);
                let test_sel = apply_selection(&test, &kept);
                let model = trainer.train(&train_sel, kept.len(), corpus.num_classes);
                let acc = accuracy(&model, &test_sel) * 100.0;
                row.push(format!("{acc:.1}"));
            }
            print_row(&row, &widths);
        }
    }
    println!("\nPaper shape: accuracy is within a few points of its peak once N'/N reaches ~0.25,");
    println!("so aggressive feature selection is a plausible operating point (§4.3).");
}
