//! Figure 14: impact of decomposed classification (§4.3) — the percentage of
//! test documents whose "true" topic (as assigned by a classifier trained on
//! the whole training set) appears among the B′ candidates produced by a
//! public model trained on a small fraction of the training data.

use pretzel_bench::{parse_scale, print_header, print_row};
use pretzel_classifiers::nb::MultinomialNbTrainer;
use pretzel_classifiers::Trainer;
use pretzel_core::topic::candidate_hit_rate;
use pretzel_core::Scale;
use pretzel_datasets::{rcv1_like, Corpus, CorpusSpec};

fn main() {
    let scale = parse_scale();
    let corpus = match scale {
        // The paper uses RCV1 with 296 topics and ~800K documents, so even a
        // 1% training subsample still holds ~27 documents per topic. At test
        // scale we cannot afford 296 × 27 × 100 documents, so we shrink the
        // *topic count* as well as the document count — keeping the quantity
        // that matters for this figure (documents per topic in the smallest
        // subsample) in a comparable regime.
        Scale::Test => CorpusSpec {
            num_classes: 64,
            docs_per_class: vec![340; 64],
            ..rcv1_like(1.0)
        }
        .generate(),
        Scale::Paper => rcv1_like(0.05).generate(),
    };
    let fractions = [0.01f64, 0.02, 0.05, 0.10];
    let b_primes = [5usize, 10, 20, 40];

    let (train, test) = corpus.train_test_split(0.7, 29);
    let trainer = MultinomialNbTrainer::default();
    // The "reference" proprietary model is trained on the full training set.
    let reference = trainer.train(&train, corpus.num_features, corpus.num_classes);

    println!(
        "Figure 14: decomposed classification candidate coverage ({} topics, {} train / {} test docs, scale {:?})\n",
        corpus.num_classes,
        train.len(),
        test.len(),
        scale
    );
    let mut widths = vec![8usize];
    widths.extend(std::iter::repeat_n(12, fractions.len()));
    let mut header = vec!["B'".to_string()];
    for &f in &fractions {
        header.push(format!("{:.0}% train", f * 100.0));
    }
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    for &b_prime in &b_primes {
        let mut row = vec![format!("B'={b_prime}")];
        for &fraction in &fractions {
            let subset = Corpus::subsample(&train, fraction, 7 + (fraction * 1000.0) as u64);
            let candidate_model = trainer.train(&subset, corpus.num_features, corpus.num_classes);
            let hit = candidate_hit_rate(&candidate_model, &reference, &test, b_prime) * 100.0;
            row.push(format!("{hit:.1}"));
        }
        print_row(&row, &widths);
    }
    println!("\nPaper shape: coverage rises with both B' and the training fraction;");
    println!("B'=20 with 10% of the training data already covers ~99% of documents.");
}
