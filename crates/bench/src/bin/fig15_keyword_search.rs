//! Figure 15: client-side keyword search — index size, query latency and
//! update (indexing) latency for each corpus.

use std::time::Instant;

use pretzel_bench::{human_bytes, human_us, parse_scale, print_header, print_row};
use pretzel_core::Scale;
use pretzel_datasets::{
    enron_like, gmail_like, ling_spam_like, newsgroups_like, reuters_like, Corpus,
};
use pretzel_search::SearchIndex;

fn measure(corpus: &Corpus) -> (String, String, String, String) {
    let texts: Vec<String> = corpus
        .examples
        .iter()
        .map(|e| corpus.render_text(e))
        .collect();
    // Update time: average time to index one email.
    let mut index = SearchIndex::new();
    let start = Instant::now();
    for text in &texts {
        index.add_document(text);
    }
    let update = start.elapsed() / texts.len().max(1) as u32;

    // Query time: average over a mix of common and rare words.
    let probe_words: Vec<String> = texts
        .iter()
        .take(50)
        .filter_map(|t| t.split(' ').next().map(|w| w.to_string()))
        .collect();
    let start = Instant::now();
    let mut hits = 0usize;
    for w in &probe_words {
        hits += index.query(w).len();
    }
    let query = start.elapsed() / probe_words.len().max(1) as u32;
    std::hint::black_box(hits);

    let stats = index.stats();
    (
        format!("{} docs", stats.documents),
        human_bytes(stats.size_bytes as f64),
        human_us(query),
        human_us(update),
    )
}

fn main() {
    let scale = parse_scale();
    let factor = match scale {
        Scale::Test => 0.05,
        Scale::Paper => 1.0,
    };
    let corpora = vec![
        ling_spam_like(factor).generate(),
        enron_like(factor * 0.5).generate(),
        newsgroups_like(factor).generate(),
        reuters_like(factor).generate(),
        gmail_like(factor * 2.0).generate(), // stands in for the 40K-email Gmail inbox
    ];

    println!("Figure 15: client-side keyword search index (scale {scale:?})\n");
    let widths = [18, 12, 12, 12, 12];
    print_header(
        &[
            "corpus",
            "documents",
            "index size",
            "query time",
            "update time",
        ],
        &widths,
    );
    for corpus in &corpora {
        let (docs, size, query, update) = measure(corpus);
        print_row(&[corpus.name.clone(), docs, size, query, update], &widths);
    }
    println!("\nPaper shape: MB-scale indexes (5–50 MB), sub-millisecond queries and updates.");
}
