//! Offline/online phase split: what the precomputation pipeline buys.
//!
//! Pretzel's headline performance comes from decomposing each per-email
//! protocol into an expensive *offline* phase (Paillier randomizer
//! exponentiations, circuit garbling) and a cheap *online* phase (§3.3).
//! This harness measures both halves of our split:
//!
//! 1. **Paillier microbenchmarks** — CRT decryption vs. the single-power
//!    reference path, and pooled encryption (randomizer precomputed offline)
//!    vs. inline encryption.
//! 2. **Online-path latency** — mean per-email round latency of Baseline
//!    spam sessions served by a `Mailroom`, three ways per fleet size:
//!    cold (`precompute_budget = 0`, every round computes inline), warm
//!    (the deprecated per-session inline budget tops pools up between
//!    rounds), and bank (a fleet-wide precompute bank prefilled before the
//!    timed region — no per-round top-up work competes with the online
//!    path, which is where the warm mode's speedup collapses at high
//!    session counts).
//! 3. **Search-query latency** — the same cold/warm/bank comparison for
//!    encrypted keyword-search sessions, whose query responses are RLWE
//!    ciphertexts: a warm pool of pre-encrypted response randomizers turns
//!    each response from a full RLWE encryption (NTTs + sampling) into `n`
//!    modular additions.
//! 4. **Batched rounds** — sequential vs coalesced (`process_batch`)
//!    per-email latency for the spam and search workloads: a batch collapses
//!    each round's frames into a handful per batch (one blinded-ciphertext
//!    frame + one batched Yao/OT exchange for spam, two frames total for
//!    search), so light-crypto rounds speed up most.
//!
//! Always emits `BENCH_phase_split.json` (the machine-readable record is the
//! point of this bin). Run with:
//!
//! ```sh
//! cargo run --release -p pretzel_bench --bin bench_phase_split
//! cargo run --release -p pretzel_bench --bin bench_phase_split -- \
//!     --paillier-bits 256 --sessions 1,16 --emails 4 --iters 5
//! ```

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pretzel_bench::{
    arg_value, human_us, print_header, print_row, synthetic_model, write_bench_json_reported,
    JsonValue,
};
use pretzel_classifiers::{NGramExtractor, SparseVector};
use pretzel_core::bank::{KIND_GARBLINGS, KIND_ZERO_ENCRYPTIONS};
use pretzel_core::spam::AheVariant;
use pretzel_core::topic::CandidateMode;
use pretzel_core::{PretzelConfig, ProviderModelSuite};
use pretzel_paillier::{keygen, RandomnessPool};
use pretzel_server::{BankConfig, ClientSpec, Mailroom, MailroomClient, MailroomConfig};
use pretzel_transport::memory_pair;

fn main() {
    let paillier_bits: usize = arg_value("--paillier-bits")
        .map(|v| v.parse().expect("--paillier-bits takes a number"))
        .unwrap_or(512);
    let sessions: Vec<usize> = arg_value("--sessions")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sessions takes a,b,c"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 16]);
    let emails: usize = arg_value("--emails")
        .map(|v| v.parse().expect("--emails takes a number"))
        .unwrap_or(4);
    let iters: usize = arg_value("--iters")
        .map(|v| v.parse().expect("--iters takes a number"))
        .unwrap_or(10);

    println!("Offline/online phase split — {paillier_bits}-bit Paillier\n");

    let micro = run_paillier_micro(paillier_bits, iters);
    let online = run_online_latency(paillier_bits, &sessions, emails);
    let search = run_search_latency(&sessions, emails);
    let batch = run_batch_online(&sessions, emails);

    let json = JsonValue::obj([
        ("bench", JsonValue::Str("phase_split".into())),
        ("paillier_bits", JsonValue::Int(paillier_bits as u64)),
        ("emails_per_session", JsonValue::Int(emails as u64)),
        ("paillier", micro),
        ("online", JsonValue::Arr(online)),
        ("search_online", JsonValue::Arr(search)),
        ("batch_online", JsonValue::Arr(batch)),
    ]);
    write_bench_json_reported("phase_split", &json);
}

/// Sequential vs batched per-email online latency for the spam (Pretzel
/// variant) and search workloads, at each fleet size. One batch covers the
/// session's whole email budget.
fn run_batch_online(sessions: &[usize], emails: usize) -> Vec<JsonValue> {
    let config = PretzelConfig::test();
    let suite = ProviderModelSuite {
        spam: synthetic_model(256, 2, 11),
        topic: synthetic_model(64, 4, 12),
        topic_mode: CandidateMode::Full,
        virus: synthetic_model(64, 2, 13),
        virus_extractor: NGramExtractor::new(3, 64),
        config: config.clone(),
    };

    println!("\nBatched rounds — sequential vs one coalesced batch of {emails}");
    let widths = [10, 8, 14, 14, 10];
    print_header(
        &[
            "workload",
            "sessions",
            "seq/email",
            "batch/email",
            "speedup",
        ],
        &widths,
    );

    let mut rows = Vec::new();
    for workload in ["spam", "search"] {
        for &n in sessions {
            let seq = run_batch_fleet(&suite, &config, workload, n, emails, false);
            let batched = run_batch_fleet(&suite, &config, workload, n, emails, true);
            let speedup = seq.as_secs_f64() / batched.as_secs_f64();
            print_row(
                &[
                    workload.into(),
                    format!("{n}"),
                    human_us(seq),
                    human_us(batched),
                    format!("{speedup:.2}x"),
                ],
                &widths,
            );
            rows.push(JsonValue::obj([
                ("workload", JsonValue::Str(workload.into())),
                ("sessions", JsonValue::Int(n as u64)),
                ("seq_us_per_email", micros(seq)),
                ("batch_us_per_email", micros(batched)),
                ("speedup", JsonValue::Num(speedup)),
            ]));
        }
    }
    rows
}

/// Serves `n_sessions` sessions of one workload, each submitting `emails`
/// rounds either sequentially or as one coalesced batch, and returns the
/// mean wall-clock per email of the round loop alone.
fn run_batch_fleet(
    suite: &ProviderModelSuite,
    config: &PretzelConfig,
    workload: &str,
    n_sessions: usize,
    emails: usize,
    batched: bool,
) -> Duration {
    use pretzel_core::session::EmailPayload;

    // The batch comparison keeps measuring the legacy inline shim: the
    // batching speedup is orthogonal to where artifacts come from.
    #[allow(deprecated)]
    let mailroom_config = MailroomConfig::builder()
        .workers(n_sessions)
        .queue_capacity(n_sessions)
        .rng_seed(44)
        .precompute_budget(2)
        .build();
    let mailroom = Mailroom::start(suite.clone(), mailroom_config);
    let start_line = Arc::new(Barrier::new(n_sessions));

    let clients: Vec<_> = (0..n_sessions)
        .map(|i| {
            let (provider_end, client_end) = memory_pair();
            mailroom
                .submit(provider_end)
                .expect("queue sized for fleet");
            let spec = if workload == "spam" {
                ClientSpec::spam(config.clone())
            } else {
                ClientSpec::search(config.clone())
            };
            let barrier = Arc::clone(&start_line);
            let workload = workload.to_string();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(3000 + i as u64);
                let mut client =
                    MailroomClient::connect(client_end, &spec, &mut rng).expect("client setup");
                let payloads: Vec<EmailPayload> = (0..emails)
                    .map(|e| {
                        if workload == "spam" {
                            EmailPayload::Tokens(SparseVector::from_pairs(
                                (0..20)
                                    .map(|_| (rng.gen_range(0..256), rng.gen_range(1..4u32)))
                                    .collect(),
                            ))
                        } else if e % 2 == 0 {
                            EmailPayload::SearchIndex {
                                doc_id: e as u64,
                                body: format!("message {e} about invoices and travel"),
                            }
                        } else {
                            EmailPayload::SearchQuery("invoices".into())
                        }
                    })
                    .collect();
                barrier.wait();
                let start = Instant::now();
                if batched {
                    client.process_batch(&payloads, &mut rng).expect("batch");
                } else {
                    for p in &payloads {
                        client.process(p, &mut rng).expect("round");
                    }
                }
                let elapsed = start.elapsed();
                client.finish().expect("teardown");
                elapsed
            })
        })
        .collect();

    let total: Duration = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let report = mailroom.shutdown();
    assert_eq!(report.completed(), n_sessions, "every session must finish");
    total / (n_sessions * emails) as u32
}

/// CRT vs. inline decryption and pooled vs. inline encryption, averaged over
/// `iters` operations on one `bits`-bit key.
fn run_paillier_micro(bits: usize, iters: usize) -> JsonValue {
    let mut rng = StdRng::seed_from_u64(0x000F_F1CE);
    let sk = keygen(bits, &mut rng);
    let pk = sk.public();

    let plaintexts: Vec<u64> = (0..iters).map(|_| rng.gen_range(0..1 << 30)).collect();
    let cts: Vec<_> = plaintexts
        .iter()
        .map(|&m| pk.encrypt_u64(m, &mut rng).unwrap())
        .collect();

    let (ok_inline, d_inline) = time_over(iters, || {
        cts.iter()
            .all(|c| sk.decrypt_inline(c).unwrap().to_u64().is_some())
    });
    let (ok_crt, d_crt) = time_over(iters, || {
        cts.iter()
            .all(|c| sk.decrypt(c).unwrap().to_u64().is_some())
    });
    assert!(ok_inline && ok_crt);

    let (_, e_inline) = time_over(iters, || {
        for &m in &plaintexts {
            std::hint::black_box(pk.encrypt_u64(m, &mut rng).unwrap());
        }
        true
    });
    // The offline half: pool filled outside the timed region.
    let mut pool = RandomnessPool::new();
    pool.refill(pk, iters, &mut rng);
    let (_, e_pooled) = time_over(iters, || {
        for &m in &plaintexts {
            let m = pretzel_bignum::BigUint::from(m);
            std::hint::black_box(pk.encrypt_pooled(&m, &mut pool, &mut rng).unwrap());
        }
        true
    });
    assert!(pool.is_empty(), "the timed encryptions drained the pool");

    let dec_speedup = d_inline.as_secs_f64() / d_crt.as_secs_f64();
    let enc_speedup = e_inline.as_secs_f64() / e_pooled.as_secs_f64();

    let widths = [24, 14, 14, 10];
    print_header(&["operation", "inline", "split", "speedup"], &widths);
    print_row(
        &[
            "decrypt (CRT)".into(),
            human_us(d_inline),
            human_us(d_crt),
            format!("{dec_speedup:.2}x"),
        ],
        &widths,
    );
    print_row(
        &[
            "encrypt (pooled r^n)".into(),
            human_us(e_inline),
            human_us(e_pooled),
            format!("{enc_speedup:.2}x"),
        ],
        &widths,
    );

    JsonValue::obj([
        ("decrypt_inline_us", micros(d_inline)),
        ("decrypt_crt_us", micros(d_crt)),
        ("decrypt_speedup", JsonValue::Num(dec_speedup)),
        ("encrypt_inline_us", micros(e_inline)),
        ("encrypt_pooled_us", micros(e_pooled)),
        ("encrypt_speedup", JsonValue::Num(enc_speedup)),
    ])
}

/// Mean per-email online latency of Baseline spam sessions, cold vs. warm
/// pools, at each fleet size.
fn run_online_latency(paillier_bits: usize, sessions: &[usize], emails: usize) -> Vec<JsonValue> {
    let config = PretzelConfig {
        paillier_bits,
        ..PretzelConfig::test()
    };
    let num_features = 256;
    let suite = ProviderModelSuite {
        spam: synthetic_model(num_features, 2, 11),
        topic: synthetic_model(64, 4, 12),
        topic_mode: CandidateMode::Full,
        virus: synthetic_model(256, 2, 13),
        virus_extractor: NGramExtractor::new(3, 256),
        config: config.clone(),
    };

    println!("\nOnline-path latency — Baseline spam rounds, {emails} emails/session");
    let widths = [10, 13, 13, 13, 9, 9];
    print_header(
        &[
            "sessions",
            "cold/email",
            "warm/email",
            "bank/email",
            "warm spd",
            "bank spd",
        ],
        &widths,
    );

    let mut rows = Vec::new();
    for &n in sessions {
        let cold = median_fleet(|| run_fleet(&suite, &config, n, emails, 0, false));
        let warm = median_fleet(|| run_fleet(&suite, &config, n, emails, emails, false));
        let bank = median_fleet(|| run_fleet(&suite, &config, n, emails, emails, true));
        let speedup = cold.as_secs_f64() / warm.as_secs_f64();
        let bank_speedup = cold.as_secs_f64() / bank.as_secs_f64();
        print_row(
            &[
                format!("{n}"),
                human_us(cold),
                human_us(warm),
                human_us(bank),
                format!("{speedup:.2}x"),
                format!("{bank_speedup:.2}x"),
            ],
            &widths,
        );
        rows.push(JsonValue::obj([
            ("sessions", JsonValue::Int(n as u64)),
            ("cold_us_per_email", micros(cold)),
            ("warm_us_per_email", micros(warm)),
            ("bank_us_per_email", micros(bank)),
            ("speedup", JsonValue::Num(speedup)),
            ("bank_speedup", JsonValue::Num(bank_speedup)),
        ]));
    }
    rows
}

/// Mean per-query online latency of encrypted-search sessions, cold vs.
/// warm pre-encrypted-response pools, at each fleet size.
fn run_search_latency(sessions: &[usize], queries: usize) -> Vec<JsonValue> {
    let config = PretzelConfig::test();
    let suite = ProviderModelSuite {
        spam: synthetic_model(64, 2, 11),
        topic: synthetic_model(64, 4, 12),
        topic_mode: CandidateMode::Full,
        virus: synthetic_model(64, 2, 13),
        virus_extractor: NGramExtractor::new(3, 64),
        config: config.clone(),
    };

    println!("\nSearch-query latency — RLWE-packed responses, {queries} queries/session");
    let widths = [10, 13, 13, 13, 9, 9];
    print_header(
        &[
            "sessions",
            "cold/query",
            "warm/query",
            "bank/query",
            "warm spd",
            "bank spd",
        ],
        &widths,
    );

    let mut rows = Vec::new();
    for &n in sessions {
        let cold = median_fleet(|| run_search_fleet(&suite, &config, n, queries, 0, false));
        let warm = median_fleet(|| run_search_fleet(&suite, &config, n, queries, queries, false));
        let bank = median_fleet(|| run_search_fleet(&suite, &config, n, queries, 0, true));
        let speedup = cold.as_secs_f64() / warm.as_secs_f64();
        let bank_speedup = cold.as_secs_f64() / bank.as_secs_f64();
        print_row(
            &[
                format!("{n}"),
                human_us(cold),
                human_us(warm),
                human_us(bank),
                format!("{speedup:.2}x"),
                format!("{bank_speedup:.2}x"),
            ],
            &widths,
        );
        rows.push(JsonValue::obj([
            ("sessions", JsonValue::Int(n as u64)),
            ("cold_us_per_query", micros(cold)),
            ("warm_us_per_query", micros(warm)),
            ("bank_us_per_query", micros(bank)),
            ("speedup", JsonValue::Num(speedup)),
            ("bank_speedup", JsonValue::Num(bank_speedup)),
        ]));
    }
    rows
}

/// Serves `n_sessions` search sessions: each uploads a small mailbox
/// (untimed — that is index-build work, not the query path), then runs
/// `queries` timed keyword-query rounds. Returns the mean wall-clock per
/// query. With `budget > 0` the mailroom workers keep the pre-encrypted
/// response pool warm; at 0 every response is encrypted inline. With
/// `bank`, the budget is ignored: a fleet bank stocks each session's
/// zero-encryption reservoir to the whole query demand before the timed
/// region, and the zero low watermark keeps its producer parked during it.
fn run_search_fleet(
    suite: &ProviderModelSuite,
    config: &PretzelConfig,
    n_sessions: usize,
    queries: usize,
    budget: usize,
    bank: bool,
) -> Duration {
    let builder = MailroomConfig::builder()
        .workers(n_sessions)
        .queue_capacity(n_sessions)
        .rng_seed(43);
    let builder = if bank {
        builder
            .bank(BankConfig::default().rng_seed(0xBA58))
            .bank_producers(1)
            .bank_watermarks(0, 100)
            .reservoir_target(KIND_ZERO_ENCRYPTIONS, queries)
    } else {
        #[allow(deprecated)] // cold/warm rows measure the legacy inline shim
        let with_budget = builder.precompute_budget(budget);
        with_budget
    };
    let mailroom = Mailroom::start(suite.clone(), builder.build());
    // Clients hold at the ready line once set up; the main thread releases
    // the start line only after the bank (if any) finishes prefilling, so
    // the timed region never overlaps production.
    let ready_line = Arc::new(Barrier::new(n_sessions + 1));
    let start_line = Arc::new(Barrier::new(n_sessions + 1));

    let clients: Vec<_> = (0..n_sessions)
        .map(|i| {
            let (provider_end, client_end) = memory_pair();
            mailroom
                .submit(provider_end)
                .expect("queue sized for fleet");
            let spec = ClientSpec::search(config.clone());
            let ready = Arc::clone(&ready_line);
            let barrier = Arc::clone(&start_line);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(2000 + i as u64);
                let mut client =
                    MailroomClient::connect(client_end, &spec, &mut rng).expect("client setup");
                for doc in 0..8u64 {
                    client
                        .index_email(
                            doc,
                            &format!("message {doc} about invoices and travel"),
                            &mut rng,
                        )
                        .expect("index");
                }
                ready.wait();
                barrier.wait();
                let start = Instant::now();
                for q in 0..queries {
                    let kw = if q % 2 == 0 { "invoices" } else { "travel" };
                    client.search_keyword(kw, &mut rng).expect("query");
                }
                let elapsed = start.elapsed();
                client.finish().expect("teardown");
                elapsed
            })
        })
        .collect();

    ready_line.wait();
    if bank {
        assert!(
            mailroom.wait_until_bank_full(Duration::from_secs(600)),
            "bank prefill must finish before the timed region"
        );
    }
    start_line.wait();

    let total: Duration = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let report = mailroom.shutdown();
    assert_eq!(report.completed(), n_sessions, "every session must finish");
    total / (n_sessions * queries) as u32
}

/// Serves `n_sessions` Baseline spam sessions with the given provider
/// precompute budget (clients warm their own pools iff `budget > 0`) and
/// returns the mean wall-clock per email of the round loops alone — setup
/// and offline precompute excluded, exactly the paper's online-path cost.
/// With `bank`, the provider side draws garblings from a fleet bank
/// prefilled to the whole run's demand instead of the per-session budget.
fn run_fleet(
    suite: &ProviderModelSuite,
    config: &PretzelConfig,
    n_sessions: usize,
    emails: usize,
    budget: usize,
    bank: bool,
) -> Duration {
    let builder = MailroomConfig::builder()
        .workers(n_sessions)
        .queue_capacity(n_sessions)
        .rng_seed(42);
    let builder = if bank {
        builder
            .bank(BankConfig::default().rng_seed(0xBA58))
            .bank_producers(1)
            .bank_watermarks(0, 100)
            .reservoir_target(KIND_GARBLINGS, n_sessions * emails)
    } else {
        #[allow(deprecated)] // cold/warm rows measure the legacy inline shim
        let with_budget = builder.precompute_budget(budget);
        with_budget
    };
    let mailroom = Mailroom::start(suite.clone(), builder.build());
    // All clients finish setup (and warm-mode precompute) before any round
    // starts, so round latencies never overlap another session's setup; the
    // main thread releases the start line only once the bank (if any) has
    // prefilled, so the timed region never overlaps production.
    let ready_line = Arc::new(Barrier::new(n_sessions + 1));
    let start_line = Arc::new(Barrier::new(n_sessions + 1));

    let clients: Vec<_> = (0..n_sessions)
        .map(|i| {
            let (provider_end, client_end) = memory_pair();
            mailroom
                .submit(provider_end)
                .expect("queue sized for fleet");
            let spec = ClientSpec::spam(config.clone()).with_variant(AheVariant::Baseline);
            let ready = Arc::clone(&ready_line);
            let barrier = Arc::clone(&start_line);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let mut client =
                    MailroomClient::connect(client_end, &spec, &mut rng).expect("client setup");
                if budget > 0 {
                    client.precompute(emails, &mut rng);
                }
                let email = SparseVector::from_pairs(
                    (0..20)
                        .map(|_| (rng.gen_range(0..256), rng.gen_range(1..4u32)))
                        .collect(),
                );
                ready.wait();
                barrier.wait();
                let start = Instant::now();
                for _ in 0..emails {
                    client.classify_spam(&email, &mut rng).expect("classify");
                }
                let elapsed = start.elapsed();
                client.finish().expect("teardown");
                elapsed
            })
        })
        .collect();

    ready_line.wait();
    if bank {
        assert!(
            mailroom.wait_until_bank_full(Duration::from_secs(600)),
            "bank prefill must finish before the timed region"
        );
    }
    start_line.wait();

    let total: Duration = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let report = mailroom.shutdown();
    assert_eq!(report.completed(), n_sessions, "every session must finish");
    total / (n_sessions * emails) as u32
}

/// Runs a fleet measurement three times and returns the median. A single
/// fleet run heavily oversubscribes the cores (one thread per session), so
/// its wall-clock is at the mercy of the scheduler — at 64 sessions the
/// run-to-run spread of a lone sample exceeds the cold/warm gap itself.
fn median_fleet(mut run: impl FnMut() -> Duration) -> Duration {
    let mut samples = [run(), run(), run()];
    samples.sort();
    samples[1]
}

/// Times `f` and returns (its result, mean duration per item over `iters`).
fn time_over<R>(iters: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed() / iters.max(1) as u32)
}

fn micros(d: Duration) -> JsonValue {
    JsonValue::Num(d.as_secs_f64() * 1e6)
}
