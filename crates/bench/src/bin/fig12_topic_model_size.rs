//! Figure 12: size of the topic-extraction model at the client (before
//! feature selection), for Non-encrypted, Baseline and Pretzel, with B = 2048
//! and N ∈ {20K, 100K}.
//!
//! Pretzel's topic model is *larger* than the Baseline's (the opposite of the
//! spam case) because B ≥ p removes the across-row packing advantage while
//! XPIR-BV ciphertexts have a higher expansion factor, and the client
//! additionally stores the public candidate model (§6.2).

use pretzel_bench::{human_bytes, parse_scale, print_header, print_row};
use pretzel_core::{PretzelConfig, Scale};
use pretzel_sdp::paillier_pack;
use pretzel_sdp::rlwe_pack::{model_ciphertext_count, Packing};

fn main() {
    let scale = parse_scale();
    let config = PretzelConfig::for_scale(scale);
    let (n_values, b) = match scale {
        Scale::Test => (vec![5_000usize, 20_000], 256usize),
        Scale::Paper => (vec![20_000, 100_000], 2048),
    };
    let xpir_slots = config.rlwe_degree;
    let xpir_ct_bytes = config.rlwe_params().ciphertext_bytes();
    let paillier_ct_bytes = 2 * config.paillier_bits / 8;
    let paillier_slots = ((config.paillier_bits - 1) / config.paillier_slot_bits as usize).max(1);

    println!("Figure 12: topic model size at the client (B = {b}, scale {scale:?})\n");
    let mut header = vec!["system".to_string()];
    for &n in &n_values {
        header.push(format!("N={n}"));
    }
    let widths = vec![18usize, 14, 14];
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    let mut rows: Vec<Vec<String>> = vec![
        vec!["Non-encrypted".into()],
        vec!["Baseline".into()],
        vec!["Pretzel".into()],
    ];
    for &n in &n_values {
        let rows_with_bias = n + 1;
        // Non-encrypted: float weights, matching the paper's accounting of the
        // plaintext model (~4.4 bytes per parameter at N=20K, B=2048 -> 144 MB
        // uses 32-bit floats + indexing overhead; we report 4 bytes/param).
        rows[0].push(human_bytes((rows_with_bias * b * 4) as f64));
        let baseline_cts = paillier_pack::model_ciphertext_count(rows_with_bias, b, paillier_slots);
        rows[1].push(human_bytes((baseline_cts * paillier_ct_bytes) as f64));
        // Pretzel stores the encrypted proprietary model plus the public
        // candidate model (plaintext, same shape).
        let pretzel_cts = model_ciphertext_count(rows_with_bias, b, xpir_slots, Packing::AcrossRow);
        let public_part = (rows_with_bias * b * 4) as f64;
        rows[2].push(human_bytes(
            pretzel_cts as f64 * xpir_ct_bytes as f64 + public_part,
        ));
    }
    for row in rows {
        print_row(&row, &widths);
    }
    println!("\nPaper shape (B=2048): Non-encrypted 144 MB / 769 MB; Baseline 288 MB / 1.5 GB;");
    println!("Pretzel 721 MB / 3.8 GB (larger than Baseline by ~2.5x: bigger ciphertexts + public part).");
    println!("Feature selection (Figure 13) reduces these by ~4x at the chosen operating point.");
}
