//! Figure 9: spam-filtering accuracy, precision and recall for GR-NB, LR,
//! SVM and the original Graham scheme on the three (synthetic stand-in)
//! spam corpora.

use pretzel_bench::{parse_scale, print_header, print_row};
use pretzel_classifiers::lr::BinaryLrTrainer;
use pretzel_classifiers::nb::{GrNbTrainer, GrahamTrainer};
use pretzel_classifiers::svm::BinarySvmTrainer;
use pretzel_classifiers::{precision_recall, Trainer};
use pretzel_core::Scale;
use pretzel_datasets::{enron_like, gmail_like, ling_spam_like};

fn main() {
    let scale = parse_scale();
    let corpus_scale = match scale {
        Scale::Test => 0.08,
        Scale::Paper => 1.0,
    };
    // enron-like is ~33k documents at paper scale, so it gets an extra 0.3x.
    let corpora = vec![
        ling_spam_like(corpus_scale).generate(),
        enron_like(corpus_scale * 0.3).generate(),
        gmail_like(corpus_scale).generate(),
    ];

    let trainers: Vec<(&str, Box<dyn Trainer>)> = vec![
        ("GR-NB", Box::new(GrNbTrainer::default())),
        ("LR", Box::new(BinaryLrTrainer::default())),
        ("SVM", Box::new(BinarySvmTrainer::default())),
        ("GR", Box::new(GrahamTrainer::default())),
    ];

    println!("Figure 9: spam filtering accuracy / precision / recall (synthetic stand-in corpora, scale {scale:?})\n");
    let widths = [8, 30, 30, 30];
    print_header(
        &["algo", &corpora[0].name, &corpora[1].name, &corpora[2].name],
        &widths,
    );
    for (name, trainer) in &trainers {
        let mut row = vec![name.to_string()];
        for corpus in &corpora {
            let (train, test) = corpus.train_test_split(0.7, 42);
            let model = trainer.train(&train, corpus.num_features, 2);
            let (acc, prec, rec) = precision_recall(&model, &test);
            row.push(format!("acc {acc:.1}  prec {prec:.1}  rec {rec:.1}"));
        }
        print_row(&row, &widths);
    }
    println!("\nPaper shape: all algorithms in the high 90s on all three corpora");
    println!("(e.g. GR-NB on Gmail: 98.1 / 99.7 / 95.2).");
}
