//! Mailroom serving throughput: aggregate emails/sec and bytes/email as the
//! number of concurrent client sessions grows.
//!
//! This is the serving-layer companion to the paper's §6.1 per-email costs:
//! instead of one client/provider pair, a `pretzel_server::Mailroom` with a
//! worker pool serves 1, 4, 16 and 64 concurrent sessions over in-memory
//! channels, and we measure wall-clock throughput from first submission to
//! last teardown (setup included — that is what a provider actually pays per
//! fresh session).
//!
//! `--workload` selects what the fleet runs: `spam` (the default dot-product
//! classification workload), `search` (encrypted keyword search — index
//! uploads and RLWE-packed query responses, a very different cost profile),
//! or `mixed` (sessions split evenly across spam, topic, virus and search —
//! the heterogeneous fleet a real provider serves).
//!
//! On a multi-core host the per-session work is independent, so aggregate
//! throughput should scale with min(sessions, workers, cores); on a
//! single-core host the columns stay flat — the table prints the measured
//! speedup either way.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p pretzel_bench --bin throughput_mailroom
//! cargo run --release -p pretzel_bench --bin throughput_mailroom -- \
//!     --scale paper --sessions 1,4,16,64 --emails 8 --workers 16
//! cargo run --release -p pretzel_bench --bin throughput_mailroom -- \
//!     --workload search --json
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pretzel_bench::{
    arg_value, human_bytes, maybe_write_bench_json, print_header, print_row, synthetic_model,
    JsonValue,
};
use pretzel_classifiers::{NGramExtractor, SparseVector};
use pretzel_core::topic::CandidateMode;
use pretzel_core::{PretzelConfig, ProviderModelSuite, Scale};
use pretzel_server::{ClientSpec, Mailroom, MailroomClient, MailroomConfig};
use pretzel_transport::memory_pair;

/// Which session mix the fleet runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Workload {
    /// Every session classifies spam (dot products + one Yao round).
    Spam,
    /// Every session runs encrypted keyword search (index + RLWE queries).
    Search,
    /// Sessions split round-robin across spam, topic, virus and search.
    Mixed,
}

impl Workload {
    fn parse(s: &str) -> Workload {
        match s {
            "spam" => Workload::Spam,
            "search" => Workload::Search,
            "mixed" => Workload::Mixed,
            // Hard-fail like the other flag parsers: a typo must not let a
            // script record spam numbers as a search run.
            other => panic!("unknown workload {other:?} (--workload takes spam|search|mixed)"),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Workload::Spam => "spam",
            Workload::Search => "search",
            Workload::Mixed => "mixed",
        }
    }
}

fn main() {
    let scale = pretzel_bench::parse_scale();
    let workload = arg_value("--workload")
        .map(|v| Workload::parse(&v))
        .unwrap_or(Workload::Spam);
    let sessions: Vec<usize> = arg_value("--sessions")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sessions takes a,b,c"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 4, 16, 64]);
    let emails_per_session: usize = arg_value("--emails")
        .map(|v| v.parse().expect("--emails takes a number"))
        .unwrap_or(8);
    let workers: usize = arg_value("--workers")
        .map(|v| v.parse().expect("--workers takes a number"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let config = PretzelConfig::for_scale(scale);
    // Model shape drives every cost; the spam protocol is the workload
    // (two classes, as in Figures 7-9).
    let num_features = match scale {
        Scale::Test => 256,
        Scale::Paper => 4096,
    };
    let suite = ProviderModelSuite {
        spam: synthetic_model(num_features, 2, 11),
        topic: synthetic_model(64, 4, 12),
        topic_mode: CandidateMode::Full,
        virus: synthetic_model(256, 2, 13),
        virus_extractor: NGramExtractor::new(3, 256),
        config: config.clone(),
    };

    println!(
        "Mailroom throughput — {} sessions, {} features, {} emails/session, {} workers, scale {:?}",
        workload.name(),
        num_features,
        emails_per_session,
        workers,
        scale
    );
    println!(
        "(host reports {} hardware threads)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let widths = [10, 8, 10, 12, 12, 12];
    print_header(
        &[
            "sessions",
            "emails",
            "wall (s)",
            "emails/sec",
            "speedup",
            "bytes/email",
        ],
        &widths,
    );

    let mut baseline_throughput: Option<f64> = None;
    let mut json_rows = Vec::new();
    for &n_sessions in &sessions {
        let (throughput, wall, bytes_per_email, total_emails) = run_fleet(
            &suite,
            &config,
            workload,
            n_sessions,
            emails_per_session,
            workers,
            num_features,
        );
        let speedup = match baseline_throughput {
            Some(base) => format!("{:.2}x", throughput / base),
            None => {
                baseline_throughput = Some(throughput);
                "1.00x".to_string()
            }
        };
        print_row(
            &[
                format!("{n_sessions}"),
                format!("{total_emails}"),
                format!("{wall:.2}"),
                format!("{throughput:.1}"),
                speedup,
                human_bytes(bytes_per_email),
            ],
            &widths,
        );
        json_rows.push(JsonValue::obj([
            ("sessions", JsonValue::Int(n_sessions as u64)),
            ("emails", JsonValue::Int(total_emails)),
            ("wall_s", JsonValue::Num(wall)),
            ("emails_per_sec", JsonValue::Num(throughput)),
            ("bytes_per_email", JsonValue::Num(bytes_per_email)),
        ]));
    }
    maybe_write_bench_json(
        "throughput_mailroom",
        &JsonValue::obj([
            ("bench", JsonValue::Str("throughput_mailroom".into())),
            ("workload", JsonValue::Str(workload.name().into())),
            ("scale", JsonValue::Str(format!("{scale:?}"))),
            ("workers", JsonValue::Int(workers as u64)),
            (
                "emails_per_session",
                JsonValue::Int(emails_per_session as u64),
            ),
            ("rows", JsonValue::Arr(json_rows)),
        ]),
    );
    println!(
        "\nThroughput counts wall-clock from first submission to last teardown;\n\
         bytes/email is fleet payload traffic divided by emails served (setup\n\
         transfers amortized across each session's emails)."
    );
}

/// Serves `n_sessions` concurrent sessions of the selected workload and
/// returns (rounds/sec, wall seconds, bytes/round, total rounds).
fn run_fleet(
    suite: &ProviderModelSuite,
    config: &PretzelConfig,
    workload: Workload,
    n_sessions: usize,
    emails_per_session: usize,
    workers: usize,
    num_features: usize,
) -> (f64, f64, f64, u64) {
    let mailroom = Mailroom::start(
        suite.clone(),
        MailroomConfig {
            workers,
            queue_capacity: n_sessions.max(1),
            rng_seed: 42,
            ..MailroomConfig::default()
        },
    );

    let start = Instant::now();
    let clients: Vec<_> = (0..n_sessions)
        .map(|i| {
            let (provider_end, client_end) = memory_pair();
            mailroom
                .submit(provider_end)
                .expect("queue sized for the fleet");
            let config = config.clone();
            let emails = emails_per_session;
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                // Mixed fleets hand session i the (i mod 4)-th kind; the
                // single-workload fleets are uniform.
                let kind = match workload {
                    Workload::Spam => 0,
                    Workload::Search => 3,
                    Workload::Mixed => i % 4,
                };
                match kind {
                    0 => {
                        let spec = ClientSpec::spam(config);
                        let mut client = MailroomClient::connect(client_end, &spec, &mut rng)
                            .expect("client setup");
                        for _ in 0..emails {
                            let email = random_email(&mut rng, num_features);
                            client.classify_spam(&email, &mut rng).expect("classify");
                        }
                        client.finish().expect("teardown");
                    }
                    1 => {
                        let spec = ClientSpec::topic(config, CandidateMode::Full, None);
                        let mut client = MailroomClient::connect(client_end, &spec, &mut rng)
                            .expect("client setup");
                        for _ in 0..emails {
                            let email = random_email(&mut rng, 64);
                            client.extract_topic(&email, &mut rng).expect("extract");
                        }
                        client.finish().expect("teardown");
                    }
                    2 => {
                        let spec = ClientSpec::virus(config);
                        let mut client = MailroomClient::connect(client_end, &spec, &mut rng)
                            .expect("client setup");
                        for e in 0..emails {
                            let attachment: Vec<u8> =
                                (0..64).map(|b| ((b * 7 + e + i) % 251) as u8).collect();
                            client.scan_attachment(&attachment, &mut rng).expect("scan");
                        }
                        client.finish().expect("teardown");
                    }
                    _ => {
                        let spec = ClientSpec::search(config);
                        let mut client = MailroomClient::connect(client_end, &spec, &mut rng)
                            .expect("client setup");
                        for e in 0..emails {
                            // Alternate index uploads and keyword queries so a
                            // "round" covers both halves of the workload.
                            if e % 2 == 0 {
                                client
                                    .index_email(
                                        e as u64,
                                        &format!("message {e} about invoices and travel"),
                                        &mut rng,
                                    )
                                    .expect("index");
                            } else {
                                client.search_keyword("invoices", &mut rng).expect("query");
                            }
                        }
                        client.finish().expect("teardown");
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let wall = start.elapsed().as_secs_f64();

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), n_sessions, "every session must finish");
    let throughput = report.emails_total as f64 / wall;
    (
        throughput,
        wall,
        report.bytes_per_email(),
        report.emails_total,
    )
}

/// A synthetic email: ~20 distinct token indices with small counts.
fn random_email(rng: &mut StdRng, num_features: usize) -> SparseVector {
    let pairs: Vec<(usize, u32)> = (0..20)
        .map(|_| (rng.gen_range(0..num_features), rng.gen_range(1..4u32)))
        .collect();
    SparseVector::from_pairs(pairs)
}
