//! Mailroom serving throughput: aggregate emails/sec and bytes/email as the
//! number of concurrent client sessions grows.
//!
//! This is the serving-layer companion to the paper's §6.1 per-email costs:
//! instead of one client/provider pair, a `pretzel_server::Mailroom` with a
//! worker pool serves 1, 4, 16 and 64 concurrent sessions over in-memory
//! channels, and we measure wall-clock throughput from first submission to
//! last teardown (setup included — that is what a provider actually pays per
//! fresh session).
//!
//! `--workload` selects what the fleet runs: `spam` (the default dot-product
//! classification workload), `search` (encrypted keyword search — index
//! uploads and RLWE-packed query responses, a very different cost profile),
//! or `mixed` (sessions split evenly across spam, topic, virus and search —
//! the heterogeneous fleet a real provider serves).
//!
//! `--batch N` measures **batched rounds**: each session submits its emails
//! in coalesced N-round batches (`MailroomClient::process_batch` — one
//! frame of blinded ciphertexts, one batched Yao/OT exchange or one
//! coalesced search exchange) instead of N sequential rounds. Every fleet
//! size then runs twice, sequential then batched, and the table/JSON report
//! the batch speedup. The JSON record lands in
//! `BENCH_throughput_mailroom_batch.json` so the sequential record is not
//! overwritten.
//!
//! `--repeat K` runs every fleet measurement K times and reports the
//! nearest-rank **median** (the headline number), best-of-K, and the
//! min–max spread — the same statistical convention as `bench_scenarios`
//! and `docs/BENCHMARKS.md`; earlier versions silently kept the fastest
//! run.
//!
//! On a multi-core host the per-session work is independent, so aggregate
//! throughput should scale with min(sessions, workers, cores); on a
//! single-core host the columns stay flat — the table prints the measured
//! speedup either way.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p pretzel_bench --bin throughput_mailroom
//! cargo run --release -p pretzel_bench --bin throughput_mailroom -- \
//!     --scale paper --sessions 1,4,16,64 --emails 8 --workers 16
//! cargo run --release -p pretzel_bench --bin throughput_mailroom -- \
//!     --workload mixed --batch 8 --json
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pretzel_bench::{
    arg_value, human_bytes, maybe_write_bench_json, print_header, print_row, synthetic_model,
    JsonValue,
};
use pretzel_classifiers::{NGramExtractor, SparseVector};
use pretzel_core::session::EmailPayload;
use pretzel_core::topic::CandidateMode;
use pretzel_core::{PretzelConfig, ProviderModelSuite, Scale};
use pretzel_scenarios::Summary;
use pretzel_server::{
    serve_tcp_sessions, ClientSpec, ClientSpecBuilder, Mailroom, MailroomClient, MailroomConfig,
};
use pretzel_transport::{memory_pair, TcpAcceptor, TcpChannel};

/// Which session mix the fleet runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Workload {
    /// Every session classifies spam (dot products + one Yao round).
    Spam,
    /// Every session runs encrypted keyword search (index + RLWE queries).
    Search,
    /// Sessions split round-robin across spam, topic, virus and search.
    Mixed,
}

impl Workload {
    fn parse(s: &str) -> Workload {
        match s {
            "spam" => Workload::Spam,
            "search" => Workload::Search,
            "mixed" => Workload::Mixed,
            // Hard-fail like the other flag parsers: a typo must not let a
            // script record spam numbers as a search run.
            other => panic!("unknown workload {other:?} (--workload takes spam|search|mixed)"),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Workload::Spam => "spam",
            Workload::Search => "search",
            Workload::Mixed => "mixed",
        }
    }
}

fn main() {
    let scale = pretzel_bench::parse_scale();
    let workload = arg_value("--workload")
        .map(|v| Workload::parse(&v))
        .unwrap_or(Workload::Spam);
    let sessions: Vec<usize> = arg_value("--sessions")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sessions takes a,b,c"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 4, 16, 64]);
    let emails_per_session: usize = arg_value("--emails")
        .map(|v| v.parse().expect("--emails takes a number"))
        .unwrap_or(8);
    let batch: usize = arg_value("--batch")
        .map(|v| v.parse().expect("--batch takes a number"))
        .unwrap_or(1);
    assert!(batch >= 1, "--batch takes a round count >= 1");
    let repeat: usize = arg_value("--repeat")
        .map(|v| v.parse().expect("--repeat takes a number"))
        .unwrap_or(1);
    assert!(repeat >= 1, "--repeat takes a run count >= 1");
    let tcp = std::env::args().any(|a| a == "--tcp");
    let workers: usize = arg_value("--workers")
        .map(|v| v.parse().expect("--workers takes a number"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let config = PretzelConfig::for_scale(scale);
    // Model shape drives every cost; the spam protocol is the workload
    // (two classes, as in Figures 7-9).
    let num_features = match scale {
        Scale::Test => 256,
        Scale::Paper => 4096,
    };
    let suite = ProviderModelSuite {
        spam: synthetic_model(num_features, 2, 11),
        topic: synthetic_model(64, 4, 12),
        topic_mode: CandidateMode::Full,
        virus: synthetic_model(256, 2, 13),
        virus_extractor: NGramExtractor::new(3, 256),
        config: config.clone(),
    };

    println!(
        "Mailroom throughput — {} sessions, {} features, {} emails/session, {} workers, batch {}, scale {:?}",
        workload.name(),
        num_features,
        emails_per_session,
        workers,
        batch,
        scale
    );
    println!(
        "(host reports {} hardware threads)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    if batch > 1 {
        run_batch_comparison(
            &suite,
            &config,
            scale,
            workload,
            &sessions,
            emails_per_session,
            batch,
            repeat,
            workers,
            num_features,
            tcp,
        );
    } else {
        run_sequential_table(
            &suite,
            &config,
            scale,
            workload,
            &sessions,
            emails_per_session,
            repeat,
            workers,
            num_features,
            tcp,
        );
    }
    println!(
        "\nThroughput counts wall-clock from first submission to last teardown;\n\
         bytes/email is fleet payload traffic divided by emails served (setup\n\
         transfers amortized across each session's emails)."
    );
}

/// The classic one-row-per-fleet-size table (batch size 1).
#[allow(clippy::too_many_arguments)]
fn run_sequential_table(
    suite: &ProviderModelSuite,
    config: &PretzelConfig,
    scale: Scale,
    workload: Workload,
    sessions: &[usize],
    emails_per_session: usize,
    repeat: usize,
    workers: usize,
    num_features: usize,
    tcp: bool,
) {
    let widths = [10, 8, 10, 12, 12, 10, 12];
    print_header(
        &[
            "sessions",
            "emails",
            "wall (s)",
            "med em/s",
            "best em/s",
            "spread",
            "bytes/email",
        ],
        &widths,
    );

    let mut baseline_throughput: Option<f64> = None;
    let mut json_rows = Vec::new();
    for &n_sessions in sessions {
        let runs = repeated(repeat, || {
            run_fleet(
                suite,
                config,
                workload,
                n_sessions,
                emails_per_session,
                1,
                workers,
                num_features,
                tcp,
            )
        });
        let run = &runs.median;
        baseline_throughput.get_or_insert(runs.summary.median);
        print_row(
            &[
                format!("{n_sessions}"),
                format!("{}", run.total_emails),
                format!("{:.2}", run.wall),
                format!("{:.1}", runs.summary.median),
                format!("{:.1}", runs.summary.max),
                format!("{:.1}%", runs.summary.spread_pct),
                human_bytes(run.bytes_per_email),
            ],
            &widths,
        );
        json_rows.push(JsonValue::obj([
            ("sessions", JsonValue::Int(n_sessions as u64)),
            ("emails", JsonValue::Int(run.total_emails)),
            ("wall_s", JsonValue::Num(run.wall)),
            ("emails_per_sec", JsonValue::Num(runs.summary.median)),
            ("emails_per_sec_best", JsonValue::Num(runs.summary.max)),
            (
                "emails_per_sec_spread_pct",
                JsonValue::Num(runs.summary.spread_pct),
            ),
            ("bytes_per_email", JsonValue::Num(run.bytes_per_email)),
        ]));
    }
    if let Some(base) = baseline_throughput {
        let last = json_rows
            .last()
            .and_then(|row| row.get("emails_per_sec"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(base);
        println!(
            "\nmedian-throughput scaling vs 1st row: {:.2}x",
            last / base
        );
    }
    maybe_write_bench_json(
        "throughput_mailroom",
        &JsonValue::obj([
            ("bench", JsonValue::Str("throughput_mailroom".into())),
            ("workload", JsonValue::Str(workload.name().into())),
            ("scale", JsonValue::Str(format!("{scale:?}"))),
            ("workers", JsonValue::Int(workers as u64)),
            ("repeat", JsonValue::Int(repeat as u64)),
            (
                "transport",
                JsonValue::Str(if tcp { "tcp" } else { "memory" }.into()),
            ),
            (
                "emails_per_session",
                JsonValue::Int(emails_per_session as u64),
            ),
            ("rows", JsonValue::Arr(json_rows)),
        ]),
    );
}

/// Batched-round mode: every fleet size runs sequential (batch 1) then
/// batched (batch N), and the table reports the batch speedup.
#[allow(clippy::too_many_arguments)]
fn run_batch_comparison(
    suite: &ProviderModelSuite,
    config: &PretzelConfig,
    scale: Scale,
    workload: Workload,
    sessions: &[usize],
    emails_per_session: usize,
    batch: usize,
    repeat: usize,
    workers: usize,
    num_features: usize,
    tcp: bool,
) {
    let widths = [10, 8, 14, 14, 12, 10, 12];
    print_header(
        &[
            "sessions",
            "emails",
            "seq em/s",
            "batch em/s",
            "speedup",
            "spread",
            "bytes/email",
        ],
        &widths,
    );

    let mut json_rows = Vec::new();
    for &n_sessions in sessions {
        let seq = repeated(repeat, || {
            run_fleet(
                suite,
                config,
                workload,
                n_sessions,
                emails_per_session,
                1,
                workers,
                num_features,
                tcp,
            )
        });
        let batched = repeated(repeat, || {
            run_fleet(
                suite,
                config,
                workload,
                n_sessions,
                emails_per_session,
                batch,
                workers,
                num_features,
                tcp,
            )
        });
        // Median-vs-median: the speedup claim inherits the robustness of
        // its inputs instead of comparing two lucky runs.
        let speedup = batched.summary.median / seq.summary.median;
        let spread = batched.summary.spread_pct.max(seq.summary.spread_pct);
        print_row(
            &[
                format!("{n_sessions}"),
                format!("{}", batched.median.total_emails),
                format!("{:.1}", seq.summary.median),
                format!("{:.1}", batched.summary.median),
                format!("{speedup:.2}x"),
                format!("{spread:.1}%"),
                human_bytes(batched.median.bytes_per_email),
            ],
            &widths,
        );
        json_rows.push(JsonValue::obj([
            ("sessions", JsonValue::Int(n_sessions as u64)),
            ("emails", JsonValue::Int(batched.median.total_emails)),
            ("seq_emails_per_sec", JsonValue::Num(seq.summary.median)),
            ("seq_emails_per_sec_best", JsonValue::Num(seq.summary.max)),
            (
                "seq_emails_per_sec_spread_pct",
                JsonValue::Num(seq.summary.spread_pct),
            ),
            (
                "batch_emails_per_sec",
                JsonValue::Num(batched.summary.median),
            ),
            (
                "batch_emails_per_sec_best",
                JsonValue::Num(batched.summary.max),
            ),
            (
                "batch_emails_per_sec_spread_pct",
                JsonValue::Num(batched.summary.spread_pct),
            ),
            ("batch_speedup", JsonValue::Num(speedup)),
            (
                "seq_bytes_per_email",
                JsonValue::Num(seq.median.bytes_per_email),
            ),
            (
                "batch_bytes_per_email",
                JsonValue::Num(batched.median.bytes_per_email),
            ),
        ]));
    }
    maybe_write_bench_json(
        "throughput_mailroom_batch",
        &JsonValue::obj([
            ("bench", JsonValue::Str("throughput_mailroom_batch".into())),
            ("workload", JsonValue::Str(workload.name().into())),
            ("scale", JsonValue::Str(format!("{scale:?}"))),
            ("workers", JsonValue::Int(workers as u64)),
            ("batch", JsonValue::Int(batch as u64)),
            ("repeat", JsonValue::Int(repeat as u64)),
            (
                "transport",
                JsonValue::Str(if tcp { "tcp" } else { "memory" }.into()),
            ),
            (
                "emails_per_session",
                JsonValue::Int(emails_per_session as u64),
            ),
            ("rows", JsonValue::Arr(json_rows)),
        ]),
    );
}

/// Repeats a noisy fleet measurement and summarizes **all** runs instead of
/// silently keeping the fastest: the headline number is the run whose
/// throughput is the nearest-rank median, with best-of-K and the min–max
/// spread reported alongside (matching the statistical convention of
/// `bench_scenarios` / `BENCH_scenarios.json`).
struct RepeatedRuns {
    /// The run whose throughput equals the nearest-rank median.
    median: FleetRun,
    /// Statistics over the per-run throughput samples.
    summary: Summary,
}

fn repeated(repeat: usize, mut run: impl FnMut() -> FleetRun) -> RepeatedRuns {
    let runs: Vec<FleetRun> = (0..repeat).map(|_| run()).collect();
    let samples: Vec<f64> = runs.iter().map(|r| r.throughput).collect();
    let summary = Summary::from_samples(&samples);
    let median = runs
        .into_iter()
        .find(|r| r.throughput == summary.median)
        .expect("the nearest-rank median is one of the samples");
    RepeatedRuns { median, summary }
}

/// One fleet run's measurements.
struct FleetRun {
    throughput: f64,
    wall: f64,
    bytes_per_email: f64,
    total_emails: u64,
}

/// The per-session payload script for one client of the fleet.
fn session_payloads(
    config: PretzelConfig,
    workload: Workload,
    session_index: usize,
    emails: usize,
    num_features: usize,
    rng: &mut StdRng,
) -> (ClientSpec, Vec<EmailPayload>) {
    // Mixed fleets hand session i the (i mod 4)-th kind; the
    // single-workload fleets are uniform.
    let kind = match workload {
        Workload::Spam => 0,
        Workload::Search => 3,
        Workload::Mixed => session_index % 4,
    };
    match kind {
        0 => (
            ClientSpec::spam(config),
            (0..emails)
                .map(|_| EmailPayload::Tokens(random_email(rng, num_features)))
                .collect(),
        ),
        1 => (
            ClientSpecBuilder::topic(config)
                .topic_mode(CandidateMode::Full)
                .build(),
            (0..emails)
                .map(|_| EmailPayload::Tokens(random_email(rng, 64)))
                .collect(),
        ),
        2 => (
            ClientSpec::virus(config),
            (0..emails)
                .map(|e| {
                    EmailPayload::Attachment(
                        (0..64)
                            .map(|b| ((b * 7 + e + session_index) % 251) as u8)
                            .collect(),
                    )
                })
                .collect(),
        ),
        _ => (
            ClientSpec::search(config),
            (0..emails)
                .map(|e| {
                    // Alternate index uploads and keyword queries so a
                    // "round" covers both halves of the workload. Bodies
                    // carry mostly-unique terms so a query's posting list
                    // stays small and round cost stays flat as the mailbox
                    // grows (a shared term would make every query scan the
                    // whole session's uploads).
                    if e % 2 == 0 {
                        EmailPayload::SearchIndex {
                            doc_id: e as u64,
                            body: format!("message{e} invoice{e} travel{}", e / 8),
                        }
                    } else {
                        EmailPayload::SearchQuery(format!("invoice{}", e - 1))
                    }
                })
                .collect(),
        ),
    }
}

/// Drives one client session end to end over any transport.
fn drive_session<C: pretzel_transport::Channel>(
    channel: C,
    config: PretzelConfig,
    workload: Workload,
    session_index: usize,
    emails: usize,
    batch: usize,
    num_features: usize,
) {
    let mut rng = StdRng::seed_from_u64(1000 + session_index as u64);
    let (spec, payloads) = session_payloads(
        config,
        workload,
        session_index,
        emails,
        num_features,
        &mut rng,
    );
    let mut client = MailroomClient::connect(channel, &spec, &mut rng).expect("client setup");
    if batch <= 1 {
        for payload in &payloads {
            client.process(payload, &mut rng).expect("round");
        }
    } else {
        for chunk in payloads.chunks(batch) {
            client.process_batch(chunk, &mut rng).expect("batch round");
        }
    }
    client.finish().expect("teardown");
}

/// Serves `n_sessions` concurrent sessions of the selected workload, each
/// submitting its emails in `batch`-round chunks (1 = sequential rounds),
/// over in-memory channels or framed loopback TCP (`--tcp` — every frame
/// then costs real syscalls, the transport a deployed mailroom pays).
#[allow(clippy::too_many_arguments)]
fn run_fleet(
    suite: &ProviderModelSuite,
    config: &PretzelConfig,
    workload: Workload,
    n_sessions: usize,
    emails_per_session: usize,
    batch: usize,
    workers: usize,
    num_features: usize,
    tcp: bool,
) -> FleetRun {
    let mailroom = Mailroom::start(
        suite.clone(),
        MailroomConfig {
            workers,
            queue_capacity: n_sessions.max(1),
            rng_seed: 42,
            ..MailroomConfig::default()
        },
    );

    let start = Instant::now();
    if tcp {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback");
        let addr = acceptor.local_addr().expect("local addr");
        std::thread::scope(|scope| {
            let mailroom = &mailroom;
            let acceptor = &acceptor;
            scope.spawn(move || {
                let accepted = serve_tcp_sessions(mailroom, acceptor, n_sessions);
                assert_eq!(accepted, n_sessions, "every connection must be accepted");
            });
            let clients: Vec<_> = (0..n_sessions)
                .map(|i| {
                    let config = config.clone();
                    scope.spawn(move || {
                        let channel = TcpChannel::connect(addr).expect("connect loopback");
                        drive_session(
                            channel,
                            config,
                            workload,
                            i,
                            emails_per_session,
                            batch,
                            num_features,
                        );
                    })
                })
                .collect();
            for c in clients {
                c.join().expect("client thread");
            }
        });
    } else {
        let clients: Vec<_> = (0..n_sessions)
            .map(|i| {
                let (provider_end, client_end) = memory_pair();
                mailroom
                    .submit(provider_end)
                    .expect("queue sized for the fleet");
                let config = config.clone();
                let emails = emails_per_session;
                std::thread::spawn(move || {
                    drive_session(client_end, config, workload, i, emails, batch, num_features);
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let report = mailroom.shutdown();
    assert_eq!(report.completed(), n_sessions, "every session must finish");
    FleetRun {
        throughput: report.emails_total as f64 / wall,
        wall,
        bytes_per_email: report.bytes_per_email(),
        total_emails: report.emails_total,
    }
}

/// A synthetic email: ~20 distinct token indices with small counts.
fn random_email(rng: &mut StdRng, num_features: usize) -> SparseVector {
    let pairs: Vec<(usize, u32)> = (0..20)
        .map(|_| (rng.gen_range(0..num_features), rng.gen_range(1..4u32)))
        .collect();
    SparseVector::from_pairs(pairs)
}
