//! Figure 10: provider-side CPU time per email for topic extraction, varying
//! the number of categories B and the number of candidate topics B′
//! (B′ = B means decomposed classification is disabled).

use std::time::Duration;

use pretzel_bench::{
    human_us, parse_scale, print_header, print_row, synthetic_model, time, time_avg,
};
use pretzel_classifiers::SparseVector;
use pretzel_core::spam::AheVariant;
use pretzel_core::topic::{CandidateMode, TopicClient, TopicProvider};
use pretzel_core::{NoPrivProvider, PretzelConfig, Scale};
use pretzel_datasets::synthetic_features;
use pretzel_transport::memory_pair;

struct Point {
    name: String,
    per_b: Vec<String>,
}

/// Runs the private topic protocol and times the provider's `process_email`.
fn private_provider_cpu(
    variant: AheVariant,
    mode: CandidateMode,
    config: &PretzelConfig,
    model_features: usize,
    categories: usize,
    email_features: usize,
    emails: usize,
) -> Duration {
    let model = synthetic_model(model_features, categories, 11);
    let candidate_model = synthetic_model(model_features, categories, 12);
    let features: Vec<SparseVector> = (0..emails)
        .map(|i| synthetic_features(model_features, email_features, 15, 100 + i as u64))
        .collect();
    let features_client = features.clone();
    let config_client = config.clone();

    let (mut provider_chan, mut client_chan) = memory_pair();
    let handle = std::thread::spawn(move || {
        let mut rng = rand::thread_rng();
        let mut client = TopicClient::setup(
            &mut client_chan,
            &config_client,
            variant,
            mode,
            Some(candidate_model),
            &mut rng,
        )
        .unwrap();
        for f in &features_client {
            client.extract(&mut client_chan, f, &mut rng).unwrap();
        }
    });

    let mut rng = rand::thread_rng();
    let mut provider =
        TopicProvider::setup(&mut provider_chan, &model, config, variant, mode, &mut rng).unwrap();
    let mut total = Duration::ZERO;
    for _ in 0..emails {
        let (_, d) = time(|| provider.process_email(&mut provider_chan).unwrap());
        total += d;
    }
    handle.join().unwrap();
    total / emails as u32
}

fn main() {
    let scale = parse_scale();
    let config = PretzelConfig::for_scale(scale);
    // N = 100K and L = 692 in the paper; provider CPU is independent of both
    // for the private systems, so the small scale shrinks N.
    let (model_features, b_values, emails) = match scale {
        Scale::Test => (2_000usize, vec![16usize, 64, 128], 2usize),
        Scale::Paper => (100_000, vec![128, 512, 2048], 5),
    };
    let email_features = 692.min(model_features);
    let b_prime_small = match scale {
        Scale::Test => 5usize,
        Scale::Paper => 10,
    };
    let b_prime_large = match scale {
        Scale::Test => 8usize,
        Scale::Paper => 20,
    };

    println!("Figure 10: topic extraction, provider CPU per email (N={model_features}, L={email_features}, scale {scale:?})\n");
    let mut widths = vec![24usize];
    widths.extend(std::iter::repeat_n(14, b_values.len()));
    let mut header = vec!["system".to_string()];
    for &b in &b_values {
        header.push(format!("B={b}"));
    }
    print_header(
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &widths,
    );

    let mut points = vec![
        Point {
            name: "NoPriv".into(),
            per_b: vec![],
        },
        Point {
            name: "Baseline".into(),
            per_b: vec![],
        },
        Point {
            name: "Pretzel (B'=B)".into(),
            per_b: vec![],
        },
        Point {
            name: format!("Pretzel (B'={b_prime_large})"),
            per_b: vec![],
        },
        Point {
            name: format!("Pretzel (B'={b_prime_small})"),
            per_b: vec![],
        },
    ];

    for &b in &b_values {
        // NoPriv
        let noprivate = NoPrivProvider::new(synthetic_model(model_features, b, 11));
        let email = synthetic_features(model_features, email_features, 15, 4);
        let d = time_avg(20, || {
            std::hint::black_box(noprivate.classify(&email));
        });
        points[0].per_b.push(human_us(d));

        points[1].per_b.push(human_us(private_provider_cpu(
            AheVariant::Baseline,
            CandidateMode::Full,
            &config,
            model_features,
            b,
            email_features,
            emails,
        )));
        points[2].per_b.push(human_us(private_provider_cpu(
            AheVariant::Pretzel,
            CandidateMode::Full,
            &config,
            model_features,
            b,
            email_features,
            emails,
        )));
        points[3].per_b.push(human_us(private_provider_cpu(
            AheVariant::Pretzel,
            CandidateMode::Decomposed(b_prime_large),
            &config,
            model_features,
            b,
            email_features,
            emails,
        )));
        points[4].per_b.push(human_us(private_provider_cpu(
            AheVariant::Pretzel,
            CandidateMode::Decomposed(b_prime_small),
            &config,
            model_features,
            b,
            email_features,
            emails,
        )));
    }
    for p in points {
        let mut row = vec![p.name];
        row.extend(p.per_b);
        print_row(&row, &widths);
    }
    println!("\nPaper shape: Baseline ≫ Pretzel (B'=B) ≫ Pretzel with decomposition; at B=2048,");
    println!("Pretzel B'=20 is ~1.8x NoPriv and B'=10 is ~1.0x NoPriv.");
}
