//! Synthetic corpora and email generators for the Pretzel evaluation.
//!
//! The paper evaluates on Ling-spam, Enron, and a Gmail inbox (spam
//! filtering) and on 20-Newsgroups, Reuters-21578 and RCV1 (topic
//! extraction), plus synthetic emails made of random 4–12 letter words for
//! the resource benchmarks (§6 "Method and setup"). Those corpora are either
//! licensed or private, so this crate generates synthetic stand-ins with the
//! same *shape*: matching class counts, document counts (scaled by a
//! configurable factor), per-document feature counts (the paper's `L`), and
//! label-correlated vocabularies so classifier accuracy lands in the same
//! qualitative band (high-90s for spam, graceful degradation under feature
//! selection). DESIGN.md §3 records this substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pretzel_classifiers::{LabeledExample, SparseVector};

/// Specification of a synthetic labeled corpus.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// Human-readable name (used in experiment output).
    pub name: String,
    /// Number of classes (2 for spam, B for topics).
    pub num_classes: usize,
    /// Documents generated per class.
    pub docs_per_class: Vec<usize>,
    /// Vocabulary size shared by all classes (background words).
    pub shared_vocab: usize,
    /// Class-specific vocabulary size per class.
    pub class_vocab: usize,
    /// Probability that a token is drawn from the class-specific vocabulary.
    pub class_token_prob: f64,
    /// Probability that a class-specific token is drawn from a *different*
    /// (random) class's vocabulary instead of the document's own class.
    /// Real corpora are not perfectly separable — spam borrows legitimate
    /// phrasing, news topics share entities — and this confusion term is what
    /// keeps synthetic accuracy in the paper's high-90s band instead of a
    /// saturated 100% (Figures 9, 13, 14).
    pub confusion_prob: f64,
    /// Range of tokens per document (inclusive).
    pub doc_len: (usize, usize),
    /// RNG seed (corpora are deterministic given the spec).
    pub seed: u64,
}

impl CorpusSpec {
    /// Total vocabulary size (the paper's N before feature selection).
    pub fn vocab_size(&self) -> usize {
        self.shared_vocab + self.num_classes * self.class_vocab
    }

    /// Scales the document counts by `factor` (≥ 0), keeping at least two
    /// documents per class. Used to run paper-shaped experiments quickly.
    pub fn scaled(mut self, factor: f64) -> Self {
        for d in &mut self.docs_per_class {
            *d = ((*d as f64 * factor).round() as usize).max(2);
        }
        self
    }

    /// Generates the corpus.
    pub fn generate(&self) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut examples = Vec::new();
        for (class, &count) in self.docs_per_class.iter().enumerate() {
            for _ in 0..count {
                let features = self.generate_document(class, &mut rng);
                examples.push(LabeledExample {
                    features,
                    label: class,
                });
            }
        }
        Corpus {
            name: self.name.clone(),
            num_classes: self.num_classes,
            num_features: self.vocab_size(),
            examples,
        }
    }

    /// Generates one document's sparse feature vector for `class`.
    fn generate_document(&self, class: usize, rng: &mut StdRng) -> SparseVector {
        let len = rng.gen_range(self.doc_len.0..=self.doc_len.1);
        let mut pairs = Vec::with_capacity(len);
        for _ in 0..len {
            let idx = if rng.gen_bool(self.class_token_prob) && self.class_vocab > 0 {
                // Class-specific region of the vocabulary; with probability
                // `confusion_prob` the token leaks in from another class.
                let token_class = if self.num_classes > 1 && rng.gen_bool(self.confusion_prob) {
                    let other = rng.gen_range(0..self.num_classes - 1);
                    if other >= class {
                        other + 1
                    } else {
                        other
                    }
                } else {
                    class
                };
                let offset = self.shared_vocab + token_class * self.class_vocab;
                offset + zipf_index(self.class_vocab, rng)
            } else {
                zipf_index(self.shared_vocab.max(1), rng)
            };
            pairs.push((idx, 1u32));
        }
        SparseVector::from_pairs(pairs)
    }
}

/// Draws an index in `[0, n)` with a Zipf-like (1/rank) distribution, which
/// gives word-frequency statistics resembling natural text.
fn zipf_index(n: usize, rng: &mut StdRng) -> usize {
    // Inverse-CDF sampling of p(k) ∝ 1/(k+1) via the harmonic approximation.
    let u: f64 = rng.gen();
    let h = (n as f64).ln() + 0.5772;
    let k = (u * h).exp() - 1.0;
    (k as usize).min(n - 1)
}

/// A generated corpus: labeled examples over an integer feature space.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// Corpus name (e.g. "ling-spam-like").
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Feature-space size (vocabulary size N).
    pub num_features: usize,
    /// The labeled documents.
    pub examples: Vec<LabeledExample>,
}

impl Corpus {
    /// Splits into (train, test) with `train_fraction` of each class's
    /// documents in the training part (stratified, deterministic).
    pub fn train_test_split(
        &self,
        train_fraction: f64,
        seed: u64,
    ) -> (Vec<LabeledExample>, Vec<LabeledExample>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<&LabeledExample>> = vec![Vec::new(); self.num_classes];
        for ex in &self.examples {
            by_class[ex.label].push(ex);
        }
        let mut train = Vec::new();
        let mut test = Vec::new();
        for class_docs in by_class.iter_mut() {
            // Fisher–Yates shuffle for a deterministic split.
            for i in (1..class_docs.len()).rev() {
                let j = rng.gen_range(0..=i);
                class_docs.swap(i, j);
            }
            let cut = ((class_docs.len() as f64) * train_fraction).round() as usize;
            for (i, ex) in class_docs.iter().enumerate() {
                if i < cut {
                    train.push((*ex).clone());
                } else {
                    test.push((*ex).clone());
                }
            }
        }
        (train, test)
    }

    /// Takes a random fraction of the training examples (used by Figure 14's
    /// "percentage of the total training dataset" axis).
    pub fn subsample(examples: &[LabeledExample], fraction: f64, seed: u64) -> Vec<LabeledExample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let keep = ((examples.len() as f64 * fraction).round() as usize).max(1);
        let mut indices: Vec<usize> = (0..examples.len()).collect();
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        indices.truncate(keep);
        indices.iter().map(|&i| examples[i].clone()).collect()
    }

    /// Average number of distinct features per document (the paper's average
    /// `L`, e.g. 692 for the Gmail dataset).
    pub fn average_features_per_doc(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        self.examples
            .iter()
            .map(|e| e.features.len() as f64)
            .sum::<f64>()
            / self.examples.len() as f64
    }

    /// Renders a document back into text by mapping feature indices to
    /// synthetic words (for the keyword-search and e2e examples).
    pub fn render_text(&self, example: &LabeledExample) -> String {
        let mut words = Vec::new();
        for (idx, count) in example.features.iter() {
            for _ in 0..count {
                words.push(feature_word(idx));
            }
        }
        words.join(" ")
    }
}

/// Deterministic synthetic word for a feature index ("waba", "wabb", ...).
pub fn feature_word(index: usize) -> String {
    let mut s = String::from("w");
    let mut v = index;
    loop {
        s.push((b'a' + (v % 26) as u8) as char);
        v /= 26;
        if v == 0 {
            break;
        }
    }
    s
}

/// Generates a synthetic email of `num_words` random words of 4–12 letters
/// (the paper's synthetic workload for the resource benchmarks).
pub fn synthetic_email_text(num_words: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words = Vec::with_capacity(num_words);
    for _ in 0..num_words {
        let len = rng.gen_range(4..=12);
        let word: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        words.push(word);
    }
    words.join(" ")
}

/// Generates a synthetic sparse feature vector with exactly `l` distinct
/// features drawn from `[0, n)` and frequencies in `[1, max_freq]` — the
/// direct-input form used by the protocol benchmarks where tokenization is
/// not the quantity under test.
pub fn synthetic_features(n: usize, l: usize, max_freq: u32, seed: u64) -> SparseVector {
    let mut rng = StdRng::seed_from_u64(seed);
    let l = l.min(n);
    let mut chosen = std::collections::HashSet::with_capacity(l);
    while chosen.len() < l {
        chosen.insert(rng.gen_range(0..n));
    }
    SparseVector::from_pairs(
        chosen
            .into_iter()
            .map(|i| (i, rng.gen_range(1..=max_freq)))
            .collect(),
    )
}

/// Spam corpus shaped like Ling-spam (481 spam / 2,411 ham).
pub fn ling_spam_like(scale: f64) -> CorpusSpec {
    CorpusSpec {
        name: "ling-spam-like".into(),
        num_classes: 2,
        docs_per_class: vec![2411, 481],
        shared_vocab: 4000,
        class_vocab: 1500,
        class_token_prob: 0.35,
        confusion_prob: 0.06,
        doc_len: (60, 400),
        seed: 101,
    }
    .scaled(scale)
}

/// Spam corpus shaped like Enron (17,148 spam / 16,555 ham).
pub fn enron_like(scale: f64) -> CorpusSpec {
    CorpusSpec {
        name: "enron-like".into(),
        num_classes: 2,
        docs_per_class: vec![16555, 17148],
        shared_vocab: 8000,
        class_vocab: 3000,
        class_token_prob: 0.30,
        confusion_prob: 0.1,
        doc_len: (40, 300),
        seed: 102,
    }
    .scaled(scale)
}

/// Spam corpus shaped like the authors' Gmail sample (355 spam / 600 ham,
/// average 692 features per email).
pub fn gmail_like(scale: f64) -> CorpusSpec {
    CorpusSpec {
        name: "gmail-like".into(),
        num_classes: 2,
        docs_per_class: vec![600, 355],
        shared_vocab: 5000,
        class_vocab: 2000,
        class_token_prob: 0.35,
        confusion_prob: 0.08,
        doc_len: (300, 1100),
        seed: 103,
    }
    .scaled(scale)
}

/// Topic corpus shaped like 20-Newsgroups (20 topics, 18,846 posts).
pub fn newsgroups_like(scale: f64) -> CorpusSpec {
    CorpusSpec {
        name: "20news-like".into(),
        num_classes: 20,
        docs_per_class: vec![942; 20],
        shared_vocab: 6000,
        class_vocab: 400,
        class_token_prob: 0.4,
        confusion_prob: 0.15,
        doc_len: (50, 300),
        seed: 201,
    }
    .scaled(scale)
}

/// Topic corpus shaped like Reuters-21578 (90 topics, 12,603 stories; class
/// sizes skewed).
pub fn reuters_like(scale: f64) -> CorpusSpec {
    let docs: Vec<usize> = (0..90)
        .map(|i| 400usize.saturating_sub(i * 4).max(20))
        .collect();
    CorpusSpec {
        name: "reuters-like".into(),
        num_classes: 90,
        docs_per_class: docs,
        shared_vocab: 6000,
        class_vocab: 200,
        class_token_prob: 0.4,
        confusion_prob: 0.15,
        doc_len: (30, 200),
        seed: 202,
    }
    .scaled(scale)
}

/// Topic corpus shaped like RCV1 (296 region codes; the paper reports 806,778
/// stories — use a small `scale` value).
pub fn rcv1_like(scale: f64) -> CorpusSpec {
    CorpusSpec {
        name: "rcv1-like".into(),
        num_classes: 296,
        docs_per_class: vec![2726; 296],
        shared_vocab: 10000,
        class_vocab: 120,
        class_token_prob: 0.4,
        confusion_prob: 0.15,
        doc_len: (40, 250),
        seed: 203,
    }
    .scaled(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_classifiers::nb::MultinomialNbTrainer;
    use pretzel_classifiers::{accuracy, Trainer};

    #[test]
    fn corpus_has_requested_shape() {
        let spec = ling_spam_like(0.05);
        let corpus = spec.generate();
        assert_eq!(corpus.num_classes, 2);
        assert_eq!(corpus.num_features, spec.vocab_size());
        assert_eq!(
            corpus.examples.len(),
            spec.docs_per_class.iter().sum::<usize>()
        );
        // Both classes present.
        assert!(corpus.examples.iter().any(|e| e.label == 0));
        assert!(corpus.examples.iter().any(|e| e.label == 1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gmail_like(0.05).generate();
        let b = gmail_like(0.05).generate();
        assert_eq!(a.examples.len(), b.examples.len());
        for (x, y) in a.examples.iter().zip(b.examples.iter()) {
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.features.iter().collect::<Vec<_>>(),
                y.features.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn train_test_split_is_stratified_and_disjoint_in_size() {
        let corpus = ling_spam_like(0.1).generate();
        let (train, test) = corpus.train_test_split(0.7, 1);
        assert_eq!(train.len() + test.len(), corpus.examples.len());
        let train_spam = train.iter().filter(|e| e.label == 1).count();
        let total_spam = corpus.examples.iter().filter(|e| e.label == 1).count();
        let frac = train_spam as f64 / total_spam as f64;
        assert!((frac - 0.7).abs() < 0.1, "stratified split, got {frac}");
    }

    #[test]
    fn synthetic_corpus_is_learnable() {
        // The label-correlated vocabulary must make classes separable — this
        // is what lets Figure 9 / 13-style accuracy numbers land in the same
        // qualitative band as the paper's real corpora.
        let corpus = newsgroups_like(0.03).generate();
        let (train, test) = corpus.train_test_split(0.7, 2);
        let model =
            MultinomialNbTrainer::default().train(&train, corpus.num_features, corpus.num_classes);
        let acc = accuracy(&model, &test);
        assert!(acc > 0.7, "synthetic topics should be learnable, got {acc}");
    }

    #[test]
    fn subsample_sizes() {
        let corpus = ling_spam_like(0.05).generate();
        let sub = Corpus::subsample(&corpus.examples, 0.1, 3);
        let expected = ((corpus.examples.len() as f64) * 0.1).round() as usize;
        assert_eq!(sub.len(), expected.max(1));
    }

    #[test]
    fn synthetic_email_text_has_requested_word_count_and_lengths() {
        let text = synthetic_email_text(200, 7);
        let words: Vec<&str> = text.split(' ').collect();
        assert_eq!(words.len(), 200);
        assert!(words.iter().all(|w| w.len() >= 4 && w.len() <= 12));
        // Deterministic.
        assert_eq!(text, synthetic_email_text(200, 7));
    }

    #[test]
    fn synthetic_features_shape() {
        let v = synthetic_features(10_000, 692, 15, 9);
        assert_eq!(v.len(), 692);
        assert!(v.iter().all(|(i, c)| i < 10_000 && (1..=15).contains(&c)));
    }

    #[test]
    fn feature_words_are_unique_and_text_renders() {
        let corpus = ling_spam_like(0.02).generate();
        let text = corpus.render_text(&corpus.examples[0]);
        assert!(!text.is_empty());
        assert_ne!(feature_word(0), feature_word(1));
        assert_ne!(feature_word(25), feature_word(26));
    }

    #[test]
    fn average_features_per_doc_tracks_doc_len() {
        let short = CorpusSpec {
            doc_len: (10, 20),
            ..ling_spam_like(0.02)
        }
        .generate();
        let long = CorpusSpec {
            doc_len: (300, 500),
            ..ling_spam_like(0.02)
        }
        .generate();
        assert!(long.average_features_per_doc() > short.average_features_per_doc());
    }
}
