//! Base oblivious transfer (1-out-of-2) over a prime-order subgroup.
//!
//! This is the Chou–Orlandi "simplest OT" construction over a multiplicative
//! group modulo a safe prime:
//!
//! * Sender: secret `a`, publishes `A = g^a`.
//! * Receiver with choice bit `c`: secret `b`, publishes `B = g^b` (c = 0) or
//!   `B = A·g^b` (c = 1); derives `k_c = H(A^b)`.
//! * Sender derives `k_0 = H(B^a)` and `k_1 = H((B/A)^a)` and sends both
//!   messages encrypted under the respective keys; the receiver can decrypt
//!   only the chosen one.
//!
//! Base OTs run only during the setup phase of the Yao session (the IKNP
//! extension in [`crate::otext`] turns 128 of them into any number of fast
//! per-email OTs), which is exactly how the paper amortizes the expensive
//! public-key machinery into setup (§3.3).

use rand::Rng;

use pretzel_bignum::{gen_safe_prime, mod_inv, AutoMontgomery, BigUint};
use pretzel_primitives::{sha256, xor_in_place};
use pretzel_transport::Channel;

use crate::GcError;

/// Fixed-size payload carried by one base OT (a PRG seed).
pub const OT_MSG_LEN: usize = 32;

/// The group used for base OT.
#[derive(Clone, Debug)]
pub struct OtGroup {
    /// Safe prime modulus.
    p: BigUint,
    /// Subgroup order q = (p - 1) / 2.
    q: BigUint,
    /// Generator of the order-q subgroup.
    g: BigUint,
    mont: AutoMontgomery,
}

impl OtGroup {
    /// The 1536-bit MODP group from RFC 3526 (§2); `g = 4` generates the
    /// prime-order subgroup of a safe prime.
    pub fn rfc3526_1536() -> Self {
        let p_hex = concat!(
            "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1",
            "29024E088A67CC74020BBEA63B139B22514A08798E3404DD",
            "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245",
            "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
            "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D",
            "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F",
            "83655D23DCA3AD961C62F356208552BB9ED529077096966D",
            "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
        );
        let p = BigUint::from_hex(p_hex).expect("valid hex constant");
        Self::from_safe_prime(p)
    }

    /// Builds a group from a safe prime `p` with generator `g = 4`.
    pub fn from_safe_prime(p: BigUint) -> Self {
        let q = (p.clone() - BigUint::one()) >> 1;
        let mont = AutoMontgomery::new(&p);
        OtGroup {
            p,
            q,
            g: BigUint::from(4u64),
            mont,
        }
    }

    /// Generates a small group for unit tests (NOT secure — documented as
    /// such; production paths use [`OtGroup::rfc3526_1536`]).
    pub fn insecure_test_group<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        Self::from_safe_prime(gen_safe_prime(bits, rng))
    }

    /// Deterministically derives a small test group from a 32-byte seed.
    ///
    /// Both protocol parties call this with the seed produced by the joint
    /// commit–reveal exchange, so they agree on the same group without either
    /// party choosing it unilaterally. Like [`OtGroup::insecure_test_group`],
    /// the result is NOT cryptographically secure at small bit widths;
    /// production configurations use [`OtGroup::rfc3526_1536`].
    pub fn derive_test_group(bits: usize, seed: &[u8; 32]) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::from_seed(*seed);
        Self::from_safe_prime(gen_safe_prime(bits, &mut rng))
    }

    /// The group's prime modulus (a public parameter).
    pub fn prime(&self) -> &BigUint {
        &self.p
    }

    /// Stable 64-bit fingerprint of the group (FNV-1a over the encoded
    /// modulus) — the key a fleet-wide precompute bank files base-OT sender
    /// artifacts under, so artifacts generated for one group can never be
    /// spent in another.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.encode(&self.p) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn pow_g(&self, exp: &BigUint) -> BigUint {
        self.mont.pow(&self.g, exp)
    }

    fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.mont.pow(base, exp)
    }

    fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.mont.mul(a, b)
    }

    fn random_exponent<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let e = BigUint::random_below(rng, &self.q);
            if !e.is_zero() {
                return e;
            }
        }
    }

    fn element_bytes(&self) -> usize {
        self.p.bits().div_ceil(8)
    }

    fn encode(&self, x: &BigUint) -> Vec<u8> {
        x.to_bytes_be_padded(self.element_bytes())
    }

    fn decode(&self, bytes: &[u8]) -> Result<BigUint, GcError> {
        let v = BigUint::from_bytes_be(bytes);
        if v.is_zero() || v >= self.p {
            return Err(GcError::Protocol("group element out of range".into()));
        }
        Ok(v)
    }
}

fn key_from_element(group: &OtGroup, shared: &BigUint, index: u64) -> [u8; 32] {
    let mut data = Vec::with_capacity(group.element_bytes() + 8);
    data.extend_from_slice(&group.encode(shared));
    data.extend_from_slice(&index.to_le_bytes());
    sha256(&data)
}

/// Peer-independent sender-side precomputation for one base-OT execution:
/// the secret exponent `a`, the public value `A = g^a`, and the cached
/// `A^{-a}` used to derive `k_1`. All three are independent of the
/// receiver's messages, so they can be manufactured ahead of time by a
/// background producer (a fleet-wide precompute bank) and spent at session
/// setup — removing the expensive fixed-base and inverse exponentiations
/// from the serving path.
///
/// Consume-once: each value must feed exactly one [`base_ot_send_precomputed`]
/// execution (the API takes it by value).
pub struct OtSenderPrecomp {
    a: BigUint,
    big_a: BigUint,
    a_inv_pow_a: BigUint,
    group_fingerprint: u64,
}

impl OtSenderPrecomp {
    /// Runs the offline part of [`base_ot_send`] for `group`.
    pub fn generate<R: Rng + ?Sized>(group: &OtGroup, rng: &mut R) -> Result<Self, GcError> {
        let a = group.random_exponent(rng);
        let big_a = group.pow_g(&a);
        // A^{-a} is used to compute (B / A)^a as B^a * A^{-a}.
        let a_inv = mod_inv(&big_a, &group.p).map_err(|_| GcError::Protocol("bad group".into()))?;
        let a_inv_pow_a = group.pow(&a_inv, &a);
        Ok(OtSenderPrecomp {
            a,
            big_a,
            a_inv_pow_a,
            group_fingerprint: group.fingerprint(),
        })
    }

    /// True when this artifact was generated for exactly `group` — spending
    /// it in a different group would break correctness and security, so
    /// [`base_ot_send_precomputed`] rejects mismatches.
    pub fn matches(&self, group: &OtGroup) -> bool {
        self.group_fingerprint == group.fingerprint()
    }
}

/// Sender side of `n` base OTs. `messages[i]` is the pair `(m0, m1)`; the
/// receiver learns exactly one of each pair.
pub fn base_ot_send<C: Channel>(
    channel: &mut C,
    group: &OtGroup,
    messages: &[([u8; OT_MSG_LEN], [u8; OT_MSG_LEN])],
    rng: &mut (impl Rng + ?Sized),
) -> Result<(), GcError> {
    let pre = OtSenderPrecomp::generate(group, rng)?;
    base_ot_send_precomputed(channel, group, pre, messages)
}

/// [`base_ot_send`] consuming an offline [`OtSenderPrecomp`] — the online
/// half needs no RNG and performs no fixed-base exponentiation.
pub fn base_ot_send_precomputed<C: Channel>(
    channel: &mut C,
    group: &OtGroup,
    pre: OtSenderPrecomp,
    messages: &[([u8; OT_MSG_LEN], [u8; OT_MSG_LEN])],
) -> Result<(), GcError> {
    if !pre.matches(group) {
        return Err(GcError::Protocol(
            "base-OT precomputation generated for a different group".into(),
        ));
    }
    let OtSenderPrecomp {
        a,
        big_a,
        a_inv_pow_a,
        ..
    } = pre;
    channel.send(&group.encode(&big_a))?;

    let mut response = Vec::with_capacity(messages.len() * 2 * OT_MSG_LEN);
    for (i, (m0, m1)) in messages.iter().enumerate() {
        let b_bytes = channel.recv()?;
        let big_b = group.decode(&b_bytes)?;
        let b_pow_a = group.pow(&big_b, &a);
        let k0 = key_from_element(group, &b_pow_a, i as u64);
        let k1 = key_from_element(group, &group.mul(&b_pow_a, &a_inv_pow_a), i as u64);

        let mut e0 = *m0;
        xor_in_place(&mut e0, &k0);
        let mut e1 = *m1;
        xor_in_place(&mut e1, &k1);
        response.extend_from_slice(&e0);
        response.extend_from_slice(&e1);
    }
    channel.send(&response)?;
    Ok(())
}

/// Receiver side of `n` base OTs; returns the chosen message of each pair.
pub fn base_ot_receive<C: Channel>(
    channel: &mut C,
    group: &OtGroup,
    choices: &[bool],
    rng: &mut (impl Rng + ?Sized),
) -> Result<Vec<[u8; OT_MSG_LEN]>, GcError> {
    let a_bytes = channel.recv()?;
    let big_a = group.decode(&a_bytes)?;

    let mut keys = Vec::with_capacity(choices.len());
    for (i, &c) in choices.iter().enumerate() {
        let b = group.random_exponent(rng);
        let g_b = group.pow_g(&b);
        let big_b = if c { group.mul(&big_a, &g_b) } else { g_b };
        channel.send(&group.encode(&big_b))?;
        let shared = group.pow(&big_a, &b);
        keys.push(key_from_element(group, &shared, i as u64));
    }

    let response = channel.recv()?;
    if response.len() != choices.len() * 2 * OT_MSG_LEN {
        return Err(GcError::Protocol("bad base-OT response length".into()));
    }
    let mut out = Vec::with_capacity(choices.len());
    for (i, &c) in choices.iter().enumerate() {
        let offset = i * 2 * OT_MSG_LEN + if c { OT_MSG_LEN } else { 0 };
        let mut m = [0u8; OT_MSG_LEN];
        m.copy_from_slice(&response[offset..offset + OT_MSG_LEN]);
        xor_in_place(&mut m, &keys[i]);
        out.push(m);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_transport::run_two_party;
    use rand::Rng;

    fn test_group() -> OtGroup {
        OtGroup::insecure_test_group(64, &mut rand::thread_rng())
    }

    #[test]
    fn receiver_gets_exactly_the_chosen_messages() {
        let group = test_group();
        let group_b = group.clone();
        let mut rng = rand::thread_rng();
        let n = 8;
        let messages: Vec<([u8; 32], [u8; 32])> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let choices: Vec<bool> = (0..n).map(|_| rng.gen()).collect();

        let msgs_for_sender = messages.clone();
        let choices_for_recv = choices.clone();
        let (send_res, recv_res) = run_two_party(
            move |chan| base_ot_send(chan, &group, &msgs_for_sender, &mut rand::thread_rng()),
            move |chan| base_ot_receive(chan, &group_b, &choices_for_recv, &mut rand::thread_rng()),
        );
        send_res.unwrap();
        let received = recv_res.unwrap();
        for i in 0..n {
            let expected = if choices[i] {
                messages[i].1
            } else {
                messages[i].0
            };
            assert_eq!(received[i], expected, "OT #{i}");
            let other = if choices[i] {
                messages[i].0
            } else {
                messages[i].1
            };
            assert_ne!(
                received[i], other,
                "OT #{i} must not reveal the other message"
            );
        }
    }

    #[test]
    fn precomputed_sender_serves_the_same_protocol() {
        let group = test_group();
        let group_b = group.clone();
        let mut rng = rand::thread_rng();
        let n = 4;
        let messages: Vec<([u8; 32], [u8; 32])> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let choices: Vec<bool> = (0..n).map(|_| rng.gen()).collect();

        // Offline half on a "producer thread" RNG, online half with no RNG.
        let pre = OtSenderPrecomp::generate(&group, &mut rng).unwrap();
        assert!(pre.matches(&group));
        let msgs_for_sender = messages.clone();
        let choices_for_recv = choices.clone();
        let (send_res, recv_res) = run_two_party(
            move |chan| base_ot_send_precomputed(chan, &group, pre, &msgs_for_sender),
            move |chan| base_ot_receive(chan, &group_b, &choices_for_recv, &mut rand::thread_rng()),
        );
        send_res.unwrap();
        let received = recv_res.unwrap();
        for i in 0..n {
            let expected = if choices[i] {
                messages[i].1
            } else {
                messages[i].0
            };
            assert_eq!(received[i], expected, "OT #{i}");
        }
    }

    #[test]
    fn precomputation_for_a_foreign_group_is_rejected() {
        let group = test_group();
        let other = test_group();
        assert_ne!(group.fingerprint(), other.fingerprint());
        let pre = OtSenderPrecomp::generate(&other, &mut rand::thread_rng()).unwrap();
        assert!(!pre.matches(&group));
        let mut chan = pretzel_transport::memory_pair().0;
        let err = base_ot_send_precomputed(&mut chan, &group, pre, &[]);
        assert!(matches!(err, Err(GcError::Protocol(_))));
    }

    #[test]
    fn group_element_encoding_roundtrip() {
        let group = test_group();
        let x = BigUint::from(123456789u64) % group.p.clone();
        let bytes = group.encode(&x);
        assert_eq!(bytes.len(), group.element_bytes());
        assert_eq!(group.decode(&bytes).unwrap(), x);
        // Out-of-range elements rejected.
        assert!(group.decode(&group.encode(&group.p.clone())).is_err() || x == group.p);
        let zero = vec![0u8; group.element_bytes()];
        assert!(group.decode(&zero).is_err());
    }

    #[test]
    fn rfc3526_group_parses() {
        let group = OtGroup::rfc3526_1536();
        assert_eq!(group.p.bits(), 1536);
        assert_eq!(group.element_bytes(), 192);
    }
}
