//! Yao's garbled circuits and oblivious transfer for Pretzel (paper §3.2).
//!
//! Pretzel uses Yao's 2PC very selectively — "just to compute several
//! comparisons of 32-bit numbers" (spam filtering) and a B′-way argmax with
//! index selection (topic extraction, Figure 5) — yet it is still a measurable
//! per-email cost (Figure 6's Yao rows; the bottleneck discussion in §6.1 and
//! §6.2). This crate implements the whole stack from scratch:
//!
//! * [`circuit`] — boolean circuits and a builder with the adders,
//!   subtractors, comparators, muxes and argmax used by Pretzel's functions.
//! * [`mod@garble`] — free-XOR + point-and-permute garbling and evaluation.
//! * [`ot`] — Chou–Orlandi-style base oblivious transfer over a safe-prime
//!   group (setup-phase only).
//! * [`otext`] — IKNP OT extension, which amortizes the base OTs across
//!   every per-email circuit execution (paper §3.3's setup-phase
//!   amortization).
//! * [`runner`] — the interactive garbler/evaluator protocol over a
//!   [`pretzel_transport::Channel`].
//!
//! Threat model note: the implementation is semi-honest. The paper's Baseline
//! additionally plugs in an actively-secure OT/garbling variant [71, 77]
//! whose cost is amortized into setup; we document (DESIGN.md §3) rather than
//! implement that variant, and the per-email costs measured here correspond
//! to the steady state the paper reports.

pub mod circuit;
pub mod garble;
pub mod ot;
pub mod otext;
pub mod runner;

pub use circuit::{
    from_bits, spam_compare_circuit, to_bits, topic_argmax_circuit, Circuit, CircuitBuilder,
    InputOwner, WireBundle,
};
pub use garble::{garble, Garbling, Label};
pub use ot::{OtGroup, OtSenderPrecomp};
pub use runner::{GarblingPool, OutputMode, PrecomputedGarbling, YaoEvaluator, YaoGarbler};

/// Errors produced by garbled-circuit protocols.
#[derive(Debug)]
pub enum GcError {
    /// Transport failure.
    Transport(pretzel_transport::TransportError),
    /// A protocol invariant was violated (malformed message, bad length,
    /// invalid label, input size mismatch).
    Protocol(String),
}

impl std::fmt::Display for GcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcError::Transport(e) => write!(f, "transport error: {e}"),
            GcError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for GcError {}

impl From<pretzel_transport::TransportError> for GcError {
    fn from(e: pretzel_transport::TransportError) -> Self {
        GcError::Transport(e)
    }
}

/// Estimated network bytes for garbling a circuit: 64 bytes per AND gate
/// (4 rows × 16 bytes) plus 16 bytes per garbler input and 32 bytes per
/// evaluator input (OT-extension payload). Used by the cost model (Figure 3's
/// `szper-in`) without running the protocol.
pub fn estimated_garbled_size(circuit: &Circuit) -> usize {
    circuit.and_count() * 64
        + circuit.garbler_inputs.len() * 16
        + circuit.evaluator_inputs.len() * 32
        + circuit.outputs.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimated_size_tracks_circuit_growth() {
        let small = spam_compare_circuit(8);
        let large = spam_compare_circuit(32);
        assert!(estimated_garbled_size(&large) > estimated_garbled_size(&small));
        let argmax_small = topic_argmax_circuit(5, 24, 12);
        let argmax_large = topic_argmax_circuit(20, 24, 12);
        assert!(estimated_garbled_size(&argmax_large) > 3 * estimated_garbled_size(&argmax_small));
    }

    #[test]
    fn error_display_formats() {
        let e = GcError::Protocol("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
