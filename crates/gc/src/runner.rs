//! Interactive two-party Yao protocol runner.
//!
//! A [`YaoGarbler`]/[`YaoEvaluator`] pair holds the persistent OT-extension
//! state established once during the function module's setup phase; each call
//! to `run` executes one garbled circuit (one email's comparison or argmax)
//! over the channel. This mirrors the paper's amortization of expensive
//! public-key work into setup (§3.3) and keeps the per-email Yao cost at the
//! symmetric-key level measured in Figure 6.
//!
//! The garbler's per-round work splits further into an offline and an online
//! half: garbling the circuit needs no input from either party, only
//! randomness, so it can happen ahead of time. [`PrecomputedGarbling::garble`]
//! produces that offline artifact and [`YaoGarbler::run_precomputed`]
//! consumes it; [`YaoGarbler::run`] is the inline composition of the two and
//! produces byte-for-byte the same transcript.

use rand::Rng;

use pretzel_transport::Channel;

use crate::circuit::Circuit;
use crate::garble::{decode_outputs, evaluate, garble, Garbling, Label};
use crate::ot::OtGroup;
use crate::otext::{OtExtReceiver, OtExtSender};
use crate::GcError;

/// Who learns the circuit output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputMode {
    /// Only the evaluator learns the output (spam filtering: the client).
    EvaluatorOnly,
    /// Only the garbler learns the output (topic extraction: the provider is
    /// the evaluator — see the role note in `circuit::topic_argmax_circuit` —
    /// so this mode is used when the garbler must learn).
    GarblerOnly,
    /// Both parties learn the output.
    Both,
}

/// One circuit's worth of offline garbler work: the tables and labels of
/// [`garble`], produced ahead of the online round and consumed by
/// [`YaoGarbler::run_precomputed`].
///
/// Function modules keep a queue of these per session (their "pool"); when
/// the queue runs dry the round garbles inline instead — the evaluator
/// cannot tell the difference.
pub struct PrecomputedGarbling {
    garbling: Garbling,
    /// [`Circuit::fingerprint`] of the circuit this was garbled for.
    fingerprint: u64,
}

impl PrecomputedGarbling {
    /// Runs the offline phase for `circuit`: garbles it with randomness from
    /// `rng`.
    pub fn garble<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> Self {
        PrecomputedGarbling {
            garbling: garble(circuit, rng),
            fingerprint: circuit.fingerprint(),
        }
    }

    /// True when this artifact was produced for exactly this circuit — the
    /// structural [`Circuit::fingerprint`] must match, not merely the wire
    /// and gate counts, so tables from a different same-shaped circuit are
    /// rejected instead of silently computing the wrong function.
    pub fn matches(&self, circuit: &Circuit) -> bool {
        self.fingerprint == circuit.fingerprint()
    }
}

/// A FIFO pool of offline-garbled circuits for one fixed circuit shape —
/// the per-session "bank" the function modules draw from on the online
/// path. [`GarblingPool::refill`] is the offline phase,
/// [`GarblingPool::draw`] the online one; a dry pool transparently falls
/// back to inline garbling, so depth only ever moves latency, never
/// semantics.
#[derive(Default)]
pub struct GarblingPool {
    ready: std::collections::VecDeque<PrecomputedGarbling>,
    fallback_draws: u64,
}

impl GarblingPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offline phase: tops the pool up to `target` garbled circuits,
    /// returning the number freshly garbled.
    pub fn refill<R: Rng + ?Sized>(
        &mut self,
        circuit: &Circuit,
        target: usize,
        rng: &mut R,
    ) -> usize {
        let mut added = 0;
        while self.ready.len() < target {
            self.ready
                .push_back(PrecomputedGarbling::garble(circuit, rng));
            added += 1;
        }
        added
    }

    /// Rounds the pool can currently serve without inline garbling.
    pub fn depth(&self) -> usize {
        self.ready.len()
    }

    /// Online phase: pops the oldest banked garbling, garbling inline when
    /// the pool is dry (counted in [`GarblingPool::fallback_draws`]).
    pub fn draw<R: Rng + ?Sized>(&mut self, circuit: &Circuit, rng: &mut R) -> PrecomputedGarbling {
        match self.ready.pop_front() {
            Some(pre) => pre,
            None => {
                self.fallback_draws += 1;
                PrecomputedGarbling::garble(circuit, rng)
            }
        }
    }

    /// Pops the oldest banked garbling without an inline fallback — the
    /// first step of the pool-then-bank-then-inline draw ladder.
    pub fn try_draw(&mut self) -> Option<PrecomputedGarbling> {
        self.ready.pop_front()
    }

    /// Accepts a garbling produced elsewhere (a fleet-wide bank) if and only
    /// if it matches `circuit`; mismatched artifacts are dropped and `false`
    /// is returned.
    pub fn accept(&mut self, pre: PrecomputedGarbling, circuit: &Circuit) -> bool {
        if pre.matches(circuit) {
            self.ready.push_back(pre);
            true
        } else {
            false
        }
    }

    /// Draws that found the pool dry and fell back to inline garbling since
    /// the pool was created.
    pub fn fallback_draws(&self) -> u64 {
        self.fallback_draws
    }

    /// Records a dry draw that was satisfied outside the pool's own inline
    /// path (a caller that fell back after the bank also came up dry).
    pub fn note_fallback(&mut self) {
        self.fallback_draws += 1;
    }

    /// Bulk online draw for a batched round: pops up to `count` banked
    /// garblings and tops the shortfall up inline, preserving FIFO order.
    pub fn draw_many<R: Rng + ?Sized>(
        &mut self,
        circuit: &Circuit,
        count: usize,
        rng: &mut R,
    ) -> Vec<PrecomputedGarbling> {
        (0..count).map(|_| self.draw(circuit, rng)).collect()
    }
}

/// Garbler endpoint with persistent OT-extension state.
pub struct YaoGarbler {
    ot: OtExtSender,
}

/// Evaluator endpoint with persistent OT-extension state.
pub struct YaoEvaluator {
    ot: OtExtReceiver,
}

impl YaoGarbler {
    /// Runs the setup phase (base OTs) once.
    pub fn setup<C: Channel>(
        channel: &mut C,
        group: &OtGroup,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<Self, GcError> {
        Ok(YaoGarbler {
            ot: OtExtSender::setup(channel, group, rng)?,
        })
    }

    /// Garbles `circuit`, feeds in the garbler's input bits, serves the
    /// evaluator's labels via OT extension, and (depending on `mode`)
    /// receives the output. Equivalent to [`PrecomputedGarbling::garble`]
    /// followed by [`YaoGarbler::run_precomputed`].
    pub fn run<C: Channel>(
        &mut self,
        channel: &mut C,
        circuit: &Circuit,
        my_inputs: &[bool],
        mode: OutputMode,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<Option<Vec<bool>>, GcError> {
        let pre = PrecomputedGarbling::garble(circuit, rng);
        self.run_precomputed(channel, circuit, pre, my_inputs, mode)
    }

    /// Online phase: runs one round consuming an offline
    /// [`PrecomputedGarbling`] — no fresh garbling happens here, only input
    /// labeling, OT extension and output decoding.
    pub fn run_precomputed<C: Channel>(
        &mut self,
        channel: &mut C,
        circuit: &Circuit,
        pre: PrecomputedGarbling,
        my_inputs: &[bool],
        mode: OutputMode,
    ) -> Result<Option<Vec<bool>>, GcError> {
        let garbling = check_garbler_round(circuit, &pre, my_inputs)?;
        let mut msg = Vec::with_capacity(expected_message_len(circuit));
        append_garbler_message(&mut msg, circuit, garbling, my_inputs);
        channel.send(&msg)?;

        // OT extension: evaluator's wire label pairs, in evaluator-input order.
        self.ot
            .extend(channel, &evaluator_label_pairs(circuit, garbling))?;

        // Output decoding.
        if matches!(mode, OutputMode::EvaluatorOnly | OutputMode::Both) {
            channel.send(&decode_bit_bytes(circuit, garbling))?;
        }
        if matches!(mode, OutputMode::GarblerOnly | OutputMode::Both) {
            let raw = channel.recv()?;
            if raw.len() != circuit.outputs.len() * 16 {
                return Err(GcError::Protocol("bad output label message".into()));
            }
            return decode_returned_labels(circuit, garbling, &raw).map(Some);
        }
        Ok(None)
    }

    /// Batched online phase: runs `pres.len()` rounds of the same circuit as
    /// **one** coalesced exchange — a single frame carrying every round's
    /// garbled tables and input labels, a single OT extension covering all
    /// rounds' evaluator inputs, and a single output-decoding frame. The
    /// evaluator must mirror the batch with [`YaoEvaluator::run_batch`].
    ///
    /// Per-round outputs are identical to running [`run_precomputed`]
    /// sequentially; only the frame count changes (5·N messages collapse to
    /// at most 5). An empty batch exchanges no messages.
    ///
    /// [`run_precomputed`]: YaoGarbler::run_precomputed
    pub fn run_batch<C: Channel>(
        &mut self,
        channel: &mut C,
        circuit: &Circuit,
        pres: Vec<PrecomputedGarbling>,
        inputs: &[Vec<bool>],
        mode: OutputMode,
    ) -> Result<Vec<Option<Vec<bool>>>, GcError> {
        if pres.len() != inputs.len() {
            return Err(GcError::Protocol(format!(
                "batch has {} garblings for {} input sets",
                pres.len(),
                inputs.len()
            )));
        }
        let rounds = pres.len();
        if rounds == 0 {
            return Ok(Vec::new());
        }
        for (pre, my_inputs) in pres.iter().zip(inputs) {
            check_garbler_round(circuit, pre, my_inputs)?;
        }

        // One frame: every round's tables + garbler labels, back to back
        // (fixed per-round length, so the evaluator splits by offset).
        let mut msg = Vec::with_capacity(rounds * expected_message_len(circuit));
        for (pre, my_inputs) in pres.iter().zip(inputs) {
            append_garbler_message(&mut msg, circuit, &pre.garbling, my_inputs);
        }
        channel.send(&msg)?;

        // One OT extension spanning all rounds' evaluator inputs.
        let mut pairs = Vec::with_capacity(rounds * circuit.evaluator_inputs.len());
        for pre in &pres {
            pairs.extend(evaluator_label_pairs(circuit, &pre.garbling));
        }
        self.ot.extend(channel, &pairs)?;

        if matches!(mode, OutputMode::EvaluatorOnly | OutputMode::Both) {
            let mut decode = Vec::with_capacity(rounds * circuit.outputs.len());
            for pre in &pres {
                decode.extend_from_slice(&decode_bit_bytes(circuit, &pre.garbling));
            }
            channel.send(&decode)?;
        }
        if matches!(mode, OutputMode::GarblerOnly | OutputMode::Both) {
            let raw = channel.recv()?;
            let per_round = circuit.outputs.len() * 16;
            if raw.len() != rounds * per_round {
                return Err(GcError::Protocol("bad batched output label message".into()));
            }
            return pres
                .iter()
                .zip(raw.chunks_exact(per_round))
                .map(|(pre, chunk)| decode_returned_labels(circuit, &pre.garbling, chunk).map(Some))
                .collect();
        }
        Ok(vec![None; rounds])
    }
}

/// Validates one garbler round's inputs and artifact, returning the garbling.
fn check_garbler_round<'a>(
    circuit: &Circuit,
    pre: &'a PrecomputedGarbling,
    my_inputs: &[bool],
) -> Result<&'a Garbling, GcError> {
    if my_inputs.len() != circuit.garbler_inputs.len() {
        return Err(GcError::Protocol(format!(
            "garbler supplied {} input bits, circuit expects {}",
            my_inputs.len(),
            circuit.garbler_inputs.len()
        )));
    }
    if !pre.matches(circuit) {
        return Err(GcError::Protocol(
            "precomputed garbling does not match the circuit shape".into(),
        ));
    }
    Ok(&pre.garbling)
}

/// Appends one round's first message — garbled tables, the garbler's active
/// input labels, and constant wire labels — onto `msg` (a batch frame
/// concatenates several rounds' worth without intermediate allocations).
fn append_garbler_message(
    msg: &mut Vec<u8>,
    circuit: &Circuit,
    garbling: &Garbling,
    my_inputs: &[bool],
) {
    for table in &garbling.tables {
        for row in table {
            msg.extend_from_slice(row);
        }
    }
    for (wire, &bit) in circuit.garbler_inputs.iter().zip(my_inputs) {
        msg.extend_from_slice(&garbling.label_for(*wire, bit));
    }
    if let Some(w) = circuit.const_zero {
        msg.extend_from_slice(&garbling.label_for(w, false));
    }
    if let Some(w) = circuit.const_one {
        msg.extend_from_slice(&garbling.label_for(w, true));
    }
}

/// Byte length of one round's first message for `circuit`.
fn expected_message_len(circuit: &Circuit) -> usize {
    let n_consts = circuit.const_zero.is_some() as usize + circuit.const_one.is_some() as usize;
    circuit.and_count() * 64 + (circuit.garbler_inputs.len() + n_consts) * 16
}

/// The evaluator's wire-label pairs served over OT, in evaluator-input order.
fn evaluator_label_pairs(circuit: &Circuit, garbling: &Garbling) -> Vec<(Label, Label)> {
    circuit
        .evaluator_inputs
        .iter()
        .map(|&w| (garbling.label_for(w, false), garbling.label_for(w, true)))
        .collect()
}

/// One round's output-decode bits as wire bytes.
fn decode_bit_bytes(circuit: &Circuit, garbling: &Garbling) -> Vec<u8> {
    garbling
        .output_decode_bits(circuit)
        .iter()
        .map(|&b| b as u8)
        .collect()
}

/// Decodes the output labels an evaluator returned for one round.
fn decode_returned_labels(
    circuit: &Circuit,
    garbling: &Garbling,
    raw: &[u8],
) -> Result<Vec<bool>, GcError> {
    let labels: Vec<Label> = raw
        .chunks_exact(16)
        .map(|c| {
            let mut l = [0u8; 16];
            l.copy_from_slice(c);
            l
        })
        .collect();
    garbling
        .decode_output_labels(circuit, &labels)
        .ok_or_else(|| GcError::Protocol("evaluator returned invalid labels".into()))
}

impl YaoEvaluator {
    /// Runs the setup phase (base OTs) once.
    pub fn setup<C: Channel>(
        channel: &mut C,
        group: &OtGroup,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<Self, GcError> {
        Ok(YaoEvaluator {
            ot: OtExtReceiver::setup(channel, group, rng)?,
        })
    }

    /// [`YaoEvaluator::setup`] spending an offline
    /// [`crate::ot::OtSenderPrecomp`] for the base-OT sender role the
    /// evaluator plays in IKNP — transcript-compatible with an ordinary peer.
    pub fn setup_with_base<C: Channel>(
        channel: &mut C,
        group: &OtGroup,
        base: crate::ot::OtSenderPrecomp,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<Self, GcError> {
        Ok(YaoEvaluator {
            ot: OtExtReceiver::setup_with_base(channel, group, base, rng)?,
        })
    }

    /// Receives the garbled circuit, obtains its own labels via OT, evaluates
    /// and (depending on `mode`) learns or returns the output.
    pub fn run<C: Channel>(
        &mut self,
        channel: &mut C,
        circuit: &Circuit,
        my_inputs: &[bool],
        mode: OutputMode,
    ) -> Result<Option<Vec<bool>>, GcError> {
        check_evaluator_inputs(circuit, my_inputs)?;
        // Message 1: tables, garbler input labels, constant labels.
        let msg = channel.recv()?;
        if msg.len() != expected_message_len(circuit) {
            return Err(GcError::Protocol(format!(
                "garbled circuit message has {} bytes, expected {}",
                msg.len(),
                expected_message_len(circuit)
            )));
        }
        let (tables, mut input_labels) = parse_garbler_message(circuit, &msg);

        // OT extension for our own labels.
        let my_labels = self.ot.extend(channel, my_inputs)?;
        for (&wire, label) in circuit.evaluator_inputs.iter().zip(my_labels.iter()) {
            input_labels.push((wire, *label));
        }

        // Evaluate.
        let output_labels = evaluate(circuit, &tables, &input_labels);

        let mut result = None;
        if matches!(mode, OutputMode::EvaluatorOnly | OutputMode::Both) {
            let decode_raw = channel.recv()?;
            if decode_raw.len() != circuit.outputs.len() {
                return Err(GcError::Protocol("bad decode-bit message".into()));
            }
            let decode_bits: Vec<bool> = decode_raw.iter().map(|&b| b == 1).collect();
            result = Some(decode_outputs(&output_labels, &decode_bits));
        }
        if matches!(mode, OutputMode::GarblerOnly | OutputMode::Both) {
            let mut raw = Vec::with_capacity(output_labels.len() * 16);
            for l in &output_labels {
                raw.extend_from_slice(l);
            }
            channel.send(&raw)?;
        }
        Ok(result)
    }

    /// Batched counterpart of [`YaoEvaluator::run`], mirroring
    /// [`YaoGarbler::run_batch`]: one coalesced garbled-circuit frame, one
    /// OT extension spanning every round's choice bits, one output-decoding
    /// exchange. Per-round outputs are identical to sequential evaluation.
    /// An empty batch exchanges no messages.
    pub fn run_batch<C: Channel>(
        &mut self,
        channel: &mut C,
        circuit: &Circuit,
        inputs: &[Vec<bool>],
        mode: OutputMode,
    ) -> Result<Vec<Option<Vec<bool>>>, GcError> {
        let rounds = inputs.len();
        if rounds == 0 {
            return Ok(Vec::new());
        }
        for my_inputs in inputs {
            check_evaluator_inputs(circuit, my_inputs)?;
        }

        // One frame holding every round's tables and labels, split by the
        // fixed per-round length.
        let per_round = expected_message_len(circuit);
        let msg = channel.recv()?;
        if msg.len() != rounds * per_round {
            return Err(GcError::Protocol(format!(
                "batched garbled circuit message has {} bytes, expected {}",
                msg.len(),
                rounds * per_round
            )));
        }
        let parsed: Vec<_> = msg
            .chunks_exact(per_round)
            .map(|chunk| parse_garbler_message(circuit, chunk))
            .collect();

        // One OT extension for all rounds' choice bits.
        let choices: Vec<bool> = inputs.iter().flatten().copied().collect();
        let my_labels = self.ot.extend(channel, &choices)?;

        let n_eval = circuit.evaluator_inputs.len();
        let all_outputs: Vec<Vec<Label>> = parsed
            .into_iter()
            .enumerate()
            .map(|(round, (tables, mut input_labels))| {
                for (&wire, label) in circuit
                    .evaluator_inputs
                    .iter()
                    .zip(&my_labels[round * n_eval..(round + 1) * n_eval])
                {
                    input_labels.push((wire, *label));
                }
                evaluate(circuit, &tables, &input_labels)
            })
            .collect();

        let mut results = vec![None; rounds];
        if matches!(mode, OutputMode::EvaluatorOnly | OutputMode::Both) {
            let decode_raw = channel.recv()?;
            if decode_raw.len() != rounds * circuit.outputs.len() {
                return Err(GcError::Protocol("bad batched decode-bit message".into()));
            }
            for (round, chunk) in decode_raw.chunks_exact(circuit.outputs.len()).enumerate() {
                let decode_bits: Vec<bool> = chunk.iter().map(|&b| b == 1).collect();
                results[round] = Some(decode_outputs(&all_outputs[round], &decode_bits));
            }
        }
        if matches!(mode, OutputMode::GarblerOnly | OutputMode::Both) {
            let mut raw = Vec::with_capacity(rounds * circuit.outputs.len() * 16);
            for output_labels in &all_outputs {
                for l in output_labels {
                    raw.extend_from_slice(l);
                }
            }
            channel.send(&raw)?;
        }
        Ok(results)
    }
}

/// Validates one evaluator round's choice-bit count.
fn check_evaluator_inputs(circuit: &Circuit, my_inputs: &[bool]) -> Result<(), GcError> {
    if my_inputs.len() != circuit.evaluator_inputs.len() {
        return Err(GcError::Protocol(format!(
            "evaluator supplied {} input bits, circuit expects {}",
            my_inputs.len(),
            circuit.evaluator_inputs.len()
        )));
    }
    Ok(())
}

/// Parses one round's first message (already length-checked) into garbled
/// tables and the garbler-provided input labels.
#[allow(clippy::type_complexity)]
fn parse_garbler_message(
    circuit: &Circuit,
    msg: &[u8],
) -> (Vec<[[u8; 16]; 4]>, Vec<(usize, Label)>) {
    let n_tables = circuit.and_count();
    let mut tables = Vec::with_capacity(n_tables);
    for t in 0..n_tables {
        let mut table = [[0u8; 16]; 4];
        for (r, row) in table.iter_mut().enumerate() {
            let off = t * 64 + r * 16;
            row.copy_from_slice(&msg[off..off + 16]);
        }
        tables.push(table);
    }
    let mut input_labels: Vec<(usize, Label)> = Vec::new();
    let mut off = n_tables * 64;
    for &wire in &circuit.garbler_inputs {
        let mut l = [0u8; 16];
        l.copy_from_slice(&msg[off..off + 16]);
        input_labels.push((wire, l));
        off += 16;
    }
    if let Some(w) = circuit.const_zero {
        let mut l = [0u8; 16];
        l.copy_from_slice(&msg[off..off + 16]);
        input_labels.push((w, l));
        off += 16;
    }
    if let Some(w) = circuit.const_one {
        let mut l = [0u8; 16];
        l.copy_from_slice(&msg[off..off + 16]);
        input_labels.push((w, l));
    }
    (tables, input_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{from_bits, spam_compare_circuit, to_bits, topic_argmax_circuit};
    use pretzel_transport::run_two_party;

    fn test_group() -> OtGroup {
        OtGroup::insecure_test_group(64, &mut rand::thread_rng())
    }

    #[test]
    fn interactive_spam_comparison_gives_output_to_evaluator_only() {
        let width = 32;
        let circuit = spam_compare_circuit(width);
        let circuit_b = circuit.clone();
        let group = test_group();
        let group_b = group.clone();
        let mask = (1u64 << width) - 1;

        let d_spam = 90_000u64;
        let d_ham = 70_000u64;
        let n_spam = 123_456_789u64 & mask;
        let n_ham = 987_654_321u64 & mask;

        let mut garbler_bits = to_bits((d_spam + n_spam) & mask, width);
        garbler_bits.extend(to_bits((d_ham + n_ham) & mask, width));
        let mut evaluator_bits = to_bits(n_spam, width);
        evaluator_bits.extend(to_bits(n_ham, width));

        let (g_out, e_out) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                garbler
                    .run(
                        chan,
                        &circuit,
                        &garbler_bits,
                        OutputMode::EvaluatorOnly,
                        &mut rng,
                    )
                    .unwrap()
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut evaluator = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
                evaluator
                    .run(chan, &circuit_b, &evaluator_bits, OutputMode::EvaluatorOnly)
                    .unwrap()
            },
        );
        assert_eq!(g_out, None, "garbler must not learn the spam bit");
        assert_eq!(e_out, Some(vec![true]), "client learns d_spam > d_ham");
    }

    #[test]
    fn interactive_topic_argmax_gives_index_to_garbler() {
        // In the Figure 5 protocol the *client* garbles and the *provider*
        // evaluates; the provider then returns output labels so the garbler
        // (client) can... no: the provider must learn the topic. We model the
        // provider as the evaluator and use Both to check agreement, plus
        // GarblerOnly to check the reverse direction works.
        let width = 24;
        let index_width = 12;
        let candidates = 4;
        let circuit = topic_argmax_circuit(candidates, width, index_width);
        let circuit_b = circuit.clone();
        let group = test_group();
        let group_b = group.clone();
        let mask = (1u64 << width) - 1;

        let values = [40u64, 900, 850, 77];
        let indices = [17u64, 1042, 3, 999];
        let noises = [1111u64, 2222, 3333, 4444];

        let mut garbler_bits = Vec::new();
        for &idx in &indices {
            garbler_bits.extend(to_bits(idx, index_width));
        }
        for &n in &noises {
            garbler_bits.extend(to_bits(n, width));
        }
        let mut evaluator_bits = Vec::new();
        for (v, n) in values.iter().zip(noises.iter()) {
            evaluator_bits.extend(to_bits((v + n) & mask, width));
        }

        let (g_out, e_out) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                garbler
                    .run(chan, &circuit, &garbler_bits, OutputMode::Both, &mut rng)
                    .unwrap()
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut evaluator = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
                evaluator
                    .run(chan, &circuit_b, &evaluator_bits, OutputMode::Both)
                    .unwrap()
            },
        );
        let g_bits = g_out.expect("garbler learns in Both mode");
        let e_bits = e_out.expect("evaluator learns in Both mode");
        assert_eq!(from_bits(&g_bits), 1042);
        assert_eq!(from_bits(&e_bits), 1042);
    }

    #[test]
    fn session_reuse_across_multiple_circuits() {
        // One setup, three emails: the per-email path must not redo base OTs.
        let width = 16;
        let circuit = spam_compare_circuit(width);
        let circuit_b = circuit.clone();
        let group = test_group();
        let group_b = group.clone();
        let mask = (1u64 << width) - 1;
        let cases = [(500u64, 100u64), (100, 500), (300, 300)];

        let (_, e_outs) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                for (d_spam, d_ham) in cases {
                    let n0 = 999u64 & mask;
                    let n1 = 444u64 & mask;
                    let mut bits = to_bits((d_spam + n0) & mask, width);
                    bits.extend(to_bits((d_ham + n1) & mask, width));
                    garbler
                        .run(chan, &circuit, &bits, OutputMode::EvaluatorOnly, &mut rng)
                        .unwrap();
                }
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut evaluator = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
                let mut outs = Vec::new();
                for _ in cases {
                    let n0 = 999u64 & mask;
                    let n1 = 444u64 & mask;
                    let mut bits = to_bits(n0, width);
                    bits.extend(to_bits(n1, width));
                    let out = evaluator
                        .run(chan, &circuit_b, &bits, OutputMode::EvaluatorOnly)
                        .unwrap();
                    outs.push(out.unwrap()[0]);
                }
                outs
            },
        );
        assert_eq!(e_outs, vec![true, false, false]);
    }

    #[test]
    fn precomputed_garbling_gives_the_same_verdicts_as_inline() {
        // Three emails: round 1 and 3 consume offline artifacts, round 2
        // falls back to inline garbling — the evaluator must not notice.
        let width = 16;
        let circuit = spam_compare_circuit(width);
        let circuit_b = circuit.clone();
        let group = test_group();
        let group_b = group.clone();
        let mask = (1u64 << width) - 1;
        let cases = [(500u64, 100u64), (100, 500), (300, 300)];

        let (_, e_outs) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                // Offline phase: two artifacts garbled ahead of time.
                let mut pool = vec![
                    PrecomputedGarbling::garble(&circuit, &mut rng),
                    PrecomputedGarbling::garble(&circuit, &mut rng),
                ];
                for (i, (d_spam, d_ham)) in cases.into_iter().enumerate() {
                    let n0 = 999u64 & mask;
                    let n1 = 444u64 & mask;
                    let mut bits = to_bits((d_spam + n0) & mask, width);
                    bits.extend(to_bits((d_ham + n1) & mask, width));
                    if i == 1 {
                        // Pool dry for this round: inline fallback.
                        garbler
                            .run(chan, &circuit, &bits, OutputMode::EvaluatorOnly, &mut rng)
                            .unwrap();
                    } else {
                        let pre = pool.pop().unwrap();
                        assert!(pre.matches(&circuit));
                        garbler
                            .run_precomputed(chan, &circuit, pre, &bits, OutputMode::EvaluatorOnly)
                            .unwrap();
                    }
                }
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut evaluator = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
                let mut outs = Vec::new();
                for _ in cases {
                    let n0 = 999u64 & mask;
                    let n1 = 444u64 & mask;
                    let mut bits = to_bits(n0, width);
                    bits.extend(to_bits(n1, width));
                    let out = evaluator
                        .run(chan, &circuit_b, &bits, OutputMode::EvaluatorOnly)
                        .unwrap();
                    outs.push(out.unwrap()[0]);
                }
                outs
            },
        );
        assert_eq!(e_outs, vec![true, false, false]);
    }

    #[test]
    fn batched_rounds_match_sequential_verdicts() {
        // Three comparisons in one coalesced batch: the decoded outputs must
        // equal what three sequential rounds produce for the same inputs.
        let width = 16;
        let circuit = spam_compare_circuit(width);
        let circuit_b = circuit.clone();
        let group = test_group();
        let group_b = group.clone();
        let mask = (1u64 << width) - 1;
        let cases = [(500u64, 100u64), (100, 500), (300, 300)];

        let (g_out, e_outs) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                let mut pool = GarblingPool::new();
                // Pool holds only one artifact: draw_many tops up inline.
                pool.refill(&circuit, 1, &mut rng);
                let pres = pool.draw_many(&circuit, cases.len(), &mut rng);
                let inputs: Vec<Vec<bool>> = cases
                    .iter()
                    .map(|(d_spam, d_ham)| {
                        let mut bits = to_bits((d_spam + 999) & mask, width);
                        bits.extend(to_bits((d_ham + 444) & mask, width));
                        bits
                    })
                    .collect();
                garbler
                    .run_batch(chan, &circuit, pres, &inputs, OutputMode::EvaluatorOnly)
                    .unwrap()
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut evaluator = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
                let inputs: Vec<Vec<bool>> = cases
                    .iter()
                    .map(|_| {
                        let mut bits = to_bits(999 & mask, width);
                        bits.extend(to_bits(444 & mask, width));
                        bits
                    })
                    .collect();
                evaluator
                    .run_batch(chan, &circuit_b, &inputs, OutputMode::EvaluatorOnly)
                    .unwrap()
            },
        );
        assert_eq!(g_out, vec![None, None, None], "garbler learns nothing");
        let bits: Vec<bool> = e_outs.into_iter().map(|o| o.unwrap()[0]).collect();
        assert_eq!(bits, vec![true, false, false]);
    }

    #[test]
    fn batched_garbler_only_mode_returns_outputs_to_the_garbler() {
        let width = 16;
        let circuit = spam_compare_circuit(width);
        let circuit_b = circuit.clone();
        let group = test_group();
        let group_b = group.clone();
        let mask = (1u64 << width) - 1;
        let cases = [(9u64, 5u64), (5, 9)];

        let (g_out, _) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                let pres = (0..cases.len())
                    .map(|_| PrecomputedGarbling::garble(&circuit, &mut rng))
                    .collect();
                let inputs: Vec<Vec<bool>> = cases
                    .iter()
                    .map(|(a, b)| {
                        let mut bits = to_bits(a & mask, width);
                        bits.extend(to_bits(b & mask, width));
                        bits
                    })
                    .collect();
                garbler
                    .run_batch(chan, &circuit, pres, &inputs, OutputMode::GarblerOnly)
                    .unwrap()
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut evaluator = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
                let inputs: Vec<Vec<bool>> = cases.iter().map(|_| vec![false; 2 * width]).collect();
                evaluator
                    .run_batch(chan, &circuit_b, &inputs, OutputMode::GarblerOnly)
                    .unwrap()
            },
        );
        let bits: Vec<bool> = g_out.into_iter().map(|o| o.unwrap()[0]).collect();
        assert_eq!(bits, vec![true, false]);
    }

    #[test]
    fn batch_size_mismatch_is_rejected() {
        let circuit = spam_compare_circuit(8);
        let mut rng = rand::thread_rng();
        let pres = vec![PrecomputedGarbling::garble(&circuit, &mut rng)];
        let group = test_group();
        let group_b = group.clone();
        let (g_res, _) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                // Two input sets for one garbling: must fail before traffic.
                garbler.run_batch(
                    chan,
                    &circuit,
                    pres,
                    &[vec![false; 16], vec![false; 16]],
                    OutputMode::EvaluatorOnly,
                )
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let _ = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
            },
        );
        assert!(g_res.is_err());
    }

    #[test]
    fn mismatched_precomputed_garbling_is_rejected() {
        let circuit = spam_compare_circuit(8);
        let other = spam_compare_circuit(16);
        let mut rng = rand::thread_rng();
        let pre = PrecomputedGarbling::garble(&other, &mut rng);
        assert!(!pre.matches(&circuit));
        let group = test_group();
        let group_b = group.clone();
        let (g_res, _) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                garbler.run_precomputed(
                    chan,
                    &circuit,
                    pre,
                    &[false; 16],
                    OutputMode::EvaluatorOnly,
                )
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                let _ = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
            },
        );
        assert!(g_res.is_err());
    }

    #[test]
    fn same_shape_different_circuit_garbling_is_rejected() {
        // Two structurally different circuits with identical wire and gate
        // counts: only the fingerprint tells them apart, and a garbling from
        // one must not validate against the other.
        use crate::circuit::{CircuitBuilder, InputOwner};

        let mut a = CircuitBuilder::new();
        let xa = a.input(InputOwner::Garbler, 1);
        let ya = a.input(InputOwner::Evaluator, 1);
        let out_a = a.and(xa.bits[0], ya.bits[0]);
        a.output(out_a);
        let circuit_a = a.build();

        let mut b = CircuitBuilder::new();
        let xb = b.input(InputOwner::Garbler, 1);
        let yb = b.input(InputOwner::Evaluator, 1);
        let out_b = b.and(yb.bits[0], xb.bits[0]); // swapped: same shape, different wiring
        b.output(out_b);
        let circuit_b = b.build();

        assert_eq!(circuit_a.and_count(), circuit_b.and_count());
        assert_eq!(circuit_a.num_wires, circuit_b.num_wires);
        let pre = PrecomputedGarbling::garble(&circuit_a, &mut rand::thread_rng());
        assert!(pre.matches(&circuit_a));
        assert!(!pre.matches(&circuit_b));
    }

    #[test]
    fn wrong_input_length_is_rejected() {
        let circuit = spam_compare_circuit(8);
        let group = test_group();
        let group_b = group.clone();
        let circuit_b = circuit.clone();
        let (g_res, _e_res) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                let mut garbler = YaoGarbler::setup(chan, &group, &mut rng).unwrap();
                garbler.run(
                    chan,
                    &circuit,
                    &[true; 3],
                    OutputMode::EvaluatorOnly,
                    &mut rng,
                )
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                // Setup must still run so the garbler's setup doesn't block.
                let _ = YaoEvaluator::setup(chan, &group_b, &mut rng).unwrap();
                let _ = circuit_b;
            },
        );
        assert!(g_res.is_err());
    }
}
