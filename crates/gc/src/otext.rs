//! IKNP oblivious-transfer extension.
//!
//! Base OTs (public-key operations) are expensive; the IKNP protocol converts
//! 128 of them — run once, during the Yao session's setup phase — into an
//! unbounded stream of fast symmetric-key OTs, one batch per email. This is
//! the standard mechanism behind the paper's statement that the expensive
//! 2PC machinery "can be incurred during the setup phase and amortized"
//! (§3.3). The extended OTs carry the evaluator's wire labels.
//!
//! Protocol sketch (semi-honest):
//!
//! * Setup: the *extension receiver* R (who will hold choice bits) acts as
//!   base-OT **sender** with 128 random seed pairs; the *extension sender* S
//!   acts as base-OT **receiver** with a random 128-bit string `s`, learning
//!   one seed of each pair.
//! * Extend (m OTs): R expands both seeds of pair `i` into m-bit columns
//!   `G(k⁰_i)`, `G(k¹_i)` and sends `u_i = G(k⁰_i) ⊕ G(k¹_i) ⊕ r`, where `r`
//!   is the m-bit choice vector. S reconstructs a matrix Q whose row `j`
//!   satisfies `q_j = t_j ⊕ (r_j · s)`; it then masks each message pair with
//!   `H(j, q_j)` and `H(j, q_j ⊕ s)`. R unmasks its chosen message with
//!   `H(j, t_j)`.

use rand::Rng;

use pretzel_primitives::{gc_hash, Prg};
use pretzel_transport::Channel;

use crate::garble::Label;
use crate::ot::{
    base_ot_receive, base_ot_send, base_ot_send_precomputed, OtGroup, OtSenderPrecomp, OT_MSG_LEN,
};
use crate::GcError;

/// Security parameter: number of base OTs / matrix columns.
pub const KAPPA: usize = 128;

/// Sender side of OT extension (in Yao: the garbler, who owns label pairs).
pub struct OtExtSender {
    /// The 128-bit base-OT choice string `s`.
    s: [bool; KAPPA],
    /// PRG streams seeded with the chosen base-OT seeds `k^{s_i}_i`.
    seeds: Vec<Prg>,
    /// Extension round counter (domain separation for the row hash).
    round: u64,
}

/// Receiver side of OT extension (in Yao: the evaluator, who owns choices).
pub struct OtExtReceiver {
    /// PRG streams for both seeds of every base pair.
    seeds0: Vec<Prg>,
    seeds1: Vec<Prg>,
    round: u64,
}

impl OtExtSender {
    /// Runs the setup phase (acts as base-OT receiver with random choices).
    pub fn setup<C: Channel>(
        channel: &mut C,
        group: &OtGroup,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<Self, GcError> {
        let s: [bool; KAPPA] = std::array::from_fn(|_| rng.gen());
        let received = base_ot_receive(channel, group, &s, rng)?;
        let seeds = received.iter().map(Prg::new).collect();
        Ok(OtExtSender { s, seeds, round: 0 })
    }

    /// Sends one batch of message pairs; the receiver obtains exactly one
    /// label of each pair according to its choice bits.
    pub fn extend<C: Channel>(
        &mut self,
        channel: &mut C,
        pairs: &[(Label, Label)],
    ) -> Result<(), GcError> {
        let m = pairs.len();
        if m == 0 {
            return Ok(());
        }
        let col_bytes = m.div_ceil(8);

        // Receive the correction matrix U (KAPPA columns of m bits).
        let u_flat = channel.recv()?;
        if u_flat.len() != KAPPA * col_bytes {
            return Err(GcError::Protocol("bad OT-extension matrix size".into()));
        }

        // Build Q columns: q_i = G(k^{s_i}_i) XOR (s_i ? u_i : 0).
        let mut q_cols: Vec<Vec<u8>> = Vec::with_capacity(KAPPA);
        for i in 0..KAPPA {
            let mut col = self.seeds[i].bytes(col_bytes);
            if self.s[i] {
                for (c, u) in col
                    .iter_mut()
                    .zip(&u_flat[i * col_bytes..(i + 1) * col_bytes])
                {
                    *c ^= u;
                }
            }
            q_cols.push(col);
        }

        // Transpose to rows, mask the message pairs and send.
        let s_block = bools_to_label(&self.s);
        let mut payload = Vec::with_capacity(m * 32);
        for (j, (m0, m1)) in pairs.iter().enumerate() {
            let q_row = extract_row(&q_cols, j);
            let tweak = self.round.wrapping_mul(1 << 20).wrapping_add(j as u64);
            let pad0 = gc_hash(&q_row, &[0u8; 16], tweak);
            let q_xor_s = xor16(&q_row, &s_block);
            let pad1 = gc_hash(&q_xor_s, &[0u8; 16], tweak);
            payload.extend_from_slice(&xor16(m0, &pad0));
            payload.extend_from_slice(&xor16(m1, &pad1));
        }
        channel.send(&payload)?;
        self.round += 1;
        Ok(())
    }
}

impl OtExtReceiver {
    /// Runs the setup phase (acts as base-OT sender with random seed pairs).
    pub fn setup<C: Channel>(
        channel: &mut C,
        group: &OtGroup,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<Self, GcError> {
        let pairs: Vec<([u8; OT_MSG_LEN], [u8; OT_MSG_LEN])> =
            (0..KAPPA).map(|_| (rng.gen(), rng.gen())).collect();
        base_ot_send(channel, group, &pairs, rng)?;
        Ok(OtExtReceiver {
            seeds0: pairs.iter().map(|(k0, _)| Prg::new(k0)).collect(),
            seeds1: pairs.iter().map(|(_, k1)| Prg::new(k1)).collect(),
            round: 0,
        })
    }

    /// [`OtExtReceiver::setup`] spending an offline [`OtSenderPrecomp`]
    /// (e.g. drawn from a fleet-wide precompute bank): the base-OT sender
    /// exponentiations were done by a background producer, so setup only
    /// performs the per-pair work. Transcript-compatible with the peer's
    /// ordinary [`OtExtSender::setup`].
    pub fn setup_with_base<C: Channel>(
        channel: &mut C,
        group: &OtGroup,
        base: OtSenderPrecomp,
        rng: &mut (impl Rng + ?Sized),
    ) -> Result<Self, GcError> {
        let pairs: Vec<([u8; OT_MSG_LEN], [u8; OT_MSG_LEN])> =
            (0..KAPPA).map(|_| (rng.gen(), rng.gen())).collect();
        base_ot_send_precomputed(channel, group, base, &pairs)?;
        Ok(OtExtReceiver {
            seeds0: pairs.iter().map(|(k0, _)| Prg::new(k0)).collect(),
            seeds1: pairs.iter().map(|(_, k1)| Prg::new(k1)).collect(),
            round: 0,
        })
    }

    /// Receives one batch of OTs for the given choice bits.
    pub fn extend<C: Channel>(
        &mut self,
        channel: &mut C,
        choices: &[bool],
    ) -> Result<Vec<Label>, GcError> {
        let m = choices.len();
        if m == 0 {
            return Ok(Vec::new());
        }
        let col_bytes = m.div_ceil(8);
        let r_bytes = bools_to_bytes(choices);

        // T columns and the correction matrix U.
        let mut t_cols: Vec<Vec<u8>> = Vec::with_capacity(KAPPA);
        let mut u_flat = Vec::with_capacity(KAPPA * col_bytes);
        for i in 0..KAPPA {
            let t_col = self.seeds0[i].bytes(col_bytes);
            let g1 = self.seeds1[i].bytes(col_bytes);
            for b in 0..col_bytes {
                u_flat.push(t_col[b] ^ g1[b] ^ r_bytes[b]);
            }
            t_cols.push(t_col);
        }
        channel.send(&u_flat)?;

        // Receive masked pairs and unmask the chosen one per row.
        let payload = channel.recv()?;
        if payload.len() != m * 32 {
            return Err(GcError::Protocol("bad OT-extension payload size".into()));
        }
        let mut out = Vec::with_capacity(m);
        for (j, &c) in choices.iter().enumerate() {
            let t_row = extract_row(&t_cols, j);
            let tweak = self.round.wrapping_mul(1 << 20).wrapping_add(j as u64);
            let pad = gc_hash(&t_row, &[0u8; 16], tweak);
            let offset = j * 32 + if c { 16 } else { 0 };
            let mut label = [0u8; 16];
            label.copy_from_slice(&payload[offset..offset + 16]);
            out.push(xor16(&label, &pad));
        }
        self.round += 1;
        Ok(out)
    }
}

fn xor16(a: &Label, b: &Label) -> Label {
    let mut out = [0u8; 16];
    for i in 0..16 {
        out[i] = a[i] ^ b[i];
    }
    out
}

fn bools_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn bools_to_label(bits: &[bool; KAPPA]) -> Label {
    let bytes = bools_to_bytes(bits);
    let mut out = [0u8; 16];
    out.copy_from_slice(&bytes[..16]);
    out
}

/// Extracts row `j` (128 bits) from a set of KAPPA bit-columns.
fn extract_row(cols: &[Vec<u8>], j: usize) -> Label {
    let mut row = [0u8; 16];
    for (i, col) in cols.iter().enumerate() {
        let bit = (col[j / 8] >> (j % 8)) & 1;
        if bit == 1 {
            row[i / 8] |= 1 << (i % 8);
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_transport::run_two_party;
    use rand::Rng;

    #[test]
    fn extension_delivers_chosen_labels_across_multiple_rounds() {
        let group = OtGroup::insecure_test_group(64, &mut rand::thread_rng());
        let group_b = group.clone();
        let mut rng = rand::thread_rng();

        // Two rounds with different sizes, simulating two emails.
        let rounds: Vec<usize> = vec![40, 129];
        let all_pairs: Vec<Vec<(Label, Label)>> = rounds
            .iter()
            .map(|&m| (0..m).map(|_| (rng.gen(), rng.gen())).collect())
            .collect();
        let all_choices: Vec<Vec<bool>> = rounds
            .iter()
            .map(|&m| (0..m).map(|_| rng.gen()).collect())
            .collect();

        let pairs_for_sender = all_pairs.clone();
        let choices_for_recv = all_choices.clone();
        let (send_res, recv_res) = run_two_party(
            move |chan| -> Result<(), GcError> {
                let mut rng = rand::thread_rng();
                let mut sender = OtExtSender::setup(chan, &group, &mut rng)?;
                for pairs in &pairs_for_sender {
                    sender.extend(chan, pairs)?;
                }
                Ok(())
            },
            move |chan| -> Result<Vec<Vec<Label>>, GcError> {
                let mut rng = rand::thread_rng();
                let mut receiver = OtExtReceiver::setup(chan, &group_b, &mut rng)?;
                let mut got = Vec::new();
                for choices in &choices_for_recv {
                    got.push(receiver.extend(chan, choices)?);
                }
                Ok(got)
            },
        );
        send_res.unwrap();
        let received = recv_res.unwrap();
        for (round, (pairs, choices)) in all_pairs.iter().zip(all_choices.iter()).enumerate() {
            for j in 0..pairs.len() {
                let expected = if choices[j] { pairs[j].1 } else { pairs[j].0 };
                assert_eq!(received[round][j], expected, "round {round}, OT {j}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let group = OtGroup::insecure_test_group(64, &mut rand::thread_rng());
        let group_b = group.clone();
        let (send_res, recv_res) = run_two_party(
            move |chan| -> Result<(), GcError> {
                let mut rng = rand::thread_rng();
                let mut sender = OtExtSender::setup(chan, &group, &mut rng)?;
                sender.extend(chan, &[])
            },
            move |chan| -> Result<Vec<Label>, GcError> {
                let mut rng = rand::thread_rng();
                let mut receiver = OtExtReceiver::setup(chan, &group_b, &mut rng)?;
                receiver.extend(chan, &[])
            },
        );
        send_res.unwrap();
        assert!(recv_res.unwrap().is_empty());
    }

    #[test]
    fn bit_packing_helpers() {
        let bits = vec![true, false, false, true, true, false, false, false, true];
        let bytes = bools_to_bytes(&bits);
        assert_eq!(bytes, vec![0b0001_1001, 0b0000_0001]);
        let cols: Vec<Vec<u8>> = (0..KAPPA).map(|i| vec![(i % 256) as u8; 2]).collect();
        let row = extract_row(&cols, 3);
        // Column i contributes bit (i & 0x08 != 0) at row 3 because col value = i.
        for i in 0..KAPPA {
            let expected = (i as u8 >> 3) & 1;
            let got = (row[i / 8] >> (i % 8)) & 1;
            assert_eq!(got, expected);
        }
    }
}
