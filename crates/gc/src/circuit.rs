//! Boolean circuit representation and builder.
//!
//! Pretzel evaluates only a handful of functions inside Yao (paper §3.2):
//! b-bit integer comparison after removing blinding (spam filtering) and
//! argmax over B′ blinded values with index selection (topic extraction,
//! Figure 5 step 5). The builder below provides the adders, subtractors,
//! comparators and multiplexers those functions are assembled from, plus a
//! plaintext evaluator used by tests to cross-check the garbled evaluation.

/// Identifier of a wire in a circuit.
pub type WireId = usize;

/// A boolean gate. `Xor` and `Inv` are "free" under free-XOR garbling; only
/// `And` gates produce garbled tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// out = a XOR b
    Xor { a: WireId, b: WireId, out: WireId },
    /// out = a AND b
    And { a: WireId, b: WireId, out: WireId },
    /// out = NOT a
    Inv { a: WireId, out: WireId },
}

/// Which party supplies a given input wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputOwner {
    /// The garbler (circuit constructor).
    Garbler,
    /// The evaluator (obtains labels through OT).
    Evaluator,
}

/// A boolean circuit over two-party inputs.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    /// Total number of wires (inputs + constants + gate outputs).
    pub num_wires: usize,
    /// Input wires owned by the garbler, in argument order.
    pub garbler_inputs: Vec<WireId>,
    /// Input wires owned by the evaluator, in argument order.
    pub evaluator_inputs: Vec<WireId>,
    /// Wire that is constant zero (always wire 0 if used).
    pub const_zero: Option<WireId>,
    /// Wire that is constant one.
    pub const_one: Option<WireId>,
    /// Gates in topological order.
    pub gates: Vec<Gate>,
    /// Output wires, in order.
    pub outputs: Vec<WireId>,
}

impl Circuit {
    /// Number of AND gates (the cost driver for garbling: each produces a
    /// 4-row table; XOR and INV are free).
    pub fn and_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::And { .. }))
            .count()
    }

    /// FNV-1a fingerprint of the full circuit structure — wire counts,
    /// input/output assignments, constants, and every gate's kind and
    /// wiring. Two circuits with equal fingerprints are (up to hash
    /// collision) the same function, so a precomputed garbling tagged with
    /// this value can be validated against the circuit it is consumed with,
    /// not just against matching wire/gate counts.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_wires as u64);
        mix(self.garbler_inputs.len() as u64);
        for &w in &self.garbler_inputs {
            mix(w as u64);
        }
        mix(self.evaluator_inputs.len() as u64);
        for &w in &self.evaluator_inputs {
            mix(w as u64);
        }
        mix(self.const_zero.map_or(u64::MAX, |w| w as u64));
        mix(self.const_one.map_or(u64::MAX, |w| w as u64));
        mix(self.gates.len() as u64);
        for g in &self.gates {
            match *g {
                Gate::Xor { a, b, out } => {
                    mix(0);
                    mix(a as u64);
                    mix(b as u64);
                    mix(out as u64);
                }
                Gate::And { a, b, out } => {
                    mix(1);
                    mix(a as u64);
                    mix(b as u64);
                    mix(out as u64);
                }
                Gate::Inv { a, out } => {
                    mix(2);
                    mix(a as u64);
                    mix(out as u64);
                }
            }
        }
        mix(self.outputs.len() as u64);
        for &w in &self.outputs {
            mix(w as u64);
        }
        h
    }

    /// Evaluates the circuit on plaintext bits (test oracle).
    pub fn eval_plain(&self, garbler_bits: &[bool], evaluator_bits: &[bool]) -> Vec<bool> {
        assert_eq!(garbler_bits.len(), self.garbler_inputs.len());
        assert_eq!(evaluator_bits.len(), self.evaluator_inputs.len());
        let mut values = vec![false; self.num_wires];
        if let Some(w) = self.const_zero {
            values[w] = false;
        }
        if let Some(w) = self.const_one {
            values[w] = true;
        }
        for (wire, &bit) in self.garbler_inputs.iter().zip(garbler_bits) {
            values[*wire] = bit;
        }
        for (wire, &bit) in self.evaluator_inputs.iter().zip(evaluator_bits) {
            values[*wire] = bit;
        }
        for gate in &self.gates {
            match *gate {
                Gate::Xor { a, b, out } => values[out] = values[a] ^ values[b],
                Gate::And { a, b, out } => values[out] = values[a] & values[b],
                Gate::Inv { a, out } => values[out] = !values[a],
            }
        }
        self.outputs.iter().map(|&w| values[w]).collect()
    }
}

/// A little-endian group of wires representing an unsigned integer.
#[derive(Clone, Debug)]
pub struct WireBundle {
    /// Bit wires, least significant first.
    pub bits: Vec<WireId>,
}

impl WireBundle {
    /// Bit width.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Incremental circuit builder.
#[derive(Default)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_wire(&mut self) -> WireId {
        let id = self.circuit.num_wires;
        self.circuit.num_wires += 1;
        id
    }

    /// Adds an input bundle of `width` bits owned by `owner`.
    pub fn input(&mut self, owner: InputOwner, width: usize) -> WireBundle {
        let bits: Vec<WireId> = (0..width).map(|_| self.fresh_wire()).collect();
        match owner {
            InputOwner::Garbler => self.circuit.garbler_inputs.extend(&bits),
            InputOwner::Evaluator => self.circuit.evaluator_inputs.extend(&bits),
        }
        WireBundle { bits }
    }

    /// Returns the constant-zero wire (created on first use).
    pub fn zero(&mut self) -> WireId {
        if let Some(w) = self.circuit.const_zero {
            return w;
        }
        let w = self.fresh_wire();
        self.circuit.const_zero = Some(w);
        w
    }

    /// Returns the constant-one wire (created on first use).
    pub fn one(&mut self) -> WireId {
        if let Some(w) = self.circuit.const_one {
            return w;
        }
        let w = self.fresh_wire();
        self.circuit.const_one = Some(w);
        w
    }

    /// out = a XOR b
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh_wire();
        self.circuit.gates.push(Gate::Xor { a, b, out });
        out
    }

    /// out = a AND b
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        let out = self.fresh_wire();
        self.circuit.gates.push(Gate::And { a, b, out });
        out
    }

    /// out = NOT a
    pub fn not(&mut self, a: WireId) -> WireId {
        let out = self.fresh_wire();
        self.circuit.gates.push(Gate::Inv { a, out });
        out
    }

    /// out = a OR b  (De Morgan: NOT(NOT a AND NOT b))
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let na = self.not(a);
        let nb = self.not(b);
        let both = self.and(na, nb);
        self.not(both)
    }

    /// out = selector ? b : a (2-to-1 multiplexer on single bits).
    pub fn mux(&mut self, selector: WireId, a: WireId, b: WireId) -> WireId {
        // a XOR (selector AND (a XOR b))
        let diff = self.xor(a, b);
        let gated = self.and(selector, diff);
        self.xor(a, gated)
    }

    /// Bundle-wide multiplexer: selector ? b : a.
    pub fn mux_bundle(&mut self, selector: WireId, a: &WireBundle, b: &WireBundle) -> WireBundle {
        assert_eq!(a.width(), b.width(), "mux operands must have equal width");
        let bits = a
            .bits
            .iter()
            .zip(b.bits.iter())
            .map(|(&x, &y)| self.mux(selector, x, y))
            .collect();
        WireBundle { bits }
    }

    /// Ripple-carry addition modulo 2^width.
    pub fn add(&mut self, a: &WireBundle, b: &WireBundle) -> WireBundle {
        assert_eq!(a.width(), b.width(), "add operands must have equal width");
        let mut carry = self.zero();
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits.iter().zip(b.bits.iter()) {
            let xy = self.xor(x, y);
            let sum = self.xor(xy, carry);
            // carry' = (x AND y) XOR (carry AND (x XOR y))
            let xand = self.and(x, y);
            let cand = self.and(carry, xy);
            carry = self.xor(xand, cand);
            bits.push(sum);
        }
        WireBundle { bits }
    }

    /// Subtraction modulo 2^width (a - b).
    pub fn sub(&mut self, a: &WireBundle, b: &WireBundle) -> WireBundle {
        assert_eq!(a.width(), b.width(), "sub operands must have equal width");
        // a - b = a + NOT(b) + 1, via a ripple borrow with initial carry 1.
        let mut carry = self.one();
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits.iter().zip(b.bits.iter()) {
            let ny = self.not(y);
            let xy = self.xor(x, ny);
            let sum = self.xor(xy, carry);
            let xand = self.and(x, ny);
            let cand = self.and(carry, xy);
            carry = self.xor(xand, cand);
            bits.push(sum);
        }
        WireBundle { bits }
    }

    /// Unsigned greater-than: returns a single wire = (a > b).
    pub fn gt(&mut self, a: &WireBundle, b: &WireBundle) -> WireId {
        assert_eq!(a.width(), b.width(), "gt operands must have equal width");
        // Scan from least to most significant: gt = (a_i AND NOT b_i) OR (eq_i AND gt_prev)
        let mut gt = self.zero();
        for (&x, &y) in a.bits.iter().zip(b.bits.iter()) {
            let ny = self.not(y);
            let x_gt_y = self.and(x, ny);
            let x_eq_y = {
                let x_xor_y = self.xor(x, y);
                self.not(x_xor_y)
            };
            let carry_gt = self.and(x_eq_y, gt);
            gt = self.or(x_gt_y, carry_gt);
        }
        gt
    }

    /// Unsigned greater-or-equal: (a >= b).
    pub fn ge(&mut self, a: &WireBundle, b: &WireBundle) -> WireId {
        let lt = self.gt(b, a);
        self.not(lt)
    }

    /// Equality over bundles.
    pub fn eq(&mut self, a: &WireBundle, b: &WireBundle) -> WireId {
        assert_eq!(a.width(), b.width(), "eq operands must have equal width");
        let mut acc = self.one();
        for (&x, &y) in a.bits.iter().zip(b.bits.iter()) {
            let x_xor_y = self.xor(x, y);
            let bit_eq = self.not(x_xor_y);
            acc = self.and(acc, bit_eq);
        }
        acc
    }

    /// Marks a single wire as a circuit output.
    pub fn output(&mut self, wire: WireId) {
        self.circuit.outputs.push(wire);
    }

    /// Marks a bundle as circuit outputs (LSB first).
    pub fn output_bundle(&mut self, bundle: &WireBundle) {
        self.circuit.outputs.extend(&bundle.bits);
    }

    /// Finalizes the circuit.
    pub fn build(self) -> Circuit {
        self.circuit
    }
}

/// Converts an integer to `width` little-endian bits.
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Converts little-endian bits back to an integer.
pub fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Pretzel's spam-filtering circuit (paper §3.3 with §4.2 blinding):
///
/// * Garbler (provider) inputs: blinded per-class dot products
///   `d_spam + n_spam` and `d_ham + n_ham`, each `width` bits.
/// * Evaluator (client) inputs: the blinding values `n_spam`, `n_ham`.
/// * Output (revealed to the client only): 1 bit — `d_spam > d_ham`.
pub fn spam_compare_circuit(width: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let blinded_spam = b.input(InputOwner::Garbler, width);
    let blinded_ham = b.input(InputOwner::Garbler, width);
    let noise_spam = b.input(InputOwner::Evaluator, width);
    let noise_ham = b.input(InputOwner::Evaluator, width);
    let d_spam = b.sub(&blinded_spam, &noise_spam);
    let d_ham = b.sub(&blinded_ham, &noise_ham);
    let is_spam = b.gt(&d_spam, &d_ham);
    b.output(is_spam);
    b.build()
}

/// Pretzel's candidate-topic argmax circuit (paper Figure 5, step 5):
///
/// * Garbler (client) inputs: the B′ candidate indices `S'[j]`
///   (`index_width` bits each) and the B′ blinding values (`width` bits each).
/// * Evaluator (provider) inputs: the B′ blinded dot products.
/// * Output (revealed to the provider): the index `S'[argmax_j d_j]`,
///   `index_width` bits.
///
/// Note the role reversal versus spam: here the *client* garbles, which is
/// what gives the client the paper's "plausible deniability" opt-out (§4.4).
pub fn topic_argmax_circuit(candidates: usize, width: usize, index_width: usize) -> Circuit {
    assert!(candidates >= 1);
    let mut b = CircuitBuilder::new();
    let indices: Vec<WireBundle> = (0..candidates)
        .map(|_| b.input(InputOwner::Garbler, index_width))
        .collect();
    let noises: Vec<WireBundle> = (0..candidates)
        .map(|_| b.input(InputOwner::Garbler, width))
        .collect();
    let blinded: Vec<WireBundle> = (0..candidates)
        .map(|_| b.input(InputOwner::Evaluator, width))
        .collect();

    // Unblind each candidate, then fold an argmax.
    let mut best_value = b.sub(&blinded[0], &noises[0]);
    let mut best_index = indices[0].clone();
    for j in 1..candidates {
        let value = b.sub(&blinded[j], &noises[j]);
        let better = b.gt(&value, &best_value);
        best_value = b.mux_bundle(better, &best_value, &value);
        best_index = b.mux_bundle(better, &best_index, &indices[j]);
    }
    b.output_bundle(&best_index);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_u64(circuit: &Circuit, g: &[(u64, usize)], e: &[(u64, usize)]) -> u64 {
        let g_bits: Vec<bool> = g.iter().flat_map(|&(v, w)| to_bits(v, w)).collect();
        let e_bits: Vec<bool> = e.iter().flat_map(|&(v, w)| to_bits(v, w)).collect();
        from_bits(&circuit.eval_plain(&g_bits, &e_bits))
    }

    #[test]
    fn adder_matches_integer_addition() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 16);
        let y = b.input(InputOwner::Evaluator, 16);
        let sum = b.add(&x, &y);
        b.output_bundle(&sum);
        let circuit = b.build();
        for (a_val, b_val) in [
            (0u64, 0u64),
            (1, 1),
            (12345, 54321),
            (65535, 1),
            (40000, 40000),
        ] {
            let got = eval_u64(&circuit, &[(a_val, 16)], &[(b_val, 16)]);
            assert_eq!(got, (a_val + b_val) & 0xFFFF);
        }
    }

    #[test]
    fn subtractor_matches_wrapping_subtraction() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 16);
        let y = b.input(InputOwner::Evaluator, 16);
        let diff = b.sub(&x, &y);
        b.output_bundle(&diff);
        let circuit = b.build();
        for (a_val, b_val) in [
            (10u64, 3u64),
            (3, 10),
            (65535, 65535),
            (0, 1),
            (50000, 1234),
        ] {
            let got = eval_u64(&circuit, &[(a_val, 16)], &[(b_val, 16)]);
            assert_eq!(got, (a_val.wrapping_sub(b_val)) & 0xFFFF);
        }
    }

    #[test]
    fn comparator_and_equality() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 12);
        let y = b.input(InputOwner::Evaluator, 12);
        let gt = b.gt(&x, &y);
        let ge = b.ge(&x, &y);
        let eq = b.eq(&x, &y);
        b.output(gt);
        b.output(ge);
        b.output(eq);
        let circuit = b.build();
        for (a_val, b_val) in [(5u64, 3u64), (3, 5), (7, 7), (0, 4095), (4095, 0)] {
            let bits = circuit.eval_plain(&to_bits(a_val, 12), &to_bits(b_val, 12));
            assert_eq!(bits[0], a_val > b_val, "gt({a_val},{b_val})");
            assert_eq!(bits[1], a_val >= b_val, "ge({a_val},{b_val})");
            assert_eq!(bits[2], a_val == b_val, "eq({a_val},{b_val})");
        }
    }

    #[test]
    fn mux_selects_correctly() {
        let mut b = CircuitBuilder::new();
        let sel = b.input(InputOwner::Garbler, 1);
        let x = b.input(InputOwner::Evaluator, 8);
        let y = b.input(InputOwner::Evaluator, 8);
        let out = b.mux_bundle(sel.bits[0], &x, &y);
        b.output_bundle(&out);
        let circuit = b.build();
        let mut e_bits = to_bits(0xAB, 8);
        e_bits.extend(to_bits(0xCD, 8));
        assert_eq!(from_bits(&circuit.eval_plain(&[false], &e_bits)), 0xAB);
        assert_eq!(from_bits(&circuit.eval_plain(&[true], &e_bits)), 0xCD);
    }

    #[test]
    fn spam_circuit_compares_unblinded_values() {
        let width = 24;
        let circuit = spam_compare_circuit(width);
        let cases = [
            (1000u64, 900u64, true),
            (900, 1000, false),
            (500, 500, false),
        ];
        for (d_spam, d_ham, expect) in cases {
            let n_spam = 123456u64 % (1 << width);
            let n_ham = 987654u64 % (1 << width);
            let blinded_spam = (d_spam + n_spam) & ((1 << width) - 1);
            let blinded_ham = (d_ham + n_ham) & ((1 << width) - 1);
            let mut g_bits = to_bits(blinded_spam, width);
            g_bits.extend(to_bits(blinded_ham, width));
            let mut e_bits = to_bits(n_spam, width);
            e_bits.extend(to_bits(n_ham, width));
            let out = circuit.eval_plain(&g_bits, &e_bits);
            assert_eq!(out, vec![expect], "d_spam={d_spam} d_ham={d_ham}");
        }
    }

    #[test]
    fn topic_circuit_returns_index_of_maximum() {
        let width = 20;
        let index_width = 12;
        let candidates = 5;
        let circuit = topic_argmax_circuit(candidates, width, index_width);
        let values = [400u64, 900, 150, 899, 650];
        let indices = [17u64, 1042, 3, 999, 512];
        let noises = [11u64, 22, 33, 44, 55];
        let mask = (1u64 << width) - 1;

        let mut g_bits = Vec::new();
        for &idx in &indices {
            g_bits.extend(to_bits(idx, index_width));
        }
        for &n in &noises {
            g_bits.extend(to_bits(n, width));
        }
        let mut e_bits = Vec::new();
        for (v, n) in values.iter().zip(noises.iter()) {
            e_bits.extend(to_bits((v + n) & mask, width));
        }
        let out = from_bits(&circuit.eval_plain(&g_bits, &e_bits));
        assert_eq!(
            out, 1042,
            "argmax of {values:?} is position 1 -> index 1042"
        );
    }

    #[test]
    fn and_count_reflects_only_and_gates() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 8);
        let y = b.input(InputOwner::Evaluator, 8);
        let _ = b.add(&x, &y);
        let circuit_adder = b.build();
        // A ripple-carry adder uses 2 AND gates per bit.
        assert_eq!(circuit_adder.and_count(), 16);
    }

    #[test]
    fn bit_conversion_roundtrip() {
        for v in [0u64, 1, 255, 256, 0xFFFF_FFFF, 0xDEAD_BEEF] {
            assert_eq!(from_bits(&to_bits(v, 64)), v);
        }
        assert_eq!(from_bits(&to_bits(0x1FF, 8)), 0xFF, "truncates to width");
    }
}
