//! Garbling and evaluation of boolean circuits (Yao's protocol, paper §3.2).
//!
//! The construction is the classic point-and-permute garbling with the
//! free-XOR optimization:
//!
//! * Every wire `w` has two 128-bit labels `W⁰_w` and `W¹_w = W⁰_w ⊕ Δ`,
//!   where `Δ` is a global secret with its least-significant bit set to 1 so
//!   the two labels of a wire always have different "color" bits.
//! * XOR gates are free (`W⁰_out = W⁰_a ⊕ W⁰_b`), INV gates are free
//!   (`W⁰_out = W⁰_a ⊕ Δ`), and each AND gate produces a 4-row table where
//!   row `(i, j)` encrypts the correct output label under the hash of the
//!   input labels whose color bits are `(i, j)`.
//!
//! The paper's Yao microbenchmarks (Figure 6: 71 µs / 2.5 KB for a 32-bit
//! comparison) are regenerated against this implementation by
//! `fig06_microbench`.

use rand::Rng;

use pretzel_primitives::gc_hash;

use crate::circuit::{Circuit, Gate, WireId};

/// A 128-bit wire label.
pub type Label = [u8; 16];

fn xor_label(a: &Label, b: &Label) -> Label {
    let mut out = [0u8; 16];
    for i in 0..16 {
        out[i] = a[i] ^ b[i];
    }
    out
}

fn color(l: &Label) -> bool {
    l[0] & 1 == 1
}

/// The garbler's secret garbling state for one circuit.
pub struct Garbling {
    /// Global free-XOR offset (lsb = 1).
    pub delta: Label,
    /// Zero-label of every wire.
    pub zero_labels: Vec<Label>,
    /// Garbled tables, one per AND gate, in gate order.
    pub tables: Vec<[Label; 4]>,
}

impl Garbling {
    /// The label encoding bit `value` on `wire`.
    pub fn label_for(&self, wire: WireId, value: bool) -> Label {
        if value {
            xor_label(&self.zero_labels[wire], &self.delta)
        } else {
            self.zero_labels[wire]
        }
    }

    /// Output decoding information: the color bit of each output wire's
    /// zero-label. Sending this to the evaluator lets it decode outputs.
    pub fn output_decode_bits(&self, circuit: &Circuit) -> Vec<bool> {
        circuit
            .outputs
            .iter()
            .map(|&w| color(&self.zero_labels[w]))
            .collect()
    }

    /// Decodes output labels returned by the evaluator (garbler-learns mode).
    /// Returns `None` if a label matches neither of the wire's labels, which
    /// indicates a protocol violation.
    pub fn decode_output_labels(&self, circuit: &Circuit, labels: &[Label]) -> Option<Vec<bool>> {
        if labels.len() != circuit.outputs.len() {
            return None;
        }
        let mut bits = Vec::with_capacity(labels.len());
        for (&wire, label) in circuit.outputs.iter().zip(labels.iter()) {
            if *label == self.zero_labels[wire] {
                bits.push(false);
            } else if *label == xor_label(&self.zero_labels[wire], &self.delta) {
                bits.push(true);
            } else {
                return None;
            }
        }
        Some(bits)
    }
}

/// Garbles `circuit` using randomness from `rng`.
pub fn garble<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> Garbling {
    let mut delta: Label = rng.gen();
    delta[0] |= 1; // ensure distinct color bits

    let mut zero_labels: Vec<Label> = vec![[0u8; 16]; circuit.num_wires];
    // Fresh labels for all input and constant wires.
    for &w in circuit
        .garbler_inputs
        .iter()
        .chain(circuit.evaluator_inputs.iter())
    {
        zero_labels[w] = rng.gen();
    }
    if let Some(w) = circuit.const_zero {
        zero_labels[w] = rng.gen();
    }
    if let Some(w) = circuit.const_one {
        zero_labels[w] = rng.gen();
    }

    let mut tables = Vec::with_capacity(circuit.and_count());
    for gate in &circuit.gates {
        match *gate {
            Gate::Xor { a, b, out } => {
                zero_labels[out] = xor_label(&zero_labels[a], &zero_labels[b]);
            }
            Gate::Inv { a, out } => {
                zero_labels[out] = xor_label(&zero_labels[a], &delta);
            }
            Gate::And { a, b, out } => {
                let w_out0: Label = rng.gen();
                zero_labels[out] = w_out0;
                let p_a = color(&zero_labels[a]);
                let p_b = color(&zero_labels[b]);
                let gate_id = out as u64;
                let mut table = [[0u8; 16]; 4];
                for i in 0..2u8 {
                    for j in 0..2u8 {
                        // The evaluator holding labels with colors (i, j) has
                        // semantic values (i ^ p_a, j ^ p_b).
                        let va = (i == 1) ^ p_a;
                        let vb = (j == 1) ^ p_b;
                        let label_a = if va {
                            xor_label(&zero_labels[a], &delta)
                        } else {
                            zero_labels[a]
                        };
                        let label_b = if vb {
                            xor_label(&zero_labels[b], &delta)
                        } else {
                            zero_labels[b]
                        };
                        let out_label = if va && vb {
                            xor_label(&w_out0, &delta)
                        } else {
                            w_out0
                        };
                        let pad = gc_hash(&label_a, &label_b, gate_id);
                        table[(i * 2 + j) as usize] = xor_label(&pad, &out_label);
                    }
                }
                tables.push(table);
            }
        }
    }

    Garbling {
        delta,
        zero_labels,
        tables,
    }
}

/// Evaluates a garbled circuit given active labels for every input and
/// constant wire. Returns the active labels of the output wires.
pub fn evaluate(
    circuit: &Circuit,
    tables: &[[Label; 4]],
    input_labels: &[(WireId, Label)],
) -> Vec<Label> {
    let mut labels: Vec<Option<Label>> = vec![None; circuit.num_wires];
    for (wire, label) in input_labels {
        labels[*wire] = Some(*label);
    }
    let mut table_idx = 0;
    for gate in &circuit.gates {
        match *gate {
            Gate::Xor { a, b, out } => {
                let la = labels[a].expect("missing label for XOR input");
                let lb = labels[b].expect("missing label for XOR input");
                labels[out] = Some(xor_label(&la, &lb));
            }
            Gate::Inv { a, out } => {
                labels[out] = labels[a];
            }
            Gate::And { a, b, out } => {
                let la = labels[a].expect("missing label for AND input");
                let lb = labels[b].expect("missing label for AND input");
                let i = color(&la) as usize;
                let j = color(&lb) as usize;
                let pad = gc_hash(&la, &lb, out as u64);
                labels[out] = Some(xor_label(&pad, &tables[table_idx][i * 2 + j]));
                table_idx += 1;
            }
        }
    }
    circuit
        .outputs
        .iter()
        .map(|&w| labels[w].expect("missing output label"))
        .collect()
}

/// Decodes output labels using the garbler-provided decode bits
/// (evaluator-learns mode).
pub fn decode_outputs(output_labels: &[Label], decode_bits: &[bool]) -> Vec<bool> {
    output_labels
        .iter()
        .zip(decode_bits.iter())
        .map(|(label, &p)| color(label) ^ p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{from_bits, spam_compare_circuit, to_bits, CircuitBuilder, InputOwner};

    /// Garbles and evaluates a circuit entirely locally (no OT / channel),
    /// returning the decoded output bits. This is the reference harness the
    /// interactive protocol is checked against.
    fn garble_and_eval(circuit: &Circuit, g_bits: &[bool], e_bits: &[bool]) -> Vec<bool> {
        let mut rng = rand::thread_rng();
        let garbling = garble(circuit, &mut rng);
        let mut input_labels = Vec::new();
        for (wire, &bit) in circuit.garbler_inputs.iter().zip(g_bits) {
            input_labels.push((*wire, garbling.label_for(*wire, bit)));
        }
        for (wire, &bit) in circuit.evaluator_inputs.iter().zip(e_bits) {
            input_labels.push((*wire, garbling.label_for(*wire, bit)));
        }
        if let Some(w) = circuit.const_zero {
            input_labels.push((w, garbling.label_for(w, false)));
        }
        if let Some(w) = circuit.const_one {
            input_labels.push((w, garbling.label_for(w, true)));
        }
        let out_labels = evaluate(circuit, &garbling.tables, &input_labels);
        decode_outputs(&out_labels, &garbling.output_decode_bits(circuit))
    }

    #[test]
    fn garbled_and_gate_matches_truth_table() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 1);
        let y = b.input(InputOwner::Evaluator, 1);
        let out = b.and(x.bits[0], y.bits[0]);
        b.output(out);
        let circuit = b.build();
        for (a, bb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(garble_and_eval(&circuit, &[a], &[bb]), vec![a & bb]);
        }
    }

    #[test]
    fn garbled_xor_inv_or_match_truth_tables() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 1);
        let y = b.input(InputOwner::Evaluator, 1);
        let xor = b.xor(x.bits[0], y.bits[0]);
        let inv = b.not(x.bits[0]);
        let or = b.or(x.bits[0], y.bits[0]);
        b.output(xor);
        b.output(inv);
        b.output(or);
        let circuit = b.build();
        for (a, bb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(
                garble_and_eval(&circuit, &[a], &[bb]),
                vec![a ^ bb, !a, a | bb]
            );
        }
    }

    #[test]
    fn garbled_adder_matches_plain_evaluation() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 16);
        let y = b.input(InputOwner::Evaluator, 16);
        let sum = b.add(&x, &y);
        b.output_bundle(&sum);
        let circuit = b.build();
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let a: u64 = rng.gen_range(0..1 << 16);
            let c: u64 = rng.gen_range(0..1 << 16);
            let got = from_bits(&garble_and_eval(&circuit, &to_bits(a, 16), &to_bits(c, 16)));
            assert_eq!(got, (a + c) & 0xFFFF);
        }
    }

    #[test]
    fn garbled_spam_circuit_matches_plain_evaluation() {
        let width = 32;
        let circuit = spam_compare_circuit(width);
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let d_spam: u64 = rng.gen_range(0..1 << 20);
            let d_ham: u64 = rng.gen_range(0..1 << 20);
            let n_spam: u64 = rng.gen_range(0..1 << 30);
            let n_ham: u64 = rng.gen_range(0..1 << 30);
            let mask = (1u64 << width) - 1;
            let mut g_bits = to_bits((d_spam + n_spam) & mask, width);
            g_bits.extend(to_bits((d_ham + n_ham) & mask, width));
            let mut e_bits = to_bits(n_spam, width);
            e_bits.extend(to_bits(n_ham, width));
            let plain = circuit.eval_plain(&g_bits, &e_bits);
            let garbled = garble_and_eval(&circuit, &g_bits, &e_bits);
            assert_eq!(plain, garbled);
            assert_eq!(garbled, vec![d_spam > d_ham]);
        }
    }

    #[test]
    fn garbler_can_decode_returned_labels_and_detect_forgeries() {
        let mut b = CircuitBuilder::new();
        let x = b.input(InputOwner::Garbler, 4);
        let y = b.input(InputOwner::Evaluator, 4);
        let gt = b.gt(&x, &y);
        b.output(gt);
        let circuit = b.build();
        let mut rng = rand::thread_rng();
        let garbling = garble(&circuit, &mut rng);

        let mut input_labels = Vec::new();
        for (wire, &bit) in circuit.garbler_inputs.iter().zip(&to_bits(9, 4)) {
            input_labels.push((*wire, garbling.label_for(*wire, bit)));
        }
        for (wire, &bit) in circuit.evaluator_inputs.iter().zip(&to_bits(4, 4)) {
            input_labels.push((*wire, garbling.label_for(*wire, bit)));
        }
        if let Some(w) = circuit.const_zero {
            input_labels.push((w, garbling.label_for(w, false)));
        }
        if let Some(w) = circuit.const_one {
            input_labels.push((w, garbling.label_for(w, true)));
        }
        let out_labels = evaluate(&circuit, &garbling.tables, &input_labels);
        assert_eq!(
            garbling.decode_output_labels(&circuit, &out_labels),
            Some(vec![true])
        );
        // A forged label is rejected.
        let forged = vec![[0xFFu8; 16]];
        assert_eq!(garbling.decode_output_labels(&circuit, &forged), None);
    }

    #[test]
    fn table_count_equals_and_count() {
        let circuit = spam_compare_circuit(32);
        let garbling = garble(&circuit, &mut rand::thread_rng());
        assert_eq!(garbling.tables.len(), circuit.and_count());
    }

    #[test]
    fn labels_of_a_wire_differ_in_color() {
        let circuit = spam_compare_circuit(8);
        let garbling = garble(&circuit, &mut rand::thread_rng());
        for &w in circuit.outputs.iter().chain(circuit.garbler_inputs.iter()) {
            let l0 = garbling.label_for(w, false);
            let l1 = garbling.label_for(w, true);
            assert_ne!(color(&l0), color(&l1));
        }
    }
}
