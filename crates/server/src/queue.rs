//! Bounded MPMC work queue with reject-on-full semantics.
//!
//! The mailroom's intake must exert **backpressure**: when every worker is
//! busy and the queue is full, a new session is refused immediately (the
//! client gets a busy ack and can retry elsewhere) instead of being buffered
//! without bound or blocking the acceptor thread. The vendored crossbeam
//! stub only provides unbounded channels, so this queue is built directly on
//! `std::sync` — a mutex-guarded ring plus one condvar for the consumers.
//! Producers never block: [`BoundedQueue::try_push_with`] either reserves a
//! slot or hands the item straight back.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused; the item is handed back in both cases.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (backpressure — retry later or give up).
    Full(T),
    /// The queue was closed by [`BoundedQueue::close`]; no further work is
    /// accepted.
    Closed(T),
}

/// A bounded multi-producer/multi-consumer queue. Pushes never block;
/// pops block until an item arrives or the queue is closed and drained.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to enqueue `item` without blocking. On success, `on_accept`
    /// runs on the item *while the slot is held* (before any consumer can
    /// pop it) — the mailroom uses this to send the "accepted" ack on the
    /// session channel without racing the capacity check against other
    /// producers. On failure the item is returned untouched.
    pub fn try_push_with<F>(&self, item: T, on_accept: F) -> Result<(), PushError<T>>
    where
        F: FnOnce(&mut T),
    {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        let mut item = item;
        on_accept(&mut item);
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Attempts to enqueue `item` without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        self.try_push_with(item, |_| {})
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue has been closed **and** drained (queued work is still
    /// served after `close` — that is what makes shutdown graceful).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the intake: subsequent pushes fail with [`PushError::Closed`],
    /// and consumers drain the remaining items then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Number of items currently queued (racy, for monitoring only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy, for monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_immediately_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let start = Instant::now();
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // "Reject" must mean reject: no hidden waiting on the consumer side.
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn accept_hook_runs_only_on_success() {
        let q = BoundedQueue::new(1);
        let mut hook_ran = false;
        q.try_push_with(7, |_| hook_ran = true).unwrap();
        assert!(hook_ran);
        let mut hook_ran = false;
        assert!(q.try_push_with(8, |_| hook_ran = true).is_err());
        assert!(!hook_ran, "the hook must not run when the push is refused");
    }

    #[test]
    fn close_drains_then_wakes_consumers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        // Queued items survive the close (graceful shutdown)…
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        // …then consumers are released.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first, second)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let (first, second) = consumer.join().unwrap();
        assert_eq!(first, Some(42));
        assert_eq!(second, None);
    }

    #[test]
    fn many_producers_many_consumers_preserve_every_item() {
        let q = Arc::new(BoundedQueue::new(64));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        // Spin on Full: this test wants every item through.
                        let mut item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(v)) => {
                                    item = v;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expected: u64 = (0..4u64)
            .map(|p| (0..50u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
    }
}
